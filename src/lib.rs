//! # recoverable-consensus
//!
//! A comprehensive Rust reproduction of
//! *“When Is Recoverable Consensus Harder Than Consensus?”*
//! by Delporte-Gallet, Fatourou, Fauconnier and Ruppert (PODC 2022,
//! [arXiv:2205.14213](https://arxiv.org/abs/2205.14213)).
//!
//! The paper characterizes which deterministic, **readable** shared-object
//! types solve **recoverable consensus** (RC) — consensus where processes
//! may crash, lose all local state, and re-run their code against
//! non-volatile shared memory — and compares the recoverable hierarchy to
//! Herlihy's classic consensus hierarchy. Headline: for readable types,
//! `cons(T) − 2 ≤ rcons(T) ≤ cons(T)`, and both the gap (type `T_n`) and
//! its absence (type `S_n`) are realized.
//!
//! This facade re-exports the four member crates:
//!
//! * [`spec`] (`rc-spec`) — sequential object specifications and the type
//!   catalog, including the paper's `T_n` (Fig. 5) and `S_n` (Fig. 6).
//! * [`core`] (`rc-core`) — the *n*-discerning / *n*-recording decision
//!   procedures, hierarchy bounds, and the paper's algorithms (Fig. 2
//!   recoverable team consensus, the Appendix B tournament, Theorem 3
//!   consensus, the Fig. 4 simultaneous-crash transformation).
//! * [`runtime`] (`rc-runtime`) — the crash–recovery simulator: the
//!   non-volatile memory, crashable program state machines, random /
//!   scripted / bounded-exhaustive schedulers, and a real-thread executor.
//! * [`universal`] (`rc-universal`) — the Section 4 recoverable universal
//!   construction (`RUniversal`, Fig. 7) with replay auditing.
//!
//! ## Quick start
//!
//! Solve recoverable consensus among 4 processes using the paper's type
//! `S_4` under a crashing adversary:
//!
//! ```
//! use recoverable_consensus::core::algorithms::build_tournament_rc;
//! use recoverable_consensus::core::{check_recording, Assignment};
//! use recoverable_consensus::runtime::sched::RandomScheduler;
//! use recoverable_consensus::runtime::verify::check_consensus_execution;
//! use recoverable_consensus::runtime::{run, RunOptions};
//! use recoverable_consensus::spec::types::Sn;
//! use recoverable_consensus::spec::Value;
//! use std::sync::Arc;
//!
//! let n = 4;
//! // The Proposition 21 witness: team A = {opA}, team B = opB × (n−1).
//! let witness = check_recording(
//!     &Sn::new(n),
//!     &Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]),
//! )
//! .expect("S_n is n-recording");
//!
//! let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
//! let (mut mem, mut programs) =
//!     build_tournament_rc(Arc::new(Sn::new(n)), &witness, &inputs);
//! let mut sched = RandomScheduler::from_seed(7); // injects crashes
//! let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
//! let decision = check_consensus_execution(&exec, &inputs).expect("RC holds");
//! assert!(decision.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rc_core as core;
pub use rc_runtime as runtime;
pub use rc_spec as spec;
pub use rc_universal as universal;
