//! Property-based validation of the paper's Figure 1 on *random*
//! deterministic types.
//!
//! Figure 1's implications are theorems quantified over all deterministic
//! (readable) types; the strongest empirical check short of the proofs is
//! to sample the space of finite deterministic types uniformly and test
//! every implication on each sample:
//!
//! * Observation 5: *n*-recording ⟹ *n*-discerning;
//! * Observation 6: *n*-recording ⟹ (*n*−1)-recording (n ≥ 3);
//! * Theorem 16:    *n*-discerning ⟹ (*n*−2)-recording (n ≥ 4);
//! * Proposition 18: 3-discerning ⟹ 2-recording;
//! * Theorems 8 + Prop. 30: an *n*-recording witness yields an RC
//!   algorithm — executed and checked under crashing schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rc_core::algorithms::build_tournament_rc;
use rc_core::{find_recording_witness, is_discerning, is_recording};
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig};
use rc_runtime::verify::check_consensus_execution;
use rc_runtime::{run, CrashModel, RunOptions};
use rc_spec::random::{random_table_type, RandomTypeConfig};
use rc_spec::{TableType, Value};
use std::sync::Arc;

fn sample_type(seed: u64, states: usize, ops: usize, resps: usize) -> TableType {
    random_table_type(
        &mut StdRng::seed_from_u64(seed),
        RandomTypeConfig {
            num_states: states,
            num_ops: ops,
            num_responses: resps,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observation 5: n-recording ⟹ n-discerning, for n = 2, 3, 4.
    #[test]
    fn recording_implies_discerning(
        seed in any::<u64>(),
        states in 2usize..5,
        ops in 1usize..3,
        resps in 1usize..3,
    ) {
        let ty = sample_type(seed, states, ops, resps);
        for n in 2..=4usize {
            if is_recording(&ty, n) {
                prop_assert!(
                    is_discerning(&ty, n),
                    "{}-recording type must be {n}-discerning", n
                );
            }
        }
    }

    /// Observation 6: n-recording ⟹ (n−1)-recording for n ≥ 3
    /// (checked without the monotone-scan shortcut).
    #[test]
    fn recording_is_downward_closed(
        seed in any::<u64>(),
        states in 2usize..5,
        ops in 1usize..3,
        resps in 1usize..3,
    ) {
        let ty = sample_type(seed, states, ops, resps);
        for n in 3..=4usize {
            if is_recording(&ty, n) {
                prop_assert!(is_recording(&ty, n - 1));
            }
        }
    }

    /// Theorem 16: n-discerning ⟹ (n−2)-recording for n ≥ 4, and
    /// Proposition 18: 3-discerning ⟹ 2-recording.
    #[test]
    fn discerning_implies_recording_two_below(
        seed in any::<u64>(),
        states in 2usize..5,
        ops in 1usize..3,
        resps in 1usize..3,
    ) {
        let ty = sample_type(seed, states, ops, resps);
        if is_discerning(&ty, 4) {
            prop_assert!(is_recording(&ty, 2), "Theorem 16 at n = 4");
        }
        if is_discerning(&ty, 3) {
            prop_assert!(is_recording(&ty, 2), "Proposition 18");
        }
    }

    /// Discerning is downward closed as well (the analogue of Obs. 6).
    #[test]
    fn discerning_is_downward_closed(
        seed in any::<u64>(),
        states in 2usize..5,
        ops in 1usize..3,
        resps in 1usize..3,
    ) {
        let ty = sample_type(seed, states, ops, resps);
        for n in 3..=4usize {
            if is_discerning(&ty, n) {
                prop_assert!(is_discerning(&ty, n - 1));
            }
        }
    }

    /// Theorem 8 + Proposition 30, executed: whenever a random type has a
    /// 2- or 3-recording witness, the Fig. 2 tournament built from that
    /// witness solves RC on crashing schedules.
    #[test]
    fn recording_witnesses_actually_solve_rc(
        seed in any::<u64>(),
        states in 2usize..5,
        ops in 1usize..3,
    ) {
        let ty = sample_type(seed, states, ops, 2);
        for n in 2..=3usize {
            let Some(witness) = find_recording_witness(&ty, n) else {
                continue;
            };
            let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
            for sched_seed in 0..20u64 {
                let (mut mem, mut programs) =
                    build_tournament_rc(Arc::new(ty.clone()), &witness, &inputs);
                let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                    seed: sched_seed,
                    crash_prob: 0.25,
                    crash: CrashModel::independent(3).after_decide(true),
                });
                let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
                let verdict = check_consensus_execution(&exec, &inputs);
                prop_assert!(
                    verdict.is_ok(),
                    "type {:?} witness {} violated RC: {:?}",
                    ty,
                    witness.assignment,
                    verdict
                );
            }
        }
    }
}
