//! End-to-end properties of the swarm verification service: the
//! determinism contract (equal seeds give byte-identical aggregates at
//! any thread count) and the shrinker invariants (a shrunken schedule
//! still violates, is crash-legal, and is a subsequence of the
//! original), exercised through the same catalog the `swarm` binary
//! sweeps.

use proptest::prelude::*;
use rc_bench::swarm_catalog::{find_system, swarm_catalog, SwarmSystem};
use rc_runtime::swarm::swarm;
use rc_runtime::{is_subsequence, replay_schedule, replay_seed, shrink_schedule, CrashModel};
use std::sync::OnceLock;

/// The catalog, built once: witness search (`find_recording_witness`,
/// `check_recording`) is the expensive part and is identical across
/// tests.
fn catalog() -> &'static [SwarmSystem] {
    static CATALOG: OnceLock<Vec<SwarmSystem>> = OnceLock::new();
    CATALOG.get_or_init(swarm_catalog)
}

fn system(id: &str) -> &'static SwarmSystem {
    let systems = catalog();
    &systems[find_system(systems, id).unwrap_or_else(|| panic!("{id} in catalog"))]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The swarm determinism contract: the same seed range produces
    /// byte-identical deterministic aggregates (violating seeds,
    /// distinct-final-state count, step/crash totals) regardless of
    /// worker thread count — workers race for seed chunks, but every
    /// aggregate is a commutative fold over per-seed results.
    #[test]
    fn equal_seeds_give_byte_identical_runs_across_thread_counts(
        seed_start in 0u64..100_000,
        seeds in 1u64..48,
        threads_a in 1usize..5,
        threads_b in 1usize..5,
    ) {
        let sys = system("team-rc-s3");
        let a = swarm(sys.factory(), &sys.config(seed_start, seeds, threads_a));
        let b = swarm(sys.factory(), &sys.config(seed_start, seeds, threads_b));
        prop_assert_eq!(a.deterministic_summary(), b.deterministic_summary());
        prop_assert_eq!(a.runs, seeds);
    }

    /// Replaying a seed from a sweep reproduces the sweep's verdict for
    /// it exactly — on the seeded bug, where both verdicts occur.
    #[test]
    fn replayed_seeds_reproduce_the_sweep_verdict(seed in 0u64..600) {
        let sys = system("broken-team-rc");
        let config = sys.config(seed, 1, 1);
        let report = swarm(sys.factory(), &config);
        let rerun = replay_seed(sys.factory(), &config, seed);
        match report.violations.first() {
            Some(v) => {
                prop_assert_eq!(v.seed, seed);
                prop_assert_eq!(rerun.verdict.as_ref().err(), Some(&v.violation));
            }
            None => prop_assert!(rerun.verdict.is_ok()),
        }
    }
}

/// The shrinker invariants, over every violating seed of a crash-free
/// sweep of the seeded bug: the minimal witness is a subsequence of the
/// replayed schedule, is [`CrashModel`]-legal, still exhibits the same
/// violation kind when replayed, and re-verifies through the witness
/// log.
#[test]
fn shrunken_witnesses_violate_legally_as_subsequences() {
    let sys = system("broken-team-rc");
    let config = sys.config(0, 200, 0);
    let report = swarm(sys.factory(), &config);
    assert!(
        !report.violations.is_empty(),
        "the seeded bug surfaces within 200 seeds"
    );
    for v in &report.violations {
        let rerun = replay_seed(sys.factory(), &config, v.seed);
        let schedule = rerun.execution.trace.to_actions();
        let shrunk =
            shrink_schedule(sys.factory(), &config, &schedule).expect("safety violations shrink");
        assert!(
            is_subsequence(&shrunk.schedule, &schedule),
            "seed {}: witness must be a subsequence of the original",
            v.seed
        );
        assert!(shrunk.schedule.len() <= schedule.len());
        assert!(
            shrunk.witness_verified,
            "seed {}: witness-log replay",
            v.seed
        );
        assert_eq!(
            std::mem::discriminant(&shrunk.violation),
            std::mem::discriminant(&v.violation),
            "seed {}: the violation kind is preserved",
            v.seed
        );
        let replay = replay_schedule(sys.factory(), &config, &shrunk.schedule, false);
        assert!(replay.legal, "seed {}: witness must be crash-legal", v.seed);
        let verdict =
            rc_runtime::verify::check_consensus_execution(&replay.execution, sys.inputs.as_slice());
        assert_eq!(
            verdict.as_ref().err().map(std::mem::discriminant),
            Some(std::mem::discriminant(&v.violation)),
            "seed {}: the witness still violates when replayed cold",
            v.seed
        );
    }
}

/// The same invariants when the adversary injects crashes: overriding
/// the seeded bug's crash-free default with an independent-crash model
/// puts `Crash` actions into the violating schedules, and the shrunken
/// witness must stay legal under that model's budget.
#[test]
fn shrinking_respects_the_crash_model_budget() {
    let sys = system("broken-team-rc");
    let mut config = sys.config(0, 150, 0);
    config.crash = CrashModel::independent(2).after_decide(true);
    config.crash_prob = 0.2;
    let report = swarm(sys.factory(), &config);
    assert!(
        !report.violations.is_empty(),
        "the bug still surfaces under crashes"
    );
    let mut crashes_seen = 0usize;
    for v in report.violations.iter().take(5) {
        let rerun = replay_seed(sys.factory(), &config, v.seed);
        let schedule = rerun.execution.trace.to_actions();
        crashes_seen += usize::from(rerun.execution.crashes > 0);
        let shrunk =
            shrink_schedule(sys.factory(), &config, &schedule).expect("safety violations shrink");
        assert!(
            is_subsequence(&shrunk.schedule, &schedule),
            "seed {}",
            v.seed
        );
        let replay = replay_schedule(sys.factory(), &config, &shrunk.schedule, true);
        assert!(replay.legal, "seed {}: budget-legal witness", v.seed);
        assert!(replay.witness_verified, "seed {}", v.seed);
    }
    assert!(
        crashes_seen > 0,
        "at least one checked schedule actually contains crashes"
    );
}
