//! The same algorithm state machines on real OS threads with real locks:
//! a sanity check that correctness does not depend on the deterministic
//! simulator's scheduling.

use rc_core::algorithms::build_tournament_rc;
use rc_core::find_recording_witness;
use rc_runtime::threaded::{run_threaded, SharedMemory, ThreadedCrashPlan};
use rc_spec::types::Cas;
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

#[test]
fn tournament_rc_on_cas_across_real_threads() {
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let witness = find_recording_witness(&cas, 6).expect("CAS records at level 6");
    let inputs: Vec<Value> = (0..6).map(|i| Value::Int(i64::from(i % 2))).collect();
    for round in 0..10 {
        let (mem, programs) = build_tournament_rc(cas.clone(), &witness, &inputs);
        let shared = SharedMemory::from_memory(&mem);
        let reports = run_threaded(
            &shared,
            programs,
            ThreadedCrashPlan {
                seed: round,
                crash_prob: 0.1,
                max_crashes_per_thread: 3,
            },
            100_000,
        );
        let first = &reports[0].output;
        for r in &reports {
            assert_eq!(
                r.output, *first,
                "round {round}: threads disagreed (p{} after {} crashes)",
                r.pid, r.crashes
            );
        }
        assert!(
            inputs.contains(first),
            "round {round}: decision {first} is not an input"
        );
    }
}

#[test]
fn threaded_crash_injection_actually_crashes() {
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let witness = find_recording_witness(&cas, 4).expect("witness");
    let inputs: Vec<Value> = (0..4).map(|i| Value::Int(i64::from(i % 2))).collect();
    let (mem, programs) = build_tournament_rc(cas.clone(), &witness, &inputs);
    let shared = SharedMemory::from_memory(&mem);
    let reports = run_threaded(
        &shared,
        programs,
        ThreadedCrashPlan {
            seed: 424242,
            crash_prob: 0.8,
            max_crashes_per_thread: 5,
        },
        100_000,
    );
    let total_crashes: usize = reports.iter().map(|r| r.crashes).sum();
    assert!(total_crashes > 0, "the crash plan must fire at this rate");
    let first = &reports[0].output;
    assert!(reports.iter().all(|r| r.output == *first));
}
