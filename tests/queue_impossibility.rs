//! Appendix H's closing remark, executed: *"A similar argument could be
//! used to show that rcons(queue) = 1."*
//!
//! Mirrors `stack_impossibility.rs` for the FIFO queue: the classic
//! 2-process queue consensus protocol (queue preloaded with a winner token
//! in front of a loser token; whoever dequeues the winner token wins) is
//! exhaustively correct under halting failures, and its recoverable
//! extensions are defeated by the crash adversary — a crashed process
//! loses its dequeue response and re-dequeuing destroys the record.
//! The `E_A` adversary of Theorem 14 (only `p_1` crashes, crashes bounded
//! by others' steps) is enough: the violations below live inside `E_A`.

use rc_runtime::sched::BudgetedCrashScheduler;
use rc_runtime::{
    explore, run, CrashModel, ExploreConfig, MemOps, Memory, Program, RunOptions, Step,
};
use rc_spec::types::Queue;
use rc_spec::{Operation, Value};
use std::sync::Arc;

const WINNER: i64 = 1;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BottomMeans {
    Won,
    Lost,
}

#[derive(Clone, Debug)]
struct QueueConsensus {
    queue: rc_runtime::Addr,
    my_reg: rc_runtime::Addr,
    other_reg: rc_runtime::Addr,
    input: Value,
    policy: BottomMeans,
    pc: u8,
}

impl Program for QueueConsensus {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc {
            0 => {
                mem.write_register(self.my_reg, self.input.clone());
                self.pc = 1;
                Step::Running
            }
            1 => {
                let got = mem.apply(self.queue, &Operation::nullary("deq"));
                let won = match got {
                    Value::Int(WINNER) => true,
                    Value::Int(_) => false,
                    Value::Bottom => self.policy == BottomMeans::Won,
                    other => panic!("unexpected queue content {other}"),
                };
                self.pc = if won { 2 } else { 3 };
                Step::Running
            }
            2 => Step::Decided(self.input.clone()),
            _ => Step::Decided(mem.read_register(self.other_reg)),
        }
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn system(policy: BottomMeans) -> (Memory, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    // Queue preloaded [winner, loser] (winner at the FRONT — dequeued
    // first, unlike the stack where the winner sits on top).
    let queue = mem.alloc_object(
        Arc::new(Queue::new(4, 2)),
        Value::List(vec![Value::Int(WINNER), Value::Int(0)]),
    );
    let regs = [
        mem.alloc_register(Value::Bottom),
        mem.alloc_register(Value::Bottom),
    ];
    let programs: Vec<Box<dyn Program>> = (0..2)
        .map(|i| {
            Box::new(QueueConsensus {
                queue,
                my_reg: regs[i],
                other_reg: regs[1 - i],
                input: Value::Int(i as i64 + 20),
                policy,
                pc: 0,
            }) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

fn inputs() -> Vec<Value> {
    vec![Value::Int(20), Value::Int(21)]
}

#[test]
fn queue_consensus_is_correct_under_halting_failures() {
    for policy in [BottomMeans::Won, BottomMeans::Lost] {
        let outcome = explore(
            &|| system(policy),
            &ExploreConfig {
                crash: CrashModel::independent(0),
                inputs: Some(inputs()),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{policy:?}: {outcome:?}");
    }
}

#[test]
fn crash_adversary_defeats_both_queue_policies() {
    for (policy, budget) in [(BottomMeans::Lost, 1), (BottomMeans::Won, 2)] {
        let outcome = explore(
            &|| system(policy),
            &ExploreConfig {
                crash: CrashModel::independent(budget),
                inputs: Some(inputs()),
                ..ExploreConfig::default()
            },
        );
        assert!(
            outcome.is_violation(),
            "{policy:?} must break with {budget} crash(es): {outcome:?}"
        );
    }
}

/// The violations live inside the paper's execution class `E_A`: random
/// `E_A` schedules (only p1 crashes, prefix-bounded) find them too.
#[test]
fn violations_found_inside_e_a() {
    let mut found = 0usize;
    for seed in 0..400u64 {
        let (mut mem, mut programs) = system(BottomMeans::Lost);
        let mut sched = BudgetedCrashScheduler::new(0, 0.3, seed);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        if !exec.all_decided {
            continue;
        }
        let outputs = exec.all_outputs();
        let disagree = outputs.windows(2).any(|w| w[0] != w[1]);
        let invalid = outputs.iter().any(|v| !inputs().contains(v));
        if disagree || invalid {
            found += 1;
        }
    }
    assert!(
        found > 0,
        "the E_A adversary must stumble on a violation within 400 seeds"
    );
    // Sanity: the budget invariant held throughout (checked inside the
    // scheduler's own tests; here we just confirm the run used crashes).
}
