//! The mechanics of the Fig. 8 / Appendix H impossibility argument,
//! executed on the classic 2-process stack consensus protocol:
//!
//! 1. find a **critical execution** (multivalent; every next step commits);
//! 2. the two poised operations **commute** on the object state
//!    (Fig. 8(a): both are pops);
//! 3. apply them in either order and **crash p1**: the two resulting
//!    system states are indistinguishable to p1's recovery run, so p1
//!    decides the *same* value in both branches — contradicting the
//!    different committed valencies. For a correct RC algorithm this is
//!    the paper's contradiction; for the real protocol it materializes as
//!    an agreement violation, exhibited below.

use rc_core::valency::{find_critical, replay, valence, System};
use rc_runtime::{MemOps, Memory, Program, Step};
use rc_spec::types::Stack;
use rc_spec::{Operation, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

const LOSER: i64 = 0;
const WINNER: i64 = 1;

/// The classic protocol: write own register, pop; winner token → own
/// input, loser token → other's register; ⊥ → treat as lost.
#[derive(Clone, Debug)]
struct StackConsensus {
    stack: rc_runtime::Addr,
    my_reg: rc_runtime::Addr,
    other_reg: rc_runtime::Addr,
    input: Value,
    pc: u8,
}

impl Program for StackConsensus {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc {
            0 => {
                mem.write_register(self.my_reg, self.input.clone());
                self.pc = 1;
                Step::Running
            }
            1 => {
                let popped = mem.apply(self.stack, &Operation::nullary("pop"));
                self.pc = if popped == Value::Int(WINNER) { 2 } else { 3 };
                Step::Running
            }
            2 => Step::Decided(self.input.clone()),
            _ => Step::Decided(mem.read_register(self.other_reg)),
        }
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn stack_system() -> System {
    let mut mem = Memory::new();
    let stack = mem.alloc_object(
        Arc::new(Stack::new(4, 2)),
        Value::List(vec![Value::Int(LOSER), Value::Int(WINNER)]),
    );
    let regs = [
        mem.alloc_register(Value::Bottom),
        mem.alloc_register(Value::Bottom),
    ];
    let programs: Vec<Box<dyn Program>> = (0..2)
        .map(|i| {
            Box::new(StackConsensus {
                stack,
                my_reg: regs[i],
                other_reg: regs[1 - i],
                input: Value::Int(i as i64 + 10),
                pc: 0,
            }) as Box<dyn Program>
        })
        .collect();
    System::new(mem, programs)
}

#[test]
fn fig8_critical_execution_and_crash_indistinguishability() {
    // 1. The initial execution is multivalent and a critical execution
    //    exists.
    let initial = stack_system();
    assert_eq!(valence(&initial).len(), 2);
    let critical = find_critical(&stack_system).expect("critical execution exists");
    assert_eq!(
        critical.commitments.len(),
        2,
        "both processes enabled at criticality"
    );
    let committed: BTreeSet<&Value> = critical.commitments.iter().map(|(_, v)| v).collect();
    assert_eq!(
        committed.len(),
        2,
        "the two steps commit to different values"
    );

    // 2. At the critical execution both processes are poised to POP
    //    (pc = 1): the register writes are already done — exactly the
    //    paper's "both poised on the same object" situation.
    let at_critical = replay(&stack_system, &critical.schedule);
    for p in 0..2 {
        assert_eq!(
            at_critical.programs[p].state_key(),
            Value::Int(1),
            "p{p} is poised to pop"
        );
    }

    // 3. Fig. 8(a): the poised pops commute on the object state. Apply in
    //    both orders, crash p1, and compare what p1's recovery run can
    //    see: shared memory is identical.
    let mut branch_a = at_critical.clone(); // p1's pop first
    branch_a.step(0);
    branch_a.step(1);
    let mut branch_b = at_critical.clone(); // p2's pop first
    branch_b.step(1);
    branch_b.step(0);
    assert_eq!(
        branch_a.mem.state_key(),
        branch_b.mem.state_key(),
        "the two pops commute on shared state"
    );
    branch_a.crash(0);
    branch_b.crash(0);

    // 4. p1's recovery run decides the same value in both branches —
    //    it cannot distinguish them (same shared memory, same wiped local
    //    state).
    let x_a = branch_a.run_solo(0, 100);
    let x_b = branch_b.run_solo(0, 100);
    assert_eq!(x_a, x_b, "p1 cannot distinguish the branches (Lemma 15)");

    // 5. The contradiction materialized: one branch was committed to a
    //    different value than x. Finish that branch and observe the
    //    agreement violation the paper's argument predicts for any
    //    "correct" stack RC protocol.
    let mut violations = 0;
    for (branch, first_step) in [(&mut branch_a, 0usize), (&mut branch_b, 1usize)] {
        let committed_value = critical
            .commitments
            .iter()
            .find(|(p, _)| *p == first_step)
            .map(|(_, v)| v.clone())
            .expect("commitment recorded");
        let y = branch.run_solo(1, 100); // p2 finishes its run
        let outputs = [branch.decided[0].clone().expect("p1 decided"), y.clone()];
        if outputs[0] != outputs[1] || outputs[0] != committed_value {
            violations += 1;
        }
    }
    assert!(
        violations > 0,
        "the crash must force a violation in at least one branch"
    );
}
