//! End-to-end sweep over the type catalog: the computed hierarchy bounds
//! must contain the published values, and every type whose recording level
//! admits it must actually *solve* recoverable consensus in execution.

use rc_core::algorithms::build_tournament_rc;
use rc_core::{compute_hierarchy, find_recording_witness, Level};
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig};
use rc_runtime::verify::check_consensus_execution;
use rc_runtime::{run, CrashModel, RunOptions};
use rc_spec::catalog::{catalog, ConsensusNumber};
use rc_spec::Value;

/// The computed interval for `rcons` must contain the published value.
#[test]
fn computed_bounds_contain_published_rcons() {
    for entry in catalog() {
        let cap = match entry.known_cons {
            ConsensusNumber::Finite(n) => (n + 2).min(7),
            ConsensusNumber::Infinite => 4,
        };
        let report = compute_hierarchy(&entry.object, cap);
        if !report.readable {
            // Stack/queue: bounds are not derivable from the machinery.
            continue;
        }
        let lo = report.rcons_lower();
        let hi = report.rcons_upper();
        match entry.known_rcons.lo {
            ConsensusNumber::Finite(known_lo) => {
                assert!(
                    lo <= known_lo,
                    "{}: computed lower bound {lo} exceeds published {known_lo}",
                    entry.id
                );
            }
            ConsensusNumber::Infinite => {
                assert_eq!(hi, None, "{}: rcons is ∞ but search bounded it", entry.id);
            }
        }
        if let (Some(hi), ConsensusNumber::Finite(known_hi)) = (hi, entry.known_rcons.hi) {
            assert!(
                hi >= known_hi,
                "{}: computed upper bound {hi} below published {known_hi}",
                entry.id
            );
        }
        assert!(report.satisfies_corollary_17(), "{}", entry.id);
    }
}

/// The computed consensus level must match the published cons for
/// readable types (Theorem 3 is exact).
#[test]
fn computed_cons_matches_published_for_readable_types() {
    for entry in catalog() {
        let cap = match entry.known_cons {
            ConsensusNumber::Finite(n) => (n + 2).min(7),
            ConsensusNumber::Infinite => 4,
        };
        let report = compute_hierarchy(&entry.object, cap);
        let Some(level) = report.cons() else {
            continue; // non-readable
        };
        match (entry.known_cons, level) {
            (ConsensusNumber::Finite(known), Level::One) => {
                assert_eq!(known, 1, "{}", entry.id)
            }
            (ConsensusNumber::Finite(known), Level::Exactly(got)) => {
                assert_eq!(known, got, "{}", entry.id)
            }
            (ConsensusNumber::Finite(known), Level::AtLeastCap(cap)) => {
                assert!(known >= cap, "{}", entry.id)
            }
            (ConsensusNumber::Infinite, Level::AtLeastCap(_)) => {}
            (ConsensusNumber::Infinite, other) => {
                panic!("{}: cons is ∞ but search found {other:?}", entry.id)
            }
        }
    }
}

/// Every readable type with a k-recording witness (k ≥ 2) must actually
/// solve k-process RC in execution under crashing adversaries.
#[test]
fn every_recording_type_solves_rc_in_execution() {
    for entry in catalog() {
        if !entry.object.is_readable() {
            continue;
        }
        // Cap the per-type search to keep the sweep fast.
        let k = {
            let mut best = None;
            for k in 2..=4usize {
                if find_recording_witness(&entry.object, k).is_some() {
                    best = Some(k);
                } else {
                    break;
                }
            }
            best
        };
        let Some(k) = k else { continue };
        let witness = find_recording_witness(&entry.object, k).expect("just found");
        let inputs: Vec<Value> = (0..k as i64).map(Value::Int).collect();
        for seed in 0..30 {
            let (mut mem, mut programs) =
                build_tournament_rc(entry.object.clone(), &witness, &inputs);
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.2,
                crash: CrashModel::independent(4).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            check_consensus_execution(&exec, &inputs)
                .unwrap_or_else(|e| panic!("{} (k = {k}, seed = {seed}): {e}", entry.id));
        }
    }
}

use rc_spec::ObjectType;
