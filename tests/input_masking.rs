//! The introduction's input-register transformation, applied to a whole RC
//! algorithm: even if a process's nominal input *changes* between runs
//! (which the paper's stable-input assumption forbids), the masked
//! algorithm still satisfies agreement and validity with respect to
//! first-run inputs.

use rc_core::algorithms::{alloc_team_rc, InnerMaker, InputMasked, TeamRc, TeamRcConfig};
use rc_core::{check_recording, Assignment};
use rc_runtime::sched::{Action, Scheduler};
use rc_runtime::{CrashModel, Memory, Program, Step};
use rc_spec::types::Sn;
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

/// Drives a system manually so that crashed processes can be rebuilt with
/// *different* nominal inputs — the hazard the masking defends against.
fn run_with_changing_inputs(seed: u64) -> Vec<Value> {
    let n = 3;
    let sn: TypeHandle = Arc::new(Sn::new(n));
    let witness = check_recording(
        &sn,
        &Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]),
    )
    .expect("S_3 witness");
    let config = TeamRcConfig::new(sn, &witness);

    let mut mem = Memory::new();
    let shared = alloc_team_rc(&mut mem, &config);
    let mask_regs: Vec<_> = (0..n)
        .map(|_| InputMasked::alloc_register(&mut mem))
        .collect();

    // Teams: slot 0 = A, slots 1–2 = B. Team consensus precondition holds
    // for the FIRST-run inputs (A: 100; B: 200); later nominal inputs are
    // garbage that masking must suppress.
    let first_inputs = [Value::Int(100), Value::Int(200), Value::Int(200)];
    let make = |slot: usize, nominal: Value| -> Box<dyn Program> {
        let config = config.clone();
        let inner: InnerMaker = Arc::new(move |masked| {
            Box::new(TeamRc::new(config.clone(), shared, slot, masked)) as Box<dyn Program>
        });
        Box::new(InputMasked::new(mask_regs[slot], nominal, inner))
    };

    let mut programs: Vec<Box<dyn Program>> = (0..n)
        .map(|slot| make(slot, first_inputs[slot].clone()))
        .collect();

    let mut sched =
        rc_runtime::sched::RandomScheduler::new(rc_runtime::sched::RandomSchedulerConfig {
            seed,
            crash_prob: 0.25,
            crash: CrashModel::independent(4).after_decide(true),
        });
    let mut decided: Vec<Option<Value>> = vec![None; n];
    let mut outputs = Vec::new();
    let mut steps = 0usize;
    let mut crashes = 0usize;
    loop {
        let flags: Vec<bool> = decided.iter().map(Option::is_some).collect();
        let ctx = rc_runtime::sched::SchedContext {
            n,
            decided: &flags,
            steps_taken: steps,
            crashes_injected: crashes,
        };
        let Some(action) = sched.next_action(&ctx) else {
            break;
        };
        match action {
            Action::Step(p) => {
                if decided[p].is_some() {
                    continue;
                }
                steps += 1;
                if let Step::Decided(v) = programs[p].step(&mut mem) {
                    outputs.push(v.clone());
                    decided[p] = Some(v);
                }
            }
            Action::Crash(p) => {
                crashes += 1;
                decided[p] = None;
                // If the process already persisted its masked input, the
                // environment hands the recovered process GARBAGE — the
                // masking register must override it. (If it crashed before
                // persisting, the environment re-supplies the real input:
                // the transformation defines the effective input as the
                // first persisted value, and the team-consensus
                // precondition is about effective inputs.)
                let nominal = if mem.peek(mask_regs[p]).is_bottom() {
                    first_inputs[p].clone()
                } else {
                    Value::Int(999)
                };
                programs[p] = make(p, nominal);
            }
            Action::CrashAll => {}
            Action::Branch(..) => panic!("schedulers never emit Branch"),
        }
        assert!(steps < 100_000, "runaway execution");
    }
    outputs
}

#[test]
fn masking_preserves_rc_despite_changing_inputs() {
    for seed in 0..80 {
        let outputs = run_with_changing_inputs(seed);
        assert!(!outputs.is_empty());
        let first = &outputs[0];
        assert!(
            outputs.iter().all(|v| v == first),
            "seed {seed}: agreement violated: {outputs:?}"
        );
        // Validity w.r.t. effective (first-persisted) inputs: the garbage
        // nominal value 999 is only ever supplied to processes whose mask
        // is already persisted, so it must NEVER leak into an output.
        assert!(
            [Value::Int(100), Value::Int(200)].contains(first),
            "seed {seed}: garbage input leaked: {first}"
        );
    }
}
