//! The rebuilt model-checker engine, end to end: serial/parallel/legacy
//! equivalence on the real Fig. 2 systems, the unified [`CrashModel`]
//! semantics, and regressions for the crash-adversary bugs this engine
//! rebuild fixed (post-decide `CrashAll` handling and the state-cap
//! off-by-one).

use rc_core::algorithms::build_team_rc_system;
use rc_core::{check_recording, Assignment, RecordingWitness, Team};
use rc_runtime::sched::{Action, RandomScheduler, RandomSchedulerConfig, SchedContext, Scheduler};
use rc_runtime::{
    explore, explore_legacy, explore_parallel, CrashModel, ExploreConfig, ExploreOutcome, MemOps,
    Memory, Program, Step,
};
use rc_spec::types::Sn;
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

fn sn_system(n: usize) -> (TypeHandle, RecordingWitness, Vec<Value>) {
    let sn = Sn::new(n);
    let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]);
    let w = check_recording(&sn, &a).expect("S_n witness");
    let inputs: Vec<Value> = w
        .assignment
        .teams
        .iter()
        .map(|t| match t {
            Team::A => Value::Int(0),
            Team::B => Value::Int(1),
        })
        .collect();
    (Arc::new(sn), w, inputs)
}

/// `explore` vs `explore_parallel` vs the seed (`explore_legacy`) engine
/// on the E2 systems: identical `Verified` verdicts, state counts and
/// leaf counts.
#[test]
fn engines_agree_on_e2_systems() {
    for n in [2usize, 3] {
        let (ty, w, inputs) = sn_system(n);
        let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
        for budget in [0usize, 1, 2] {
            let config = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            };
            let serial = explore(&factory, &config);
            let parallel = explore_parallel(
                &factory,
                &ExploreConfig {
                    threads: 4,
                    ..config.clone()
                },
            );
            let legacy = explore_legacy(&factory, &config);
            let stats = |o: &ExploreOutcome| match o {
                ExploreOutcome::Verified { states, leaves } => (*states, *leaves),
                other => panic!("S_{n} budget {budget} must verify: {other:?}"),
            };
            assert_eq!(stats(&serial), stats(&parallel), "S_{n} budget {budget}");
            assert_eq!(stats(&serial), stats(&legacy), "S_{n} budget {budget}");
        }
    }
}

/// The E2-recorded baseline: S_2 at 514 and S_3 at 3981 states (crash
/// budget 2, post-decide crashes on). The engine rebuild must not change
/// what "a state" is.
#[test]
fn e2_state_counts_are_preserved() {
    for (n, expected) in [(2usize, 514usize), (3, 3981)] {
        let (ty, w, inputs) = sn_system(n);
        let outcome = explore(
            &|| build_team_rc_system(ty.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(2).after_decide(true),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            },
        );
        match outcome {
            ExploreOutcome::Verified { states, .. } => assert_eq!(states, expected, "S_{n}"),
            other => panic!("S_{n} must verify: {other:?}"),
        }
    }
}

/// The acceptance instance for the engine rebuild: S_4 with one
/// independent crash model-checks to `Verified` within the default
/// state cap.
#[test]
fn s4_budget_1_verifies_within_default_cap() {
    let (ty, w, inputs) = sn_system(4);
    let outcome = explore(
        &|| build_team_rc_system(ty.clone(), &w, &inputs),
        &ExploreConfig {
            crash: CrashModel::independent(1).after_decide(true),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        },
    );
    match outcome {
        ExploreOutcome::Verified { states, .. } => {
            assert!(states > 10_000, "S_4 is a real instance: {states}");
            assert!(states < ExploreConfig::default().max_states);
        }
        other => panic!("S_4 budget 1 must verify: {other:?}"),
    }
}

/// A 1-process program that decides 0 on a clean run but 1 on a
/// recovery run — agreement across re-runs breaks only if the adversary
/// may crash it *after* it decided.
#[derive(Clone, Debug)]
struct ForgetfulDecider {
    addr: rc_runtime::Addr,
    pc: u8,
}

impl Program for ForgetfulDecider {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc {
            0 => {
                let seen = mem.read_register(self.addr);
                self.pc = 1;
                if seen.is_bottom() {
                    Step::Running
                } else {
                    Step::Decided(Value::Int(1))
                }
            }
            _ => {
                mem.write_register(self.addr, Value::Int(0));
                Step::Decided(Value::Int(0))
            }
        }
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn forgetful_factory() -> (Memory, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    let addr = mem.alloc_register(Value::Bottom);
    (mem, vec![Box::new(ForgetfulDecider { addr, pc: 0 })])
}

/// Regression (simultaneous crash-adversary asymmetry): with
/// `crash_after_decide: false`, a simultaneous `CrashAll` must not wipe
/// a decided run — the model checker used to reset decided processes
/// unconditionally and so reported violations the configured adversary
/// cannot produce. The independent and simultaneous models must agree.
#[test]
fn crash_all_respects_post_decide_policy_in_explore() {
    for mode in [CrashModel::independent(1), CrashModel::simultaneous(1)] {
        let strict = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: mode,
                ..ExploreConfig::default()
            },
        );
        assert!(
            strict.is_verified(),
            "{mode:?} without post-decide crashes: {strict:?}"
        );
        let lax = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: mode.after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(
            lax.is_violation(),
            "{mode:?} with post-decide crashes: {lax:?}"
        );
    }
}

/// Regression (`RandomScheduler` emitting `CrashAll` after every process
/// decided with `crash_after_decide: false`): the scheduler now ends the
/// execution instead of wiping decided runs, matching the exact layer.
#[test]
fn random_scheduler_crash_all_respects_post_decide_policy() {
    let mut sched = RandomScheduler::new(RandomSchedulerConfig {
        seed: 11,
        crash_prob: 1.0,
        crash: CrashModel::simultaneous(10),
    });
    let decided = vec![true, true, true];
    let ctx = SchedContext {
        n: 3,
        decided: &decided,
        steps_taken: 9,
        crashes_injected: 0,
    };
    for _ in 0..100 {
        assert_eq!(sched.next_action(&ctx), None, "no action can be legal");
    }
    // Partially decided: a step of the undecided process, never CrashAll.
    let decided = vec![true, false, true];
    let ctx = SchedContext {
        n: 3,
        decided: &decided,
        steps_taken: 9,
        crashes_injected: 0,
    };
    for _ in 0..100 {
        assert_eq!(sched.next_action(&ctx), Some(Action::Step(1)));
    }
}

/// Regression (state-cap off-by-one): the search used to visit
/// `max_states + 1` states before reporting truncation; now it visits
/// exactly `max_states`, and a cap equal to the exact state-space size
/// still verifies.
#[test]
fn state_cap_has_no_off_by_one() {
    let (ty, w, inputs) = sn_system(2);
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    let config = ExploreConfig {
        crash: CrashModel::independent(2).after_decide(true),
        inputs: Some(inputs.clone()),
        ..ExploreConfig::default()
    };
    // 514 states (asserted above). Capping exactly there must verify…
    let outcome = explore(
        &factory,
        &ExploreConfig {
            max_states: 514,
            ..config.clone()
        },
    );
    assert!(outcome.is_verified(), "{outcome:?}");
    // …and one below must truncate having visited exactly the cap.
    match explore(
        &factory,
        &ExploreConfig {
            max_states: 513,
            ..config
        },
    ) {
        ExploreOutcome::Truncated { states } => assert_eq!(states, 513),
        other => panic!("expected truncation: {other:?}"),
    }
}

/// Verdict precedence: a violation reachable within the cap is reported
/// as `Violation` even under a tiny cap (violations are definitive;
/// truncation only blocks `Verified`).
#[test]
fn violation_beats_truncation_when_found_first() {
    #[derive(Clone, Debug)]
    struct DecideOwn {
        input: Value,
    }
    impl Program for DecideOwn {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }
    let factory = || {
        let mem = Memory::new();
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(DecideOwn {
                input: Value::Int(0),
            }),
            Box::new(DecideOwn {
                input: Value::Int(1),
            }),
        ];
        (mem, programs)
    };
    // The first DFS branch reaches the violation within 3 visited states.
    let outcome = explore(
        &factory,
        &ExploreConfig {
            max_states: 3,
            ..ExploreConfig::default()
        },
    );
    assert!(outcome.is_violation(), "{outcome:?}");
}

/// The parallel engine finds violations, deterministically, and the
/// reported schedule replays to the claimed disagreement.
#[test]
fn parallel_engine_reports_replayable_violations() {
    let (ty, w, inputs) = sn_system(2);
    // Break validity: declare inputs that exclude what team B decides.
    let bogus = vec![Value::Int(7)];
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    let mut schedules = Vec::new();
    for threads in [2usize, 4, 2, 4] {
        match explore(
            &factory,
            &ExploreConfig {
                crash: CrashModel::independent(1).after_decide(true),
                inputs: Some(bogus.clone()),
                threads,
                ..ExploreConfig::default()
            },
        ) {
            ExploreOutcome::Violation { schedule, kind, .. } => {
                schedules.push((schedule, kind));
            }
            other => panic!("bogus inputs must violate validity: {other:?}"),
        }
    }
    for s in &schedules[1..] {
        assert_eq!(s, &schedules[0], "parallel verdicts must be deterministic");
    }
}
