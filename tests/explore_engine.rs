//! The model-checker engines, end to end: serial/parallel equivalence on
//! the real Fig. 2 systems — byte-identical outcomes including at
//! `max_states` truncation boundaries — the unified [`CrashModel`]
//! semantics, process-symmetry reduction (identical verdicts and leaf
//! counts with symmetry on vs off, replayable un-permuted witnesses),
//! and regressions for the crash-adversary bugs the engine rebuilds
//! fixed (post-decide `CrashAll` handling, the state-cap off-by-one, and
//! the parallel frontier's whole-level cap overshoot).
//!
//! CI runs this suite under `EXPLORE_TEST_THREADS` ∈ {2, 8} ×
//! `EXPLORE_TEST_SYMMETRY` ∈ {on, off, rebind, scalarset} ×
//! `EXPLORE_TEST_POR` ∈ {on, off} (see `.github/workflows/ci.yml`);
//! `rebind` exercises the full-state mode — input-masked systems whose
//! per-process mask registers permute with their owners under
//! `Program::rebind` — `scalarset` exercises the certified-family mode
//! on the Fig. 4 `SimultaneousRc` system (whose per-round announcement
//! registers permute as a scalarset with the process slots), and the
//! POR axis reruns the same matrix with the persistent-set + sleep-set
//! reduction switched on (identical verdicts and weighted leaf counts;
//! state counts are the reduction and legitimately differ). The thread counts are routed through
//! `ExploreConfig::workers_override` / `shards_override`, so the forced
//! multi-worker, multi-shard pipeline really runs — even on single-core
//! runners, where the machine-aware policy used to clamp every level to
//! the fused single-worker path and silently neutralize the matrix.

use rc_core::algorithms::{
    build_broken_team_rc_system, build_masked_broken_team_rc_system,
    build_masked_broken_team_rc_system_sym, build_masked_team_rc_system,
    build_masked_team_rc_system_sym, build_simultaneous_rc_system,
    build_simultaneous_rc_system_sym, build_team_rc_system, build_team_rc_system_sym,
    ConsensusObjectFactory,
};
use rc_core::{check_recording, Assignment, RecordingWitness, Team};
use rc_runtime::sched::{
    Action, RandomScheduler, RandomSchedulerConfig, SchedContext, Scheduler, ScriptedScheduler,
};
use rc_runtime::verify::check_consensus_execution;
use rc_runtime::{
    explore, explore_parallel, explore_symmetric, explore_with_stats, run, CrashModel,
    ExploreConfig, ExploreOutcome, MemOps, Memory, Program, RunOptions, Step, StorageTier,
};
use rc_spec::types::Sn;
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

/// The thread counts the equivalence tests run the parallel engine at:
/// {2, 3, 4} always, plus whatever `EXPLORE_TEST_THREADS` names (the CI
/// matrix sets 2 and 8).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![2usize, 3, 4];
    if let Ok(raw) = std::env::var("EXPLORE_TEST_THREADS") {
        // A malformed matrix value must fail loudly, not silently test
        // only the defaults (the same silent-no-op shape the tables CLI
        // rejects for unknown experiment ids).
        let extra: usize = raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("EXPLORE_TEST_THREADS must be an integer, got {raw:?}"));
        assert!(
            extra > 1,
            "EXPLORE_TEST_THREADS must be > 1 to exercise the parallel engine, got {extra}"
        );
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

/// A symmetry mode of the equivalence matrix: plain search, slots-only
/// orbits (PR 4's reduction), full-state rebind (owned mask registers
/// permuting with their owners on the input-masked systems) or the
/// certified-scalarset mode (declared register families permuting with
/// the process slots on the Fig. 4 `SimultaneousRc` system).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SymMode {
    Off,
    Slots,
    Rebind,
    Scalarset,
}

/// Which symmetry modes the equivalence tests exercise: all four by
/// default; the CI matrix narrows to one via `EXPLORE_TEST_SYMMETRY` ∈
/// {`on`, `off`, `rebind`, `scalarset`} (`on` is the slots-only mode,
/// keeping the matrix value PR 4 introduced). Anything else fails
/// loudly.
fn symmetry_modes() -> Vec<SymMode> {
    match std::env::var("EXPLORE_TEST_SYMMETRY") {
        Err(_) => vec![
            SymMode::Off,
            SymMode::Slots,
            SymMode::Rebind,
            SymMode::Scalarset,
        ],
        Ok(raw) => match raw.trim() {
            "on" => vec![SymMode::Slots],
            "off" => vec![SymMode::Off],
            "rebind" => vec![SymMode::Rebind],
            "scalarset" => vec![SymMode::Scalarset],
            other => {
                panic!(
                    "EXPLORE_TEST_SYMMETRY must be `on`, `off`, `rebind` or \
                     `scalarset`, got {other:?}"
                )
            }
        },
    }
}

/// Whether the equivalence tests run the partial-order-reduced search,
/// the unreduced one, or (the default) both; the CI matrix narrows to
/// one via `EXPLORE_TEST_POR` ∈ {`on`, `off`}. Anything else fails
/// loudly, like the other matrix knobs.
fn por_modes() -> Vec<bool> {
    match std::env::var("EXPLORE_TEST_POR") {
        Err(_) => vec![false, true],
        Ok(raw) => match raw.trim() {
            "on" => vec![true],
            "off" => vec![false],
            other => panic!("EXPLORE_TEST_POR must be `on` or `off`, got {other:?}"),
        },
    }
}

/// The storage tier the suite's searches run under: `Flat` by default,
/// or whatever `EXPLORE_TEST_STORAGE` names (`flat` / `packed` /
/// `packed+filter` / `packed+spill`; the CI storage axis). Anything
/// else fails loudly, like the other matrix knobs.
fn storage_tier() -> StorageTier {
    match std::env::var("EXPLORE_TEST_STORAGE") {
        Err(_) => StorageTier::Flat,
        Ok(raw) => StorageTier::parse(raw.trim()).unwrap_or_else(|| {
            panic!(
                "EXPLORE_TEST_STORAGE must be one of flat, packed, \
                 packed+filter, packed+spill; got {raw:?}"
            )
        }),
    }
}

/// The suite's base config: [`ExploreConfig::default`] with the
/// [`storage_tier`] axis applied. Under `packed+spill` the per-shard
/// spill threshold is forced tiny (4 KiB) so these small state spaces
/// genuinely freeze resident entries to disk — outcomes must not
/// change (the equivalence assertions throughout are the proof).
fn test_config() -> ExploreConfig {
    let storage = storage_tier();
    ExploreConfig {
        storage,
        spill_threshold: (storage == StorageTier::PackedSpill).then_some(4096),
        ..ExploreConfig::default()
    }
}

/// `base` with the sleep-set POR engine switched on. The `analysis_id`
/// shares one cached footprint analysis per *system* across every
/// budget/mode/thread combination a test runs (the analysis only
/// depends on the built system, never on the crash model or engine), so
/// the doubled matrix does not recompute the fixpoint per config.
fn por_config(base: &ExploreConfig, analysis_id: String) -> ExploreConfig {
    ExploreConfig {
        por: true,
        analysis_id: Some(analysis_id),
        ..base.clone()
    }
}

/// The parallel-engine config for `threads` workers with the staged
/// multi-worker, multi-shard pipeline **forced** — the machine-aware
/// policy would clamp to `available_parallelism()` and run the fused
/// single-worker path on single-core hosts, making the thread matrix a
/// no-op. Outcomes are knob-independent (asserted throughout).
fn parallel_config(base: &ExploreConfig, threads: usize) -> ExploreConfig {
    ExploreConfig {
        threads,
        workers_override: Some(threads),
        shards_override: Some(threads),
        ..base.clone()
    }
}

fn sn_system(n: usize) -> (TypeHandle, RecordingWitness, Vec<Value>) {
    let sn = Sn::new(n);
    let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]);
    let w = check_recording(&sn, &a).expect("S_n witness");
    let inputs: Vec<Value> = w
        .assignment
        .teams
        .iter()
        .map(|t| match t {
            Team::A => Value::Int(0),
            Team::B => Value::Int(1),
        })
        .collect();
    (Arc::new(sn), w, inputs)
}

/// `explore` vs the parallel engine on the E2 systems, across thread
/// counts, with symmetry off, slots-only *and* full-rebind (the latter
/// on the input-masked variant of the same systems): byte-identical
/// `Verified` outcomes (state *and* leaf counts). Each thread count runs
/// twice — once under the default machine-aware worker policy
/// (`explore_parallel`) and once with the staged pipeline forced
/// (`parallel_config`), so single-core hosts exercise real multi-worker
/// levels too.
#[test]
fn engines_agree_on_e2_systems() {
    for n in [2usize, 3] {
        let (ty, w, inputs) = sn_system(n);
        let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
        let sym_factory = || build_team_rc_system_sym(ty.clone(), &w, &inputs);
        let masked_sym_factory = || build_masked_team_rc_system_sym(ty.clone(), &w, &inputs);
        for budget in [0usize, 1, 2] {
            let config = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..test_config()
            };
            for mode in symmetry_modes() {
                // The team systems declare no scalarset family; that
                // axis value is carried by
                // `scalarset_on_off_equivalence_on_simultaneous_rc`.
                if mode == SymMode::Scalarset {
                    continue;
                }
                // The masked S_3/budget-2 instance is an order of
                // magnitude bigger; the full-rebind mode covers it at
                // budgets 0–1 (E13 measures the larger instances in
                // release mode).
                if mode == SymMode::Rebind && n >= 3 && budget >= 2 {
                    continue;
                }
                for por in por_modes() {
                    let config = if por {
                        // The plain and slots-sym builders produce the
                        // same memory/program shape, so they share one
                        // analysis; the masked builders differ (extra
                        // mask registers) and get their own.
                        por_config(
                            &config,
                            match mode {
                                SymMode::Rebind => format!("test/masked-S_{n}"),
                                _ => format!("test/S_{n}"),
                            },
                        )
                    } else {
                        config.clone()
                    };
                    let serial = match mode {
                        SymMode::Off => explore(&factory, &config),
                        SymMode::Slots => explore_symmetric(&sym_factory, &config),
                        SymMode::Rebind => explore_symmetric(&masked_sym_factory, &config),
                        SymMode::Scalarset => unreachable!("skipped above"),
                    };
                    assert!(
                        matches!(serial, ExploreOutcome::Verified { .. }),
                        "S_{n} budget {budget} mode {mode:?} por {por} must \
                         verify: {serial:?}"
                    );
                    for threads in thread_counts() {
                        for forced in [false, true] {
                            let threaded = if forced {
                                parallel_config(&config, threads)
                            } else {
                                ExploreConfig {
                                    threads,
                                    ..config.clone()
                                }
                            };
                            let parallel = match mode {
                                SymMode::Off if forced => explore(&factory, &threaded),
                                SymMode::Off => explore_parallel(&factory, &threaded),
                                SymMode::Slots => explore_symmetric(&sym_factory, &threaded),
                                SymMode::Rebind => {
                                    explore_symmetric(&masked_sym_factory, &threaded)
                                }
                                SymMode::Scalarset => unreachable!("skipped above"),
                            };
                            assert_eq!(
                                serial, parallel,
                                "S_{n} budget {budget} threads {threads} forced {forced} \
                                 mode {mode:?} por {por}: engines must agree byte-for-byte"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Symmetry on vs off on every E2 config: identical verdicts, identical
/// (weighted) leaf counts, and never more states — strictly fewer
/// whenever the witness has an orbit to merge (`n ≥ 3`; the `S_2`
/// witness is one process per team, so its quotient is the identity).
/// The symmetric search is itself byte-identical across thread counts
/// 1/2/8.
#[test]
fn symmetry_on_off_equivalence_on_e2_systems() {
    for n in [2usize, 3, 4] {
        let (ty, w, inputs) = sn_system(n);
        let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
        let sym_factory = || build_team_rc_system_sym(ty.clone(), &w, &inputs);
        let budgets: &[usize] = if n < 4 { &[0, 1, 2] } else { &[0, 1] };
        for &budget in budgets {
            let config = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..test_config()
            };
            let (off_states, off_leaves) = match explore(&factory, &config) {
                ExploreOutcome::Verified { states, leaves } => (states, leaves),
                other => panic!("S_{n} budget {budget} must verify: {other:?}"),
            };
            let mut outcomes = Vec::new();
            for threads in [1usize, 2, 8] {
                let threaded = if threads == 1 {
                    config.clone()
                } else {
                    parallel_config(&config, threads)
                };
                outcomes.push(explore_symmetric(&sym_factory, &threaded));
            }
            for on in &outcomes[1..] {
                assert_eq!(
                    on, &outcomes[0],
                    "S_{n} budget {budget}: symmetric outcomes must be \
                     byte-identical across thread counts"
                );
            }
            match &outcomes[0] {
                ExploreOutcome::Verified { states, leaves } => {
                    assert_eq!(
                        *leaves, off_leaves,
                        "S_{n} budget {budget}: weighted leaf counts must \
                         match the plain engine"
                    );
                    if n >= 3 {
                        assert!(
                            *states < off_states,
                            "S_{n} budget {budget}: symmetry must merge the \
                             team-B orbit ({states} vs {off_states})"
                        );
                    } else {
                        assert_eq!(*states, off_states, "S_2 has no orbit to merge");
                    }
                }
                other => panic!("S_{n} budget {budget} must verify: {other:?}"),
            }
        }
    }
}

/// The `max_states` cap at every boundary of the S_2 budget-2 instance
/// (514 states): serial and parallel outcomes are byte-identical — the
/// parallel engine must neither overshoot the cap by a frontier (the
/// pre-sharding bug) nor truncate a run whose cap equals the exact
/// state-space size. Also pins `Verified { leaves }` parity at the cap
/// boundary: a level cut mid-dedup must not have counted
/// partially-processed nodes as leaves.
#[test]
fn cap_boundaries_are_byte_identical_across_engines() {
    let (ty, w, inputs) = sn_system(2);
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    let plain = ExploreConfig {
        crash: CrashModel::independent(2).after_decide(true),
        inputs: Some(inputs.clone()),
        ..test_config()
    };
    for por in por_modes() {
        // The POR state-space size is computed per setting — reduced
        // spaces are not monotonically smaller (sleep-set node
        // splitting), so the boundaries must come from the engine under
        // test, not the unreduced count.
        let base = if por {
            por_config(&plain, "test/S_2".into())
        } else {
            plain.clone()
        };
        let total = match explore(&factory, &base) {
            ExploreOutcome::Verified { states, .. } => states,
            other => panic!("S_2 budget 2 por {por} must verify: {other:?}"),
        };
        for cap in [1usize, 7, total / 2, total - 1, total, total + 1] {
            let config = ExploreConfig {
                max_states: cap,
                ..base.clone()
            };
            let serial = explore(&factory, &config);
            if cap >= total {
                // At (and above) the exact state-space size nothing may
                // truncate, and the leaf count is part of the contract.
                assert!(serial.is_verified(), "cap {cap} por {por}: {serial:?}");
            } else {
                assert_eq!(
                    serial,
                    ExploreOutcome::Truncated { states: cap },
                    "the serial cap is exact (por {por})"
                );
            }
            for threads in thread_counts() {
                // Forced staged pipeline: the cap must stay exact when
                // every level really fans out multi-worker and
                // multi-shard.
                let parallel = explore(&factory, &parallel_config(&config, threads));
                assert_eq!(
                    serial, parallel,
                    "cap {cap} threads {threads} por {por}: outcomes must be \
                     byte-identical"
                );
            }
        }
    }
}

/// `max_states` boundaries of the *symmetric* search: the cap counts
/// canonical states and stays exact — at/above the quotient size the
/// search verifies, below it truncates at exactly the cap — and the
/// outcome is byte-identical across thread counts 1/2/8.
#[test]
fn symmetric_cap_boundaries_are_exact() {
    let (ty, w, inputs) = sn_system(3);
    let sym_factory = || build_team_rc_system_sym(ty.clone(), &w, &inputs);
    let plain = ExploreConfig {
        crash: CrashModel::independent(2).after_decide(true),
        inputs: Some(inputs.clone()),
        ..test_config()
    };
    for por in por_modes() {
        let base = if por {
            por_config(&plain, "test/S_3".into())
        } else {
            plain.clone()
        };
        let total = match explore_symmetric(&sym_factory, &base) {
            ExploreOutcome::Verified { states, .. } => states,
            other => panic!("S_3 budget 2 por {por} must verify: {other:?}"),
        };
        for cap in [1usize, 7, total - 1, total, total + 1] {
            let config = ExploreConfig {
                max_states: cap,
                ..base.clone()
            };
            let serial = explore_symmetric(&sym_factory, &config);
            if cap >= total {
                assert!(serial.is_verified(), "cap {cap} por {por}: {serial:?}");
            } else {
                assert_eq!(
                    serial,
                    ExploreOutcome::Truncated { states: cap },
                    "the symmetric cap is exact (por {por})"
                );
            }
            for threads in [2usize, 8] {
                let parallel = explore_symmetric(&sym_factory, &parallel_config(&config, threads));
                assert_eq!(serial, parallel, "cap {cap} threads {threads} por {por}");
            }
        }
    }
}

/// Regression: the CI thread matrix used to be silently neutralized on
/// single-core runners — `level_workers` clamps by
/// `available_parallelism()`, so `EXPLORE_TEST_THREADS=8` still ran the
/// fused single-worker path everywhere. With the overrides routed
/// through [`parallel_config`], the staged pipeline must *actually* fan
/// out to every forced worker (asserted via [`ExploreStats`], which
/// reports the real per-level maximum).
#[test]
fn forced_multi_worker_pipelines_actually_run() {
    let (ty, w, inputs) = sn_system(3);
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    let base = ExploreConfig {
        crash: CrashModel::independent(2).after_decide(true),
        inputs: Some(inputs.clone()),
        ..test_config()
    };
    let serial = explore(&factory, &base);
    for threads in thread_counts() {
        let (outcome, stats) = explore_with_stats(&factory, &parallel_config(&base, threads));
        assert_eq!(serial, outcome, "threads {threads}");
        assert!(
            stats.frontier,
            "threads {threads} must select the frontier engine"
        );
        assert_eq!(stats.shards, threads, "forced shard count must be honoured");
        assert!(
            stats.max_level_workers > 1,
            "threads {threads}: the forced pipeline must use more than one \
             worker — a single-worker run means the override was ignored"
        );
        assert_eq!(
            stats.max_level_workers, threads,
            "threads {threads}: the S_3 peak level is large enough to fan \
             out to every forced worker"
        );
    }
}

/// The E2-recorded baseline: S_2 at 514 and S_3 at 3981 states (crash
/// budget 2, post-decide crashes on). The engine rebuild must not change
/// what "a state" is.
#[test]
fn e2_state_counts_are_preserved() {
    for (n, expected) in [(2usize, 514usize), (3, 3981)] {
        let (ty, w, inputs) = sn_system(n);
        let outcome = explore(
            &|| build_team_rc_system(ty.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(2).after_decide(true),
                inputs: Some(inputs.clone()),
                ..test_config()
            },
        );
        match outcome {
            ExploreOutcome::Verified { states, .. } => assert_eq!(states, expected, "S_{n}"),
            other => panic!("S_{n} must verify: {other:?}"),
        }
    }
}

/// The acceptance instance for the engine rebuild: S_4 with one
/// independent crash model-checks to `Verified` within the default
/// state cap.
#[test]
fn s4_budget_1_verifies_within_default_cap() {
    let (ty, w, inputs) = sn_system(4);
    let outcome = explore(
        &|| build_team_rc_system(ty.clone(), &w, &inputs),
        &ExploreConfig {
            crash: CrashModel::independent(1).after_decide(true),
            inputs: Some(inputs.clone()),
            ..test_config()
        },
    );
    match outcome {
        ExploreOutcome::Verified { states, .. } => {
            assert!(states > 10_000, "S_4 is a real instance: {states}");
            assert!(states < ExploreConfig::default().max_states);
        }
        other => panic!("S_4 budget 1 must verify: {other:?}"),
    }
}

/// A 1-process program that decides 0 on a clean run but 1 on a
/// recovery run — agreement across re-runs breaks only if the adversary
/// may crash it *after* it decided.
#[derive(Clone, Debug)]
struct ForgetfulDecider {
    addr: rc_runtime::Addr,
    pc: u8,
}

impl Program for ForgetfulDecider {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc {
            0 => {
                let seen = mem.read_register(self.addr);
                self.pc = 1;
                if seen.is_bottom() {
                    Step::Running
                } else {
                    Step::Decided(Value::Int(1))
                }
            }
            _ => {
                mem.write_register(self.addr, Value::Int(0));
                Step::Decided(Value::Int(0))
            }
        }
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn forgetful_factory() -> (Memory, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    let addr = mem.alloc_register(Value::Bottom);
    (mem, vec![Box::new(ForgetfulDecider { addr, pc: 0 })])
}

/// Regression (simultaneous crash-adversary asymmetry): with
/// `crash_after_decide: false`, a simultaneous `CrashAll` must not wipe
/// a decided run — the model checker used to reset decided processes
/// unconditionally and so reported violations the configured adversary
/// cannot produce. The independent and simultaneous models must agree.
#[test]
fn crash_all_respects_post_decide_policy_in_explore() {
    for mode in [CrashModel::independent(1), CrashModel::simultaneous(1)] {
        let strict = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: mode,
                ..test_config()
            },
        );
        assert!(
            strict.is_verified(),
            "{mode:?} without post-decide crashes: {strict:?}"
        );
        let lax = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: mode.after_decide(true),
                ..test_config()
            },
        );
        assert!(
            lax.is_violation(),
            "{mode:?} with post-decide crashes: {lax:?}"
        );
    }
}

/// Regression (`RandomScheduler` emitting `CrashAll` after every process
/// decided with `crash_after_decide: false`): the scheduler now ends the
/// execution instead of wiping decided runs, matching the exact layer.
#[test]
fn random_scheduler_crash_all_respects_post_decide_policy() {
    let mut sched = RandomScheduler::new(RandomSchedulerConfig {
        seed: 11,
        crash_prob: 1.0,
        crash: CrashModel::simultaneous(10),
    });
    let decided = vec![true, true, true];
    let ctx = SchedContext {
        n: 3,
        decided: &decided,
        steps_taken: 9,
        crashes_injected: 0,
    };
    for _ in 0..100 {
        assert_eq!(sched.next_action(&ctx), None, "no action can be legal");
    }
    // Partially decided: a step of the undecided process, never CrashAll.
    let decided = vec![true, false, true];
    let ctx = SchedContext {
        n: 3,
        decided: &decided,
        steps_taken: 9,
        crashes_injected: 0,
    };
    for _ in 0..100 {
        assert_eq!(sched.next_action(&ctx), Some(Action::Step(1)));
    }
}

/// Regression (state-cap off-by-one): the search used to visit
/// `max_states + 1` states before reporting truncation; now it visits
/// exactly `max_states`, and a cap equal to the exact state-space size
/// still verifies.
#[test]
fn state_cap_has_no_off_by_one() {
    let (ty, w, inputs) = sn_system(2);
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    let config = ExploreConfig {
        crash: CrashModel::independent(2).after_decide(true),
        inputs: Some(inputs.clone()),
        ..test_config()
    };
    // 514 states (asserted above). Capping exactly there must verify…
    let outcome = explore(
        &factory,
        &ExploreConfig {
            max_states: 514,
            ..config.clone()
        },
    );
    assert!(outcome.is_verified(), "{outcome:?}");
    // …and one below must truncate having visited exactly the cap.
    match explore(
        &factory,
        &ExploreConfig {
            max_states: 513,
            ..config
        },
    ) {
        ExploreOutcome::Truncated { states } => assert_eq!(states, 513),
        other => panic!("expected truncation: {other:?}"),
    }
}

/// Verdict precedence: a violation reachable within the cap is reported
/// as `Violation` even under a tiny cap (violations are definitive;
/// truncation only blocks `Verified`).
#[test]
fn violation_beats_truncation_when_found_first() {
    #[derive(Clone, Debug)]
    struct DecideOwn {
        input: Value,
    }
    impl Program for DecideOwn {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }
    let factory = || {
        let mem = Memory::new();
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(DecideOwn {
                input: Value::Int(0),
            }),
            Box::new(DecideOwn {
                input: Value::Int(1),
            }),
        ];
        (mem, programs)
    };
    // The first DFS branch reaches the violation within 3 visited states.
    let outcome = explore(
        &factory,
        &ExploreConfig {
            max_states: 3,
            ..test_config()
        },
    );
    assert!(outcome.is_violation(), "{outcome:?}");
}

/// The parallel engine finds violations, deterministically, and the
/// reported schedule replays to the claimed disagreement.
#[test]
fn parallel_engine_reports_replayable_violations() {
    let (ty, w, inputs) = sn_system(2);
    // Break validity: declare inputs that exclude what team B decides.
    let bogus = vec![Value::Int(7)];
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    let mut schedules = Vec::new();
    let counts = thread_counts();
    for threads in counts.iter().chain(counts.iter()).copied() {
        match explore(
            &factory,
            &ExploreConfig {
                crash: CrashModel::independent(1).after_decide(true),
                inputs: Some(bogus.clone()),
                threads,
                ..test_config()
            },
        ) {
            ExploreOutcome::Violation { schedule, kind, .. } => {
                schedules.push((schedule, kind));
            }
            other => panic!("bogus inputs must violate validity: {other:?}"),
        }
    }
    for s in &schedules[1..] {
        assert_eq!(s, &schedules[0], "parallel verdicts must be deterministic");
    }
}

/// Symmetric searches report witnesses in *original* process ids: the
/// schedule a violating symmetric search returns must replay, action for
/// action, on the plain (never-permuted) system and reproduce the
/// violation — at thread counts 1/2/8. (Validity is broken here the same
/// way as in `parallel_engine_reports_replayable_violations`: declared
/// inputs that exclude what team B decides.)
#[test]
fn symmetric_witness_replays_on_the_original_system() {
    let (ty, w, inputs) = sn_system(3);
    let bogus = vec![Value::Int(7)];
    let sym_factory = || build_team_rc_system_sym(ty.clone(), &w, &inputs);
    for threads in [1usize, 2, 8] {
        let base = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(true),
            inputs: Some(bogus.clone()),
            ..test_config()
        };
        let config = if threads == 1 {
            base
        } else {
            parallel_config(&base, threads)
        };
        let schedule = match explore_symmetric(&sym_factory, &config) {
            ExploreOutcome::Violation { schedule, .. } => schedule,
            other => panic!("bogus inputs must violate validity: {other:?}"),
        };
        // Replay on the plain system builder (no symmetry, no
        // canonicalization): the un-permuted schedule must reach the
        // same validity failure.
        let (mut mem, mut programs) = build_team_rc_system(ty.clone(), &w, &inputs);
        let mut sched = ScriptedScheduler::then_finish(schedule.clone());
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        check_consensus_execution(&exec, &bogus).expect_err(
            "the replayed witness must reproduce the validity violation \
             on the original system",
        );
    }
}

/// The broken Fig. 2 variant (Section 3.1) under symmetry: the agreement
/// violation is still found, and its witness replays on the original
/// broken system to an agreement failure.
#[test]
fn symmetric_search_finds_the_broken_guard_violation() {
    use rc_core::algorithms::build_broken_team_rc_system_sym;
    use rc_core::find_recording_witness;
    use rc_spec::types::Cas;
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let w = find_recording_witness(&cas, 3)
        .expect("cas witness")
        .normalized();
    let w = if w.assignment.team_size(Team::B) >= 2 {
        w
    } else {
        RecordingWitness {
            assignment: w.assignment.swap_teams(),
            q_a: w.q_b.clone(),
            q_b: w.q_a.clone(),
        }
    };
    let inputs: Vec<Value> = w
        .assignment
        .teams
        .iter()
        .map(|t| match t {
            Team::A => Value::Int(0),
            Team::B => Value::Int(1),
        })
        .collect();
    let sym_factory = || build_broken_team_rc_system_sym(cas.clone(), &w, &inputs);
    let config = ExploreConfig {
        crash: CrashModel::none(),
        inputs: Some(inputs.clone()),
        ..test_config()
    };
    let schedule = match explore_symmetric(&sym_factory, &config) {
        ExploreOutcome::Violation { schedule, .. } => schedule,
        other => panic!("the broken guard must fail: {other:?}"),
    };
    let (mut mem, mut programs) = build_broken_team_rc_system(cas.clone(), &w, &inputs);
    let mut sched = ScriptedScheduler::then_finish(schedule);
    let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
    let err = check_consensus_execution(&exec, &inputs)
        .expect_err("the replayed witness must violate agreement");
    assert!(err.to_string().contains("agreement"), "{err}");
}

/// Full-state symmetry (owned mask registers + `Program::rebind`) on the
/// masked E2 systems: identical verdicts and weighted leaf counts to the
/// plain masked search, strictly fewer states (the mask registers no
/// longer block the team-B orbit), byte-identical across thread counts
/// 1/2/8.
#[test]
fn rebind_on_off_equivalence_on_masked_systems() {
    for n in [2usize, 3] {
        let (ty, w, inputs) = sn_system(n);
        let factory = || build_masked_team_rc_system(ty.clone(), &w, &inputs);
        let sym_factory = || build_masked_team_rc_system_sym(ty.clone(), &w, &inputs);
        for budget in [0usize, 1] {
            let config = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..test_config()
            };
            let (off_states, off_leaves) = match explore(&factory, &config) {
                ExploreOutcome::Verified { states, leaves } => (states, leaves),
                other => panic!("masked S_{n} budget {budget} must verify: {other:?}"),
            };
            let mut outcomes = Vec::new();
            for threads in [1usize, 2, 8] {
                let threaded = if threads == 1 {
                    config.clone()
                } else {
                    parallel_config(&config, threads)
                };
                outcomes.push(explore_symmetric(&sym_factory, &threaded));
            }
            for on in &outcomes[1..] {
                assert_eq!(
                    on, &outcomes[0],
                    "masked S_{n} budget {budget}: rebind outcomes must be \
                     byte-identical across thread counts"
                );
            }
            match &outcomes[0] {
                ExploreOutcome::Verified { states, leaves } => {
                    assert_eq!(
                        *leaves, off_leaves,
                        "masked S_{n} budget {budget}: weighted leaf counts \
                         must match the plain engine"
                    );
                    if n >= 3 {
                        assert!(
                            *states < off_states,
                            "masked S_{n} budget {budget}: owned-cell orbits \
                             must merge the team-B processes ({states} vs \
                             {off_states})"
                        );
                    } else {
                        assert_eq!(*states, off_states, "masked S_2 has no orbit to merge");
                    }
                }
                other => panic!("masked S_{n} budget {budget} must verify: {other:?}"),
            }
        }
    }
}

/// The certified-scalarset mode on the Fig. 4 `SimultaneousRc` system
/// — the carrier of the `EXPLORE_TEST_SYMMETRY=scalarset` matrix value
/// (the team systems declare no register family, so the axis needs the
/// one catalog system that does): identical verdicts and weighted leaf
/// counts with the scalarset orbits on vs off, strictly fewer states,
/// byte-identical outcomes across serial and every matrix thread
/// count — and, on the POR axis, the same contract holding *composed*
/// with the persistent-set + sleep-set reduction (each por setting is
/// compared against its own plain baseline, so the strict-reduction
/// assertion proves the two reductions stack rather than cancel).
#[test]
fn scalarset_on_off_equivalence_on_simultaneous_rc() {
    if !symmetry_modes().contains(&SymMode::Scalarset) {
        // The matrix narrowed to a mode the team-system tests carry.
        return;
    }
    let factory = ConsensusObjectFactory { domain: 4 };
    // Mixed inputs: a two-process orbit beside a singleton — the family
    // permutes under the acting orbit only, which is the harder case
    // for `canonicalize_child` (E17 measures the larger budget-1
    // instances in release mode).
    let inputs = vec![Value::Int(0), Value::Int(0), Value::Int(1)];
    let plain = || build_simultaneous_rc_system(&factory, &inputs, 4);
    let sym = || build_simultaneous_rc_system_sym(&factory, &inputs, 4);
    let base = ExploreConfig {
        crash: CrashModel::simultaneous(0).after_decide(true),
        inputs: Some(inputs.clone()),
        analysis_id: Some("test/simultaneous-rc-n3".into()),
        ..test_config()
    };
    for por in por_modes() {
        let config = if por {
            ExploreConfig {
                por: true,
                ..base.clone()
            }
        } else {
            base.clone()
        };
        let (off_states, off_leaves) = match explore(&plain, &config) {
            ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("SimultaneousRc por {por} must verify: {other:?}"),
        };
        let mut outcomes = vec![explore_symmetric(&sym, &config)];
        for threads in thread_counts() {
            outcomes.push(explore_symmetric(&sym, &parallel_config(&config, threads)));
        }
        for on in &outcomes[1..] {
            assert_eq!(
                on, &outcomes[0],
                "SimultaneousRc por {por}: scalarset outcomes must be \
                 byte-identical across thread counts"
            );
        }
        match &outcomes[0] {
            ExploreOutcome::Verified { states, leaves } => {
                assert_eq!(
                    *leaves, off_leaves,
                    "SimultaneousRc por {por}: weighted leaf counts must \
                     match the plain engine"
                );
                assert!(
                    *states < off_states,
                    "SimultaneousRc por {por}: the certified family must \
                     merge orbits ({states} vs {off_states})"
                );
            }
            other => panic!("SimultaneousRc scalarset por {por} must verify: {other:?}"),
        }
    }
}

/// The POR axis of the equivalence matrix, on vs off, on the E2
/// systems:
///
/// * the verdict and weighted leaf count stay exact, unmasked and
///   masked, while the state count is the reduction — legitimately
///   different, and *not* monotone: sleep-set node splitting can
///   outweigh the pruning at independent budget 1 (E15 records both
///   directions);
/// * within each setting the serial and forced-parallel searches are
///   byte-identical at threads 1/2/8, plain and composed with
///   full-rebind symmetry;
/// * **truncating** configs report the identical `Truncated` outcome in
///   both settings at every cap below both state-space sizes — the cap
///   counts visited nodes exactly, reduced or not.
#[test]
fn por_on_off_equivalence_on_e2_systems() {
    let verified = |outcome: &ExploreOutcome, what: &str| match outcome {
        ExploreOutcome::Verified { states, leaves } => (*states, *leaves),
        other => panic!("{what} must verify: {other:?}"),
    };
    for n in [2usize, 3] {
        let (ty, w, inputs) = sn_system(n);
        let plain = || build_team_rc_system(ty.clone(), &w, &inputs);
        let masked = || build_masked_team_rc_system(ty.clone(), &w, &inputs);
        let masked_sym = || build_masked_team_rc_system_sym(ty.clone(), &w, &inputs);
        for budget in [0usize, 1] {
            let base = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..test_config()
            };
            // Unmasked: exact verdict + leaves (even the plain teams
            // have commuting step pairs, so states may shrink).
            let (_, plain_off_leaves) = verified(
                &explore(&plain, &base),
                &format!("unmasked S_{n} budget {budget} por off"),
            );
            let (_, plain_on_leaves) = verified(
                &explore(&plain, &por_config(&base, format!("test/S_{n}"))),
                &format!("unmasked S_{n} budget {budget} por on"),
            );
            assert_eq!(
                plain_on_leaves, plain_off_leaves,
                "unmasked S_{n} budget {budget}: POR must preserve the \
                 weighted leaf count exactly"
            );
            // Masked: exact verdict + leaves, byte-identical engines
            // within each setting.
            let reduced = por_config(&base, format!("test/masked-S_{n}"));
            let (off_states, off_leaves) = verified(
                &explore(&masked, &base),
                &format!("masked S_{n} budget {budget} por off"),
            );
            let on_serial = explore(&masked, &reduced);
            let (on_states, on_leaves) =
                verified(&on_serial, &format!("masked S_{n} budget {budget} por on"));
            assert_eq!(
                on_leaves, off_leaves,
                "masked S_{n} budget {budget}: POR must preserve the \
                 weighted leaf count exactly"
            );
            for threads in [1usize, 2, 8] {
                let threaded = if threads == 1 {
                    reduced.clone()
                } else {
                    parallel_config(&reduced, threads)
                };
                assert_eq!(
                    on_serial,
                    explore(&masked, &threaded),
                    "masked S_{n} budget {budget} threads {threads}: the \
                     reduced engines must agree byte-for-byte"
                );
            }
            // Composed with full-rebind symmetry: still exact, still
            // byte-identical across thread counts.
            let (_, sym_off_leaves) = verified(
                &explore_symmetric(&masked_sym, &base),
                &format!("masked S_{n} budget {budget} rebind por off"),
            );
            let sym_on = explore_symmetric(&masked_sym, &reduced);
            let (_, sym_on_leaves) = verified(
                &sym_on,
                &format!("masked S_{n} budget {budget} rebind por on"),
            );
            assert_eq!(sym_off_leaves, off_leaves, "rebind preserves leaves");
            assert_eq!(
                sym_on_leaves, off_leaves,
                "masked S_{n} budget {budget}: por+rebind must preserve the \
                 weighted leaf count exactly"
            );
            for threads in [2usize, 8] {
                assert_eq!(
                    sym_on,
                    explore_symmetric(&masked_sym, &parallel_config(&reduced, threads)),
                    "masked S_{n} budget {budget} threads {threads}: the \
                     combined reduction must agree byte-for-byte"
                );
            }
            // Truncating configs: below both state-space sizes the two
            // settings report the identical truncation, serial and
            // parallel.
            let smallest = off_states.min(on_states);
            for cap in [1usize, smallest / 2, smallest - 1] {
                if cap == 0 {
                    continue;
                }
                for (setting, cfg) in [("off", &base), ("on", &reduced)] {
                    let capped = ExploreConfig {
                        max_states: cap,
                        ..cfg.clone()
                    };
                    let serial = explore(&masked, &capped);
                    assert_eq!(
                        serial,
                        ExploreOutcome::Truncated { states: cap },
                        "masked S_{n} budget {budget} cap {cap} por {setting}: \
                         the cap counts visited nodes exactly"
                    );
                    for threads in [2usize, 8] {
                        assert_eq!(
                            serial,
                            explore(&masked, &parallel_config(&capped, threads)),
                            "masked S_{n} budget {budget} cap {cap} por \
                             {setting} threads {threads}"
                        );
                    }
                }
            }
        }
    }
}

/// Witnesses from a full-rebind symmetric search replay in *original*
/// process ids: the validity-violation schedule reported on the masked
/// system replays, action for action, on the original (never-permuted,
/// never-rebound) masked system — at thread counts 1/2/8.
#[test]
fn rebind_witness_replays_on_the_original_masked_system() {
    let (ty, w, inputs) = sn_system(3);
    let bogus = vec![Value::Int(7)];
    let sym_factory = || build_masked_team_rc_system_sym(ty.clone(), &w, &inputs);
    for threads in [1usize, 2, 8] {
        let base = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(true),
            inputs: Some(bogus.clone()),
            ..test_config()
        };
        let config = if threads == 1 {
            base
        } else {
            parallel_config(&base, threads)
        };
        let schedule = match explore_symmetric(&sym_factory, &config) {
            ExploreOutcome::Violation { schedule, .. } => schedule,
            other => panic!("bogus inputs must violate validity: {other:?}"),
        };
        let (mut mem, mut programs) = build_masked_team_rc_system(ty.clone(), &w, &inputs);
        let mut sched = ScriptedScheduler::then_finish(schedule.clone());
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        check_consensus_execution(&exec, &bogus).expect_err(
            "the replayed witness must reproduce the validity violation \
             on the original masked system",
        );
    }
}

/// The **masked-program counterexample**: the broken Fig. 2 guard under
/// input masking. The full-rebind search merges the masked team-B orbit,
/// still finds the Section 3.1 agreement violation, and its witness —
/// un-permuted *and* un-rebound — replays on the original masked broken
/// system to the same agreement failure.
#[test]
fn rebind_search_finds_the_masked_broken_guard_violation() {
    use rc_core::find_recording_witness;
    use rc_spec::types::Cas;
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let w = find_recording_witness(&cas, 3)
        .expect("cas witness")
        .normalized();
    let w = if w.assignment.team_size(Team::B) >= 2 {
        w
    } else {
        RecordingWitness {
            assignment: w.assignment.swap_teams(),
            q_a: w.q_b.clone(),
            q_b: w.q_a.clone(),
        }
    };
    let inputs: Vec<Value> = w
        .assignment
        .teams
        .iter()
        .map(|t| match t {
            Team::A => Value::Int(0),
            Team::B => Value::Int(1),
        })
        .collect();
    let sym_factory = || build_masked_broken_team_rc_system_sym(cas.clone(), &w, &inputs);
    let config = ExploreConfig {
        crash: CrashModel::none(),
        inputs: Some(inputs.clone()),
        ..test_config()
    };
    let schedule = match explore_symmetric(&sym_factory, &config) {
        ExploreOutcome::Violation { schedule, .. } => schedule,
        other => panic!("the masked broken guard must fail: {other:?}"),
    };
    let (mut mem, mut programs) = build_masked_broken_team_rc_system(cas.clone(), &w, &inputs);
    let mut sched = ScriptedScheduler::then_finish(schedule);
    let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
    let err = check_consensus_execution(&exec, &inputs)
        .expect_err("the replayed witness must violate agreement");
    assert!(err.to_string().contains("agreement"), "{err}");
}

/// Every storage tier — flat, packed, packed+filter, packed+spill — is
/// the *same* exact search: byte-identical `Verified` outcomes (state
/// and leaf counts) on the E2 systems, serial and with the forced
/// staged pipeline at every matrix thread count. The spill tier runs
/// with a tiny per-shard threshold so resident entries genuinely
/// freeze to disk mid-search.
#[test]
fn storage_tiers_agree_byte_identically() {
    let (ty, w, inputs) = sn_system(2);
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    for budget in [1usize, 2] {
        let base = ExploreConfig {
            crash: CrashModel::independent(budget).after_decide(true),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        };
        let reference = explore(&factory, &base);
        assert!(reference.is_verified(), "{reference:?}");
        for tier in StorageTier::ALL {
            let config = ExploreConfig {
                storage: tier,
                spill_threshold: (tier == StorageTier::PackedSpill).then_some(512),
                ..base.clone()
            };
            let (serial, stats) = explore_with_stats(&factory, &config);
            assert_eq!(serial, reference, "serial {tier} budget {budget}");
            assert_eq!(stats.storage, tier);
            if tier == StorageTier::PackedSpill {
                assert!(
                    stats.spilled_bytes > 0,
                    "threshold 512 must spill at budget {budget}"
                );
            }
            if tier == StorageTier::PackedFilter {
                assert!(stats.filter_occupancy > 0);
            }
            for threads in thread_counts() {
                let threaded = explore(&factory, &parallel_config(&config, threads));
                assert_eq!(threaded, reference, "{tier} x{threads} budget {budget}");
            }
        }
    }
}

/// The `max_bytes` cap is exact and storage/thread-independent: the
/// accounted cost model is a pure function of the accepted keys in
/// canonical order, so a byte-capped search truncates at the identical
/// state count under every tier and thread count — and a cap equal to
/// the full space's accounted bytes still verifies. Also pins the
/// routing contract: a byte-capped `threads: 1` run executes on the
/// frontier engine.
#[test]
fn byte_cap_boundary_is_exact_across_tiers_and_threads() {
    let (ty, w, inputs) = sn_system(2);
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    let base = ExploreConfig {
        crash: CrashModel::independent(2).after_decide(true),
        inputs: Some(inputs.clone()),
        ..ExploreConfig::default()
    };
    // Generous cap: verifies, byte-identically to the uncapped search —
    // but on the frontier engine even serially.
    let reference = explore(&factory, &base);
    let (capped, stats) = explore_with_stats(
        &factory,
        &ExploreConfig {
            max_bytes: Some(1 << 30),
            ..base.clone()
        },
    );
    assert_eq!(capped, reference);
    assert!(
        stats.frontier,
        "byte-capped serial runs must use the frontier engine"
    );
    // Tight cap: truncates, at the same accepted-state count everywhere.
    let mut cut_states: Option<usize> = None;
    for tier in StorageTier::ALL {
        for threads in [1usize, 2, 8] {
            let config = ExploreConfig {
                max_bytes: Some(2_000),
                storage: tier,
                spill_threshold: (tier == StorageTier::PackedSpill).then_some(512),
                threads,
                workers_override: (threads > 1).then_some(threads),
                shards_override: (threads > 1).then_some(threads),
                ..base.clone()
            };
            match explore(&factory, &config) {
                ExploreOutcome::Truncated { states } => {
                    assert!(states > 0, "a 2000-byte cap fits more than the root");
                    match cut_states {
                        None => cut_states = Some(states),
                        Some(expected) => {
                            assert_eq!(states, expected, "byte-cap cut moved: {tier} x{threads}")
                        }
                    }
                }
                other => panic!("2000-byte cap must truncate S_2/budget-2: {other:?}"),
            }
        }
    }
}

/// The memory/occupancy counters in [`rc_runtime::ExploreStats`] are
/// populated and monotone in the searched space: growing the crash
/// budget grows every byte account (more states, more interned values,
/// a longer witness log), on the serial and frontier engines alike.
#[test]
fn memory_counters_are_monotone_in_the_searched_space() {
    let (ty, w, inputs) = sn_system(2);
    let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
    for threads in [1usize, 2] {
        let mut previous: Option<rc_runtime::ExploreStats> = None;
        for budget in [0usize, 1, 2] {
            let base = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..test_config()
            };
            let config = if threads > 1 {
                parallel_config(&base, threads)
            } else {
                base
            };
            let (outcome, stats) = explore_with_stats(&factory, &config);
            assert!(outcome.is_verified(), "{outcome:?}");
            assert!(stats.interned_bytes > 0);
            assert!(stats.table_bytes > 0);
            assert!(stats.witness_bytes > 0);
            assert!(stats.peak_table_bytes >= stats.table_bytes);
            if let Some(prev) = previous {
                assert!(stats.interned_bytes >= prev.interned_bytes, "x{threads}");
                // Under the spill tier the *resident* table can shrink as
                // the search grows (a bigger search freezes more runs to
                // disk), so monotonicity is asserted on total stored
                // bytes — resident plus spilled.
                assert!(
                    stats.table_bytes + stats.spilled_bytes
                        >= prev.table_bytes + prev.spilled_bytes,
                    "x{threads}"
                );
                assert!(stats.witness_bytes > prev.witness_bytes, "x{threads}");
                assert!(
                    stats.peak_table_bytes >= prev.peak_table_bytes,
                    "x{threads}"
                );
            }
            previous = Some(stats);
        }
    }
}
