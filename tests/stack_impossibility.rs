//! Appendix H, executed: `rcons(stack) = 1` while `cons(stack) = 2`.
//!
//! The impossibility proof (Fig. 8) is a valency argument over *all*
//! possible algorithms; what can be executed is its two constructive
//! ingredients:
//!
//! 1. the classic 2-process stack consensus protocol works under halting
//!    failures (so `cons(stack) ≥ 2` — Herlihy), verified exhaustively;
//! 2. the natural recoverable extensions of that protocol are broken by
//!    the crash adversary: the model checker finds agreement/validity
//!    violations for *both* ways of interpreting a ⊥-pop, exactly in the
//!    spirit of the Fig. 8 case analysis (a crashed process's lost pop
//!    response cannot be recovered, and re-popping destroys the record).

use rc_runtime::{explore, CrashModel, ExploreConfig, MemOps, Memory, Program, Step};
use rc_spec::types::Stack;
use rc_spec::{Operation, Value};
use std::sync::Arc;

/// What a process concludes when its pop returns ⊥ (empty stack) — a case
/// the crash-free protocol never hits, so any recoverable extension must
/// pick an interpretation. Fig. 8 shows every choice loses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BottomMeans {
    /// Treat ⊥ as "I won": decide own input.
    Won,
    /// Treat ⊥ as "I lost": decide the other process's input.
    Lost,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pc {
    WriteOwnReg,
    Pop,
    ReadOtherReg,
    DecideOwn,
}

/// The classic 2-process stack consensus protocol (stack preloaded with a
/// loser token below a winner token; whoever pops the winner token wins),
/// naively re-run after crashes.
#[derive(Clone, Debug)]
struct StackConsensus {
    stack: rc_runtime::Addr,
    my_reg: rc_runtime::Addr,
    other_reg: rc_runtime::Addr,
    input: Value,
    policy: BottomMeans,
    pc: Pc,
}

const LOSER: i64 = 0;
const WINNER: i64 = 1;

impl Program for StackConsensus {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc {
            Pc::WriteOwnReg => {
                mem.write_register(self.my_reg, self.input.clone());
                self.pc = Pc::Pop;
                Step::Running
            }
            Pc::Pop => {
                let popped = mem.apply(self.stack, &Operation::nullary("pop"));
                match popped {
                    Value::Int(WINNER) => {
                        self.pc = Pc::DecideOwn;
                        Step::Running
                    }
                    Value::Int(LOSER) => {
                        self.pc = Pc::ReadOtherReg;
                        Step::Running
                    }
                    Value::Bottom => match self.policy {
                        BottomMeans::Won => {
                            self.pc = Pc::DecideOwn;
                            Step::Running
                        }
                        BottomMeans::Lost => {
                            self.pc = Pc::ReadOtherReg;
                            Step::Running
                        }
                    },
                    other => panic!("unexpected stack content {other}"),
                }
            }
            Pc::ReadOtherReg => Step::Decided(mem.read_register(self.other_reg)),
            Pc::DecideOwn => Step::Decided(self.input.clone()),
        }
    }

    fn on_crash(&mut self) {
        self.pc = Pc::WriteOwnReg;
    }

    fn state_key(&self) -> Value {
        Value::Int(match self.pc {
            Pc::WriteOwnReg => 0,
            Pc::Pop => 1,
            Pc::ReadOtherReg => 2,
            Pc::DecideOwn => 3,
        })
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn system(policy: BottomMeans) -> (Memory, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    // Stack preloaded [loser, winner] (winner on top).
    let stack = mem.alloc_object(
        Arc::new(Stack::new(4, 2)),
        Value::List(vec![Value::Int(LOSER), Value::Int(WINNER)]),
    );
    let regs = [
        mem.alloc_register(Value::Bottom),
        mem.alloc_register(Value::Bottom),
    ];
    let programs: Vec<Box<dyn Program>> = (0..2)
        .map(|i| {
            Box::new(StackConsensus {
                stack,
                my_reg: regs[i],
                other_reg: regs[1 - i],
                input: Value::Int(i as i64 + 10),
                policy,
                pc: Pc::WriteOwnReg,
            }) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

fn inputs() -> Vec<Value> {
    vec![Value::Int(10), Value::Int(11)]
}

#[test]
fn stack_consensus_is_correct_under_halting_failures() {
    // cons(stack) ≥ 2: exhaustively verified with zero crashes. (Halting
    // is subsumed: every prefix where a process stops is explored.)
    for policy in [BottomMeans::Won, BottomMeans::Lost] {
        let outcome = explore(
            &|| system(policy),
            &ExploreConfig {
                crash: CrashModel::independent(0),
                inputs: Some(inputs()),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{policy:?}: {outcome:?}");
    }
}

#[test]
fn crash_adversary_defeats_bottom_means_lost() {
    // One crash suffices: p1 pops the winner token, crashes (losing the
    // response), re-runs and pops the loser token — while nobody else took
    // a step — and decides the other's unwritten register (⊥) or, once the
    // other writes, the other's value while the other also claims victory.
    let outcome = explore(
        &|| system(BottomMeans::Lost),
        &ExploreConfig {
            crash: CrashModel::independent(1),
            inputs: Some(inputs()),
            ..ExploreConfig::default()
        },
    );
    assert!(
        outcome.is_violation(),
        "Fig. 8: the lost pop response cannot be recovered: {outcome:?}"
    );
}

#[test]
fn crash_adversary_defeats_bottom_means_won() {
    // The other interpretation needs two crashes: p1 pops both tokens
    // across two crashed runs; both processes then see ⊥ and both decide
    // their own input.
    let outcome = explore(
        &|| system(BottomMeans::Won),
        &ExploreConfig {
            crash: CrashModel::independent(2),
            inputs: Some(inputs()),
            ..ExploreConfig::default()
        },
    );
    assert!(
        outcome.is_violation(),
        "Fig. 8: re-popping destroys the record: {outcome:?}"
    );
}

#[test]
fn fig8_case_analysis_on_the_bounded_stack() {
    // The commute/overwrite structure used by the Fig. 8 cases.
    use rc_core::analysis::{commutes, overwrites};
    let s = Stack::new(4, 2);
    let pop = Operation::nullary("pop");
    let push = |v: i64| Operation::new("push", Value::Int(v));
    // (a) two Pops commute.
    let q = Value::List(vec![Value::Int(0), Value::Int(1)]);
    assert!(commutes(&s, &q, &pop, &pop));
    // (b) Push overwrites Pop on the empty stack.
    assert!(overwrites(&s, &Value::empty_list(), &push(1), &pop));
    // (c)–(f) involve crashes of p1 plus solo runs; their executable form
    // is the crash_adversary tests above.
}

#[test]
fn stack_is_structurally_recording_but_not_readable() {
    // The resolution of the apparent paradox (see rc-spec's Stack docs):
    // Definition 4 holds for the stack at every level, but without a Read
    // operation Theorem 8 cannot convert the witness into an algorithm.
    use rc_core::is_recording;
    use rc_spec::ObjectType;
    let s = Stack::new(3, 2);
    assert!(!s.is_readable());
    assert!(is_recording(&s, 2));
    assert!(is_recording(&s, 3));
}

#[test]
fn adding_read_turns_the_stack_into_a_universal_object() {
    // The foil: a stack WITH a Read operation is a write-once log — the
    // push-only recording witness becomes observable without destruction,
    // Theorem 8 applies, and the readable stack solves RC at (up to
    // capacity) any level. Executed: 3-process RC under crashes.
    use rc_core::algorithms::build_tournament_rc;
    use rc_core::find_recording_witness;
    use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig};
    use rc_runtime::verify::check_consensus_execution;
    use rc_runtime::{run, RunOptions};
    use rc_spec::types::ReadableStack;
    use rc_spec::{ObjectType, TypeHandle};

    let rs: TypeHandle = Arc::new(ReadableStack::new(4, 2));
    assert!(rs.is_readable());
    let witness = find_recording_witness(&rs, 3).expect("push-only witness");
    let inputs = vec![Value::Int(10), Value::Int(11), Value::Int(12)];
    for seed in 0..50 {
        let (mut mem, mut programs) = build_tournament_rc(rs.clone(), &witness, &inputs);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.2,
            crash: CrashModel::independent(4).after_decide(true),
        });
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        check_consensus_execution(&exec, &inputs).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
