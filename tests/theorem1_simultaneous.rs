//! Theorem 1, executed: with **simultaneous** crashes, recoverable
//! consensus is exactly as hard as consensus — the Fig. 4 transformation
//! turns *any* consensus algorithm into a simultaneous-crash RC algorithm.
//!
//! The headline composition: `T_4` cannot solve 4-process RC under
//! *independent* crashes (Corollary 20), yet Fig. 4 over Theorem 3's
//! `T_4` consensus solves 4-process RC under *simultaneous* crashes —
//! the two crash models genuinely differ.

use rc_core::algorithms::{
    build_simultaneous_rc_system, discerning_consensus_factory, ConsensusObjectFactory,
};
use rc_core::{check_discerning, Assignment};
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig};
use rc_runtime::verify::check_consensus_execution;
use rc_runtime::{explore, run, CrashModel, ExploreConfig, RunOptions};
use rc_spec::types::Tn;
use rc_spec::Value;

fn inputs(n: usize) -> Vec<Value> {
    (0..n as i64).map(Value::Int).collect()
}

#[test]
fn fig4_on_consensus_objects_survives_simultaneous_crashes() {
    let factory = ConsensusObjectFactory { domain: 8 };
    let inputs = inputs(5);
    for seed in 0..200 {
        let (mut mem, mut programs) = build_simultaneous_rc_system(&factory, &inputs, 10);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.04,
            crash: CrashModel::simultaneous(6).after_decide(true),
        });
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        check_consensus_execution(&exec, &inputs).unwrap_or_else(|e| panic!("seed={seed}: {e}"));
    }
}

#[test]
fn fig4_over_t4_consensus_solves_simultaneous_rc() {
    // The Theorem 1 ⇐ direction for a concrete type at its full level:
    // cons(T_4) = 4, so 4-process RC is solvable under simultaneous
    // crashes using T_4 — even though rcons(T_4) ≤ 3 for independent
    // crashes.
    let n = 4;
    let tn = Tn::new(n);
    let witness = check_discerning(
        &tn,
        &Assignment::split(
            Tn::forget_state(),
            vec![Tn::op_a(); n / 2],
            vec![Tn::op_b(); n.div_ceil(2)],
        ),
    )
    .expect("T_n is n-discerning");
    let factory = discerning_consensus_factory(std::sync::Arc::new(tn), witness);
    let inputs = inputs(n);
    for seed in 0..100 {
        let (mut mem, mut programs) = build_simultaneous_rc_system(&factory, &inputs, 8);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.02,
            crash: CrashModel::simultaneous(4).after_decide(true),
        });
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        check_consensus_execution(&exec, &inputs)
            .unwrap_or_else(|e| panic!("seed={seed}: {e}\ntrace:\n{}", exec.trace));
    }
}

#[test]
fn fig4_model_checked_with_two_processes() {
    let factory = ConsensusObjectFactory { domain: 4 };
    let inputs = inputs(2);
    let outcome = explore(
        &|| build_simultaneous_rc_system(&factory, &inputs, 5),
        &ExploreConfig {
            crash: CrashModel::simultaneous(2).after_decide(true),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        },
    );
    assert!(outcome.is_verified(), "{outcome:?}");
}

/// The independent-crash hunt (E3 ablation), part 1: *safety*.
///
/// Theory (Theorem 14 + Proposition 19) guarantees that no algorithm —
/// including Fig. 4 over T_4 consensus — solves 4-process RC under
/// independent crashes. Interestingly, the property Fig. 4 loses under
/// independent crashes is **not** agreement or validity: the `Round[j]`
/// guard (Lemma 27) ensures each consensus instance sees every process at
/// most once even across independent crash/recoveries, and the
/// write-D-then-scan-Round handshake of Lemma 29 does not use
/// simultaneity, so safety carries over. This randomized hunt documents
/// that: zero safety violations are expected (and found).
///
/// What breaks is *recoverable wait-freedom* — see
/// [`independent_adversary_starves_a_run`], part 2 of this experiment.
#[test]
fn fig4_over_t4_under_independent_crashes_hunt() {
    let n = 4;
    let tn = Tn::new(n);
    let witness = check_discerning(
        &tn,
        &Assignment::split(
            Tn::forget_state(),
            vec![Tn::op_a(); n / 2],
            vec![Tn::op_b(); n.div_ceil(2)],
        ),
    )
    .expect("T_n is n-discerning");
    let factory = discerning_consensus_factory(std::sync::Arc::new(tn), witness);
    let inputs = inputs(n);
    let mut violations = 0usize;
    for seed in 0..100 {
        let (mut mem, mut programs) = build_simultaneous_rc_system(&factory, &inputs, 10);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.05,
            crash: CrashModel::independent(6).after_decide(true), // independent crashes!
        });
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        if check_consensus_execution(&exec, &inputs).is_err() {
            violations += 1;
        }
    }
    // Safety genuinely holds (see the doc comment); record the zero.
    println!("independent-crash hunt: {violations}/100 random schedules violated RC");
    assert_eq!(
        violations, 0,
        "Fig. 4's safety survives independent crashes"
    );
}

/// The independent-crash hunt, part 2: *liveness* is what breaks.
///
/// Under independent crashes the adversary can crash one process over and
/// over; each recovery climbs one round higher (its `Round[j]` entry only
/// grows), and a process that never crashes keeps failing the line-44
/// scan and is dragged through round after round without ever deciding —
/// an arbitrarily long crash-free run, violating recoverable wait-freedom
/// in the limit. Under **simultaneous** crashes this adversary does not
/// exist: every crash also ends the chaser's run (it "crashes" rather
/// than running forever), which is exactly why Theorem 1 holds there.
///
/// This test builds the chase for a concrete budget: every crash of p0
/// forces p1 at least one round higher, with p1 never crashing and never
/// deciding. Once the crashes stop, everyone terminates (Lemma 25).
#[test]
fn independent_adversary_starves_a_run() {
    use rc_core::algorithms::{alloc_simultaneous_rc, SimultaneousRc};
    use rc_runtime::{Memory, Program, Step};

    let n = 2;
    let crash_budget = 12;
    let factory = ConsensusObjectFactory { domain: 4 };
    let mut mem = Memory::new();
    let shared = alloc_simultaneous_rc(&mut mem, &factory, n, crash_budget + 4);
    let round_reg_p0 = shared.round_regs[0];
    let mut p0 = SimultaneousRc::new(shared.clone(), 0, n, Value::Int(0));
    let mut p1 = SimultaneousRc::new(shared.clone(), 1, n, Value::Int(1));

    let mut p0_outputs: Vec<Value> = Vec::new();
    let mut crashes_used = 0usize;
    while crashes_used < crash_budget {
        // Adversary phase 1: run p0 (crashing it whenever its current run
        // decides) until its Round entry is strictly ahead of p1's round.
        // Each extra round costs the adversary exactly one crash.
        let mut guard = 0;
        while mem.peek(round_reg_p0).as_int().expect("int") <= p1.current_round() as i64 {
            if let Step::Decided(v) = p0.step(&mut mem) {
                p0_outputs.push(v);
                p0.on_crash();
                crashes_used += 1;
                if crashes_used >= crash_budget {
                    break;
                }
            }
            guard += 1;
            assert!(guard < 100_000, "p0 failed to advance its round");
        }
        if crashes_used >= crash_budget {
            break;
        }

        // Adversary phase 2: p1 runs alone and crash-free. Its line-44
        // scan reads Round[0] first, sees p0 ahead, and climbs — it can
        // never decide while the adversary keeps p0 in front.
        let target = p1.current_round() + 1;
        let mut guard = 0;
        while p1.current_round() < target {
            match p1.step(&mut mem) {
                Step::Decided(_) => {
                    panic!("p1 decided although p0's Round was ahead")
                }
                Step::Running => {}
            }
            guard += 1;
            assert!(guard < 100_000, "p1 stopped making progress");
        }
    }
    assert!(
        p1.current_round() + 2 >= crash_budget,
        "each crash of p0 drags the never-crashing p1 about one round \
         higher: p1 reached round {} after {crash_budget} crashes",
        p1.current_round()
    );

    // The adversary stops: both processes now terminate (Lemma 25) and
    // every output — including p0's earlier per-run outputs — agrees.
    let mut outputs = p0_outputs;
    for p in [&mut p0, &mut p1] {
        let mut guard = 0;
        loop {
            if let Step::Decided(v) = p.step(&mut mem) {
                outputs.push(v);
                break;
            }
            guard += 1;
            assert!(guard < 100_000, "no decision after crashes stopped");
        }
    }
    let first = outputs[0].clone();
    assert!(
        outputs.iter().all(|v| *v == first),
        "agreement across all runs once crashes stop: {outputs:?}"
    );
}
