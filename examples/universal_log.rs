//! A recoverable FIFO queue built from `RUniversal` (Fig. 7): producers
//! and consumers crash mid-operation and every operation is still applied
//! exactly once, in a single linearization order that a sequential replay
//! certifies.
//!
//! Also runs the ablation: the same construction *without* the recovery
//! function (the pre-NVM Herlihy client) duplicates an operation under a
//! targeted crash.
//!
//! ```sh
//! cargo run --example universal_log
//! ```

use rc_core::algorithms::ConsensusObjectFactory;
use recoverable_consensus::runtime::sched::{
    Action, RandomScheduler, RandomSchedulerConfig, ScriptedScheduler,
};
use recoverable_consensus::runtime::{run, CrashModel, Memory, Program, RunOptions};
use recoverable_consensus::spec::types::{Counter, Queue};
use recoverable_consensus::spec::{Operation, Value};
use recoverable_consensus::universal::{
    audit_history, HerlihyWorker, RUniversalWorker, UniversalLayout,
};
use std::sync::Arc;

fn main() {
    recoverable_queue();
    println!();
    duplicate_ablation();
}

fn recoverable_queue() {
    println!("── RUniversal: recoverable queue under crashes ──");
    let n = 4;
    let ops_per = 3;
    let mut mem = Memory::new();
    let pool = 1 + n * ops_per;
    let layout = UniversalLayout::alloc(
        &mut mem,
        Arc::new(Queue::new(32, 16)),
        Value::empty_list(),
        n,
        ops_per,
        &ConsensusObjectFactory {
            domain: pool as u32,
        },
    );
    // Two producers, two consumers.
    let mut programs: Vec<Box<dyn Program>> = Vec::new();
    for pid in 0..n {
        let ops: Vec<Operation> = if pid < 2 {
            (0..ops_per)
                .map(|k| Operation::new("enq", Value::Int((pid * ops_per + k) as i64)))
                .collect()
        } else {
            vec![Operation::nullary("deq"); ops_per]
        };
        programs.push(Box::new(RUniversalWorker::new(layout.clone(), pid, ops)));
    }
    let mut sched = RandomScheduler::new(RandomSchedulerConfig {
        seed: 11,
        crash_prob: 0.02,
        crash: CrashModel::independent(6),
    });
    let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
    println!(
        "ran {} steps with {} crashes; all decided: {}",
        exec.steps, exec.crashes, exec.all_decided
    );
    let report = audit_history(&mem, &layout).expect("history replays sequentially");
    println!(
        "linearization: {} operations, applied per process {:?}",
        report.order.len(),
        report.applied_per_pid
    );
    println!("final queue state: {}", report.final_state);
    for (pid, outs) in exec.outputs.iter().enumerate() {
        if let Some(Value::List(responses)) = outs.last() {
            let shown: Vec<String> = responses.iter().map(|v| v.to_string()).collect();
            println!("p{} responses: [{}]", pid + 1, shown.join(", "));
        }
    }
    assert_eq!(report.order.len(), n * ops_per, "exactly once each");
}

fn duplicate_ablation() {
    println!("── Ablation: the same crash, with and without recovery ──");
    for recoverable in [false, true] {
        let mut mem = Memory::new();
        let layout = UniversalLayout::alloc(
            &mut mem,
            Arc::new(Counter::new(64)),
            Value::Int(0),
            1,
            2,
            &ConsensusObjectFactory { domain: 8 },
        );
        let ops = vec![Operation::nullary("inc")];
        let (mut programs, skew): (Vec<Box<dyn Program>>, usize) = if recoverable {
            (
                vec![Box::new(RUniversalWorker::new(layout.clone(), 0, ops))],
                1, // the worker's initial ReadAnnounce step
            )
        } else {
            (
                vec![Box::new(HerlihyWorker::new(layout.clone(), 0, ops))],
                0,
            )
        };
        // Crash immediately after the append, before the response returns.
        let mut schedule: Vec<Action> =
            std::iter::repeat(Action::Step(0)).take(17 + skew).collect();
        schedule.push(Action::Crash(0));
        let mut sched = ScriptedScheduler::then_finish(schedule);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        assert!(exec.all_decided);
        let report = audit_history(&mem, &layout).expect("list well-formed");
        println!(
            "{}: one logical increment, crash after append → counter = {} ({})",
            if recoverable {
                "RUniversal (with recovery) "
            } else {
                "Herlihy   (no recovery)   "
            },
            report.final_state,
            if report.applied_per_pid[0] == 1 {
                "exactly once ✓"
            } else {
                "DUPLICATED ✗"
            }
        );
    }
}
