//! Quickstart: locate a type in both hierarchies, then actually *solve*
//! recoverable consensus with it under a crashing adversary.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use recoverable_consensus::core::algorithms::build_tournament_rc;
use recoverable_consensus::core::{check_recording, compute_hierarchy, Assignment};
use recoverable_consensus::runtime::sched::{RandomScheduler, RandomSchedulerConfig};
use recoverable_consensus::runtime::verify::check_consensus_execution;
use recoverable_consensus::runtime::{run, CrashModel, RunOptions};
use recoverable_consensus::spec::types::{Sn, Tn};
use recoverable_consensus::spec::Value;
use std::sync::Arc;

fn main() {
    // ── 1. The hierarchy gap (Corollary 20) ────────────────────────────
    // T_6 has consensus number 6, but its maximum recording level is 4:
    // recoverable consensus is strictly harder than consensus for T_6.
    let t6 = Tn::new(6);
    let report = compute_hierarchy(&t6, 8);
    println!("T_6 hierarchy report: {report}");

    // S_6 closes the gap: rcons = cons = 6 (Proposition 21).
    let s6 = Sn::new(6);
    let report = compute_hierarchy(&s6, 8);
    println!("S_6 hierarchy report: {report}");

    // ── 2. Solving RC with S_4 under crashes (Theorem 8 + Prop. 30) ───
    let n = 4;
    let witness = check_recording(
        &Sn::new(n),
        &Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]),
    )
    .expect("S_n is n-recording (Proposition 21)");

    let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let mut total_crashes = 0;
    for seed in 0..100 {
        let (mut mem, mut programs) = build_tournament_rc(Arc::new(Sn::new(n)), &witness, &inputs);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.2,
            crash: CrashModel::independent(5).after_decide(true),
        });
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        total_crashes += exec.crashes;
        let decision = check_consensus_execution(&exec, &inputs)
            .expect("agreement, validity and termination hold");
        assert!(decision.is_some());
    }
    println!(
        "S_4 tournament RC: 100 random schedules, {total_crashes} injected crashes, \
         0 violations"
    );
}
