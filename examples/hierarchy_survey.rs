//! Survey the whole type catalog: compute each type's position in the
//! consensus and recoverable-consensus hierarchies and cross-check the
//! published values (the executable form of the paper's Figure 1 and
//! Corollary 17).
//!
//! ```sh
//! cargo run --release --example hierarchy_survey
//! ```

use recoverable_consensus::core::compute_hierarchy;
use recoverable_consensus::spec::catalog::{catalog, ConsensusNumber};

fn main() {
    println!(
        "{:<18} {:<5} {:<11} {:<10} {:<14} {:<10} {:<12}",
        "type", "read", "discerning", "recording", "computed rcons", "known cons", "known rcons"
    );
    println!("{}", "-".repeat(86));
    for entry in catalog() {
        // Keep the witness searches fast for ∞-level types.
        let cap = match entry.known_cons {
            ConsensusNumber::Finite(n) => (n + 2).min(8),
            ConsensusNumber::Infinite => 5,
        };
        let report = compute_hierarchy(&entry.object, cap);
        let rcons = match (report.rcons_lower(), report.rcons_upper()) {
            (lo, Some(hi)) if lo == hi => format!("{lo}"),
            (lo, Some(hi)) => format!("[{lo}, {hi}]"),
            (lo, None) => format!("≥{lo}"),
        };
        println!(
            "{:<18} {:<5} {:<11} {:<10} {:<14} {:<10} {:<12}",
            entry.id,
            if report.readable { "yes" } else { "NO" },
            report.max_discerning.to_string(),
            report.max_recording.to_string(),
            rcons,
            entry.known_cons.to_string(),
            entry.known_rcons.to_string(),
        );
        assert!(
            report.satisfies_corollary_17(),
            "{}: computed interval violates Corollary 17",
            entry.id
        );
    }
    println!();
    println!("notes:");
    println!("  · for readable types, cons = max discerning level (Theorem 3) and");
    println!("    rcons lies in [max recording, max recording + 1] (Theorems 8 & 14);");
    println!("  · stack/queue are NOT readable: their structural levels saturate, but");
    println!("    no solvability follows — Appendix H pins cons = 2, rcons = 1 directly.");
}
