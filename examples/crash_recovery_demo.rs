//! A trace-level walkthrough of the Fig. 2 recoverable team consensus
//! algorithm on `S_3`, with a hand-placed crash: watch a process lose its
//! volatile state, re-run from the beginning, and still reach agreement
//! because the object's *state* (not a lost response) records the winner.
//!
//! ```sh
//! cargo run --example crash_recovery_demo
//! ```

use recoverable_consensus::core::algorithms::build_team_rc_system;
use recoverable_consensus::core::{check_recording, Assignment};
use recoverable_consensus::runtime::sched::{Action, ScriptedScheduler};
use recoverable_consensus::runtime::verify::check_consensus_execution;
use recoverable_consensus::runtime::{run, RunOptions};
use recoverable_consensus::spec::types::Sn;
use recoverable_consensus::spec::Value;
use std::sync::Arc;

fn main() {
    let n = 3;
    let sn = Sn::new(n);
    let witness = check_recording(
        &sn,
        &Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]),
    )
    .expect("S_3 is 3-recording");
    println!("witness: {}", witness.assignment);
    println!(
        "Q_A = {:?}",
        witness
            .q_a
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "Q_B = {:?}",
        witness
            .q_b
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
    println!();

    // Team A (p1) proposes 100, team B (p2, p3) proposes 200.
    let inputs = vec![Value::Int(100), Value::Int(200), Value::Int(200)];

    // Schedule: p2 starts updating the object, p1 crashes mid-run twice,
    // and everyone still agrees.
    let schedule = [
        Action::Step(0),  // p1 writes R_A
        Action::Step(0),  // p1 reads O = q0
        Action::Crash(0), // p1 CRASHES — loses its program counter
        Action::Step(1),  // p2 writes R_B
        Action::Step(1),  // p2 reads O = q0
        Action::Step(1),  // p2 applies opB — the first update: team B wins
        Action::Step(0),  // p1 re-runs: writes R_A again
        Action::Crash(0), // p1 CRASHES again
        Action::Step(1),  // p2 re-reads O — sees a Q_B state
        Action::Step(1),  // p2 decides R_B
        Action::Step(0),  // p1 re-runs once more: writes R_A
        Action::Step(0),  // p1 reads O — no longer q0, skips its update
        Action::Step(0),  // p1 decides from the recorded state: R_B
    ];

    let (mut mem, mut programs) = build_team_rc_system(Arc::new(Sn::new(n)), &witness, &inputs);
    let mut sched = ScriptedScheduler::then_finish(schedule);
    let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());

    println!("execution trace:");
    print!("{}", exec.trace);
    println!();
    println!(
        "outputs per process: {:?}",
        exec.outputs
            .iter()
            .map(|outs| outs.iter().map(|v| v.to_string()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );

    let decision = check_consensus_execution(&exec, &inputs)
        .expect("Fig. 2 satisfies agreement, validity, recoverable wait-freedom");
    println!(
        "decision: {} (crashes injected: {})",
        decision.expect("everyone decided"),
        exec.crashes
    );
}
