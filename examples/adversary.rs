//! The paper's counterexample scenarios, executed:
//!
//! 1. **Section 3.1's bad scenario** — drop the `|B| = 1` test from the
//!    Fig. 2 algorithm and agreement breaks on the paper's exact
//!    interleaving (no crashes needed!).
//! 2. **Why consensus algorithms are not recoverable** — Theorem 3's
//!    algorithm on `T_4` is correct under halting failures, but a single
//!    crash lets a re-run apply a second update, the object "forgets" the
//!    winner, and agreement breaks (the executable core of Corollary 20).
//!
//! ```sh
//! cargo run --example adversary
//! ```

use recoverable_consensus::core::algorithms::{
    alloc_team_rc, build_team_consensus_system, BrokenTeamRc, TeamRcConfig,
};
use recoverable_consensus::core::{
    check_discerning, find_recording_witness, Assignment, RecordingWitness, Team,
};
use recoverable_consensus::runtime::sched::{Action, ScriptedScheduler};
use recoverable_consensus::runtime::verify::check_consensus_execution;
use recoverable_consensus::runtime::{run, Memory, Program, RunOptions};
use recoverable_consensus::spec::types::{Cas, Tn};
use recoverable_consensus::spec::{TypeHandle, Value};
use std::sync::Arc;

fn main() {
    broken_guard_scenario();
    println!();
    crash_breaks_consensus_scenario();
}

/// Scenario 1: the missing `|B| = 1` guard (Section 3.1).
fn broken_guard_scenario() {
    println!("── Scenario 1: Fig. 2 without the |B| = 1 test ──");
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let w = find_recording_witness(&cas, 3)
        .expect("CAS is 3-recording")
        .normalized();
    // Orient so B is the two-process team (the scenario's requirement).
    let w = if w.assignment.team_size(Team::B) >= 2 {
        w
    } else {
        RecordingWitness {
            assignment: w.assignment.swap_teams(),
            q_a: w.q_b.clone(),
            q_b: w.q_a.clone(),
        }
    };
    let config = TeamRcConfig::new(cas, &w);
    let inputs: Vec<Value> = w
        .assignment
        .teams
        .iter()
        .map(|t| match t {
            Team::A => Value::Int(0),
            Team::B => Value::Int(1),
        })
        .collect();
    let b = w.assignment.members(Team::B);
    let a = w.assignment.members(Team::A);
    let (b1, b2, a1) = (b[0], b[1], a[0]);

    let mut mem = Memory::new();
    let shared = alloc_team_rc(&mut mem, &config);
    let mut programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| {
            Box::new(BrokenTeamRc::new(
                config.clone(),
                shared,
                slot,
                input.clone(),
            )) as Box<dyn Program>
        })
        .collect();

    // The paper's interleaving, verbatim.
    let schedule = [
        Action::Step(b1), // b1 writes R_B
        Action::Step(b1), // b1 reads O = q0
        Action::Step(b1), // b1 passes the (broken) guard: R_A = ⊥
        Action::Step(a1), // a1 writes R_A
        Action::Step(b2), // b2 writes R_B
        Action::Step(b2), // b2 reads O = q0
        Action::Step(b2), // b2 hits the guard: R_A ≠ ⊥ → defers to team A
        Action::Step(b1), // b1 performs the FIRST update on O (team B!)
        Action::Step(b1), // b1 re-reads O: a Q_B state
        Action::Step(b1), // b1 decides team B's value
    ];
    let mut sched = ScriptedScheduler::then_finish(schedule);
    let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
    print!("{}", exec.trace);
    match check_consensus_execution(&exec, &inputs) {
        Err(e) => println!("⇒ {e}  (exactly as Section 3.1 predicts)"),
        Ok(_) => unreachable!("the broken variant must fail here"),
    }
}

/// Scenario 2: one crash defeats Theorem 3's consensus algorithm on T_4.
fn crash_breaks_consensus_scenario() {
    println!("── Scenario 2: Theorem 3 on T_4 vs one crash ──");
    let n = 4;
    let tn = Tn::new(n);
    let w = check_discerning(
        &tn,
        &Assignment::split(
            Tn::forget_state(),
            vec![Tn::op_a(); n / 2],
            vec![Tn::op_b(); n.div_ceil(2)],
        ),
    )
    .expect("T_n is n-discerning (Proposition 19)");
    let inputs = vec![Value::Int(0), Value::Int(0), Value::Int(1), Value::Int(1)];
    let (mut mem, mut programs) = build_team_consensus_system(Arc::new(Tn::new(n)), &w, &inputs);
    let schedule = [
        Action::Step(1),  // p2 (team A) writes R_A
        Action::Step(1),  // p2 applies opA — winner = A recorded
        Action::Step(1),  // p2 reads the state
        Action::Step(1),  // p2 DECIDES team A's value (0)
        Action::Step(0),  // p1 (team A) writes R_A
        Action::Step(0),  // p1 applies opA — col = 1
        Action::Crash(0), // p1 crashes: loses its response AND its pc
        Action::Step(0),  // p1 re-runs: writes R_A again
        Action::Step(0),  // p1 re-applies opA — col wraps: T_4 FORGETS
        Action::Step(3),  // p4 (team B) writes R_B
        Action::Step(3),  // p4 applies opB — looks like the first update!
        Action::Step(3),  // p4 reads the state: winner = B
        Action::Step(3),  // p4 DECIDES team B's value (1)
    ];
    let mut sched = ScriptedScheduler::then_finish(schedule);
    let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
    print!("{}", exec.trace);
    match check_consensus_execution(&exec, &inputs) {
        Err(e) => {
            println!("⇒ {e}");
            println!(
                "⇒ cons(T_4) = 4, yet ONE crash breaks the consensus algorithm: \
                 rcons(T_4) < cons(T_4) — recoverable consensus is harder."
            );
        }
        Ok(_) => unreachable!("the crash scenario must violate agreement"),
    }
}
