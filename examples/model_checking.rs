//! Exhaustive model checking of the paper's algorithms: every
//! interleaving, every crash placement (up to a budget), full-fidelity
//! state memoization.
//!
//! Verifies the Fig. 2 algorithm for S_2/S_3 and lets the checker
//! *discover* (not just replay) the Section 3.1 violation in the broken
//! variant and the one-crash defeat of Theorem 3 on T_4.
//!
//! ```sh
//! cargo run --release --example model_checking
//! ```

use recoverable_consensus::core::algorithms::{
    alloc_team_rc, build_team_consensus_system, build_team_rc_system, BrokenTeamRc, TeamRcConfig,
};
use recoverable_consensus::core::{
    check_discerning, check_recording, find_recording_witness, Assignment, RecordingWitness, Team,
};
use recoverable_consensus::runtime::{
    explore, CrashModel, ExploreConfig, ExploreOutcome, Memory, Program,
};
use recoverable_consensus::spec::types::{Cas, Sn, Tn};
use recoverable_consensus::spec::{TypeHandle, Value};
use std::sync::Arc;

fn main() {
    verify_fig2();
    println!();
    discover_broken_guard();
    println!();
    discover_crash_break_on_t4();
}

fn describe(outcome: &ExploreOutcome) -> String {
    match outcome {
        ExploreOutcome::Verified { states, leaves } => {
            format!("VERIFIED — {states} states, {leaves} maximal executions")
        }
        ExploreOutcome::Violation { kind, schedule, .. } => format!(
            "VIOLATION ({kind:?}) — schedule of {} actions",
            schedule.len()
        ),
        ExploreOutcome::Truncated { states } => format!("TRUNCATED at {states} states"),
    }
}

fn verify_fig2() {
    println!("── Exhaustive verification of Fig. 2 (Theorem 8) ──");
    for n in [2usize, 3] {
        let sn = Sn::new(n);
        let w = check_recording(
            &sn,
            &Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]),
        )
        .expect("S_n witness");
        let ty: TypeHandle = Arc::new(sn);
        let mut inputs = vec![Value::Int(0)];
        inputs.extend(vec![Value::Int(1); n - 1]);
        for budget in 0..=2 {
            let outcome = explore(
                &|| build_team_rc_system(ty.clone(), &w, &inputs),
                &ExploreConfig {
                    crash: CrashModel::independent(budget).after_decide(true),
                    inputs: Some(inputs.clone()),
                    ..ExploreConfig::default()
                },
            );
            println!("S_{n}, crash budget {budget}: {}", describe(&outcome));
            assert!(outcome.is_verified());
        }
    }
}

fn discover_broken_guard() {
    println!("── The checker DISCOVERS the Section 3.1 scenario ──");
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let w = find_recording_witness(&cas, 3)
        .expect("CAS witness")
        .normalized();
    let w = if w.assignment.team_size(Team::B) >= 2 {
        w
    } else {
        RecordingWitness {
            assignment: w.assignment.swap_teams(),
            q_a: w.q_b.clone(),
            q_b: w.q_a.clone(),
        }
    };
    let config = TeamRcConfig::new(cas, &w);
    let inputs: Vec<Value> = w
        .assignment
        .teams
        .iter()
        .map(|t| match t {
            Team::A => Value::Int(0),
            Team::B => Value::Int(1),
        })
        .collect();
    let outcome = explore(
        &|| {
            let mut mem = Memory::new();
            let shared = alloc_team_rc(&mut mem, &config);
            let programs: Vec<Box<dyn Program>> = inputs
                .iter()
                .enumerate()
                .map(|(slot, input)| {
                    Box::new(BrokenTeamRc::new(
                        config.clone(),
                        shared,
                        slot,
                        input.clone(),
                    )) as Box<dyn Program>
                })
                .collect();
            (mem, programs)
        },
        &ExploreConfig {
            crash: CrashModel::independent(0),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        },
    );
    println!("Fig. 2 without the |B| = 1 guard: {}", describe(&outcome));
    if let ExploreOutcome::Violation {
        schedule, outputs, ..
    } = &outcome
    {
        println!("  conflicting outputs: {outputs:?}");
        println!("  discovered schedule: {schedule:?}");
    }
    assert!(outcome.is_violation());
}

fn discover_crash_break_on_t4() {
    println!("── The checker DISCOVERS the one-crash defeat of Theorem 3 on T_4 ──");
    let n = 4;
    let tn = Tn::new(n);
    let w = check_discerning(
        &tn,
        &Assignment::split(
            Tn::forget_state(),
            vec![Tn::op_a(); n / 2],
            vec![Tn::op_b(); n.div_ceil(2)],
        ),
    )
    .expect("T_4 witness");
    let ty: TypeHandle = Arc::new(tn);
    let inputs = vec![Value::Int(0), Value::Int(0), Value::Int(1), Value::Int(1)];
    for budget in [0usize, 1] {
        let outcome = explore(
            &|| build_team_consensus_system(ty.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(budget),
                inputs: Some(inputs.clone()),
                max_states: 3_000_000,
                ..ExploreConfig::default()
            },
        );
        println!(
            "Theorem 3 on T_4, crash budget {budget}: {}",
            describe(&outcome)
        );
        if budget == 0 {
            assert!(outcome.is_verified(), "correct under halting failures");
        } else {
            assert!(outcome.is_violation(), "one crash breaks it");
        }
    }
}
