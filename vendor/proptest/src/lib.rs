//! Offline mini-implementation of the slice of
//! [`proptest`](https://crates.io/crates/proptest) this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stub keeps the call sites source-compatible — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, [`Just`],
//! [`any`], `collection::vec`, [`prop_oneof!`] and the `prop_assert*`
//! family — so swapping the path dependency for the real crate in the root
//! `Cargo.toml` restores full shrinking and persistence. Differences from
//! real proptest: cases are sampled from a fixed deterministic seed
//! sequence (fully reproducible runs) and failing cases are reported but
//! not shrunk.

#![forbid(unsafe_code)]

use rand::SeedableRng;

/// The deterministic generator driving every sampled case.
pub type TestRng = rand::rngs::StdRng;

#[doc(hidden)]
pub fn case_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0x5eed_0000_0000_0000 ^ u64::from(case))
}

/// Per-suite configuration; only `cases` is honoured by the stub.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of an associated type.
///
/// The real proptest `Strategy` also carries a shrinker; the stub only
/// samples.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical unconstrained strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Uniform choice between boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `choices`; panics if empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].sample(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy over `elem` with length in `len`, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            assert!(
                self.len.start < self.len.end,
                "proptest::collection::vec needs a non-empty length range"
            );
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file conventionally glob-imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Fails the enclosing property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left
            ));
        }
    }};
}

/// Uniform choice among strategy expressions producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instances of `body`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        ::core::panic!(
                            "proptest case {}/{} of `{}` failed:\n{}",
                            case + 1,
                            config.cases,
                            ::core::stringify!($name),
                            msg
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}
