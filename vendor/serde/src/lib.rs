//! Offline stub of the slice of [`serde`](https://serde.rs) this workspace
//! uses: the `Serialize` / `Deserialize` traits and their derive macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. The workspace derives the traits on its data types for
//! downstream consumers but never invokes a serializer itself (there is no
//! `serde_json` in the dependency tree), so marker traits plus no-op derives
//! preserve every call site; swap this path dependency for the real crate in
//! the root `Cargo.toml` to get real serialization.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
