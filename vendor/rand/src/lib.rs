//! Offline stub of the tiny slice of the [`rand`](https://crates.io/crates/rand)
//! API this workspace uses: `Rng::{gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this path dependency keeps the public call sites identical so the
//! stub can be swapped for the real crate by editing one line of the root
//! `Cargo.toml`. `StdRng` here is a `splitmix64`-seeded `xoshiro256**`
//! (the same construction `rand_xorshift`-style seeding uses): deterministic
//! per seed, which is all the simulators and property tests require —
//! statistical quality beyond that is not load-bearing.

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard f64-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Half-open ranges that know how to sample themselves.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; the modulo bias over a
                // 64-bit draw is immaterial for simulation workloads.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`:
    /// `xoshiro256**` seeded via `splitmix64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn range_sampling_in_bounds() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..1000 {
                let x: usize = rng.gen_range(3..17);
                assert!((3..17).contains(&x));
                let y: i64 = rng.gen_range(-5i64..5);
                assert!((-5..5).contains(&y));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..100 {
                assert!(!rng.gen_bool(0.0));
                assert!(rng.gen_bool(1.0));
            }
        }
    }
}
