//! No-op `Serialize` / `Deserialize` derives for the vendored serde stub.
//!
//! For a non-generic `struct`/`enum` the derive emits a marker-trait impl;
//! for anything it cannot parse without `syn` (the workspace has no generic
//! serde types) it emits nothing, which is still sufficient because the
//! traits are never used as bounds here.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name of a non-generic `struct`/`enum` item, if any.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // A `<` right after the name means generics: bail out.
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// Stub `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

/// Stub `#[derive(Deserialize)]`: emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
