//! Offline micro-implementation of the slice of
//! [`criterion`](https://crates.io/crates/criterion) this workspace's
//! `benches/` use: `Criterion::benchmark_group`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. Call sites are source-compatible; swap the path dependency in
//! the root `Cargo.toml` for the real crate to get statistics, plots and
//! HTML reports. Behaviour here: each benchmark is timed over a small fixed
//! number of wall-clock iterations and reported as a plain-text line. Like
//! real criterion, when the binary is invoked without `--bench` (as
//! `cargo test` does for `harness = false` targets) every benchmark body
//! runs exactly once as a smoke test, so `cargo test` stays fast.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs `harness = false` bench targets as plain executables:
        // `cargo bench` passes `--bench`, `cargo test` does not.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Registers a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, name, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used to report per-element rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` against `input` under the given id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            self.criterion.bench_mode,
            &label,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (report lines are already flushed per benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `"name/parameter"`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Units for rate reporting, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; times the hot loop.
pub struct Bencher {
    bench_mode: bool,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly (once in test mode) and records the mean
    /// wall-clock time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if !self.bench_mode {
            std::hint::black_box(routine());
            return;
        }
        // One warm-up, then a small fixed sample: this stub favours
        // predictable runtime over statistical confidence.
        std::hint::black_box(routine());
        const SAMPLES: u32 = 10;
        let start = Instant::now();
        for _ in 0..SAMPLES {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(SAMPLES);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    bench_mode: bool,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        bench_mode,
        nanos_per_iter: 0.0,
    };
    f(&mut bencher);
    if !bench_mode {
        println!("test-mode {label}: ok (1 iteration)");
        return;
    }
    let mut line = format!("bench {label}: {}", human_time(bencher.nanos_per_iter));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if bencher.nanos_per_iter > 0.0 {
            let rate = count as f64 / (bencher.nanos_per_iter / 1e9);
            let _ = write!(line, " ({rate:.0} {unit}/s)");
        }
    }
    println!("{line}");
}

fn human_time(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s/iter", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms/iter", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs/iter", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns/iter")
    }
}

/// Bundles benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
