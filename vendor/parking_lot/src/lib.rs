//! Offline stub of the slice of [`parking_lot`](https://crates.io/crates/parking_lot)
//! this workspace uses: `Mutex` with an infallible, non-poisoning `lock()`.
//!
//! Backed by `std::sync::Mutex`; poisoning is recovered into the inner
//! guard (matching parking_lot, which has no poisoning), so a panic in one
//! benchmark thread does not cascade. Swap this path dependency for the real
//! crate in the root `Cargo.toml` for the fast futex-based implementation.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Stand-in for `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
