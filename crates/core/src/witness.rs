//! Teams, operation assignments, and property witnesses.
//!
//! Both of the paper's characterizations (Definitions 2 and 4) quantify over
//! the same data: an initial state `q0`, a partition of `n` processes into
//! two non-empty teams `A` and `B`, and an operation `op_i` for each
//! process. [`Assignment`] packages that data; the checkers in
//! [`recording`](crate::recording) and [`discerning`](crate::discerning)
//! decide whether an assignment satisfies the respective definition and, if
//! so, produce a *witness* carrying the derived sets (`Q_X`, `R_{X,j}`)
//! that the paper's algorithms consume at run time.

use rc_spec::{Operation, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the two teams of Definitions 2 and 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Team {
    /// Team A.
    A,
    /// Team B.
    B,
}

impl Team {
    /// The opposite team (written `X̄` in the paper).
    pub fn opposite(self) -> Team {
        match self {
            Team::A => Team::B,
            Team::B => Team::A,
        }
    }
}

impl fmt::Display for Team {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Team::A => write!(f, "A"),
            Team::B => write!(f, "B"),
        }
    }
}

/// The data quantified over by Definitions 2 and 4: an initial state, a team
/// partition, and one update operation per process.
///
/// Process `i`'s team is `teams[i]` and its operation is `ops[i]`
/// (0-indexed; the paper's `p_{i+1}`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The initial state `q0`.
    pub q0: Value,
    /// `teams[i]` is process `i`'s team; both teams must be non-empty.
    pub teams: Vec<Team>,
    /// `ops[i]` is the update operation process `i` performs.
    pub ops: Vec<Operation>,
}

impl Assignment {
    /// Creates an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `teams` and `ops` have different lengths, fewer than two
    /// processes are given, or either team is empty.
    pub fn new(q0: Value, teams: Vec<Team>, ops: Vec<Operation>) -> Self {
        assert_eq!(teams.len(), ops.len(), "teams/ops length mismatch");
        assert!(teams.len() >= 2, "need at least two processes");
        assert!(
            teams.contains(&Team::A) && teams.contains(&Team::B),
            "both teams must be non-empty"
        );
        Assignment { q0, teams, ops }
    }

    /// Convenience constructor: the first `size_a` processes form team A
    /// with operations `ops_a`, the rest form team B with `ops_b`.
    ///
    /// # Panics
    ///
    /// Panics if either operation list is empty.
    pub fn split(q0: Value, ops_a: Vec<Operation>, ops_b: Vec<Operation>) -> Self {
        assert!(
            !ops_a.is_empty() && !ops_b.is_empty(),
            "teams must be non-empty"
        );
        let mut teams = vec![Team::A; ops_a.len()];
        teams.extend(vec![Team::B; ops_b.len()]);
        let mut ops = ops_a;
        ops.extend(ops_b);
        Assignment { q0, teams, ops }
    }

    /// Number of processes `n`.
    pub fn len(&self) -> usize {
        self.teams.len()
    }

    /// Whether the assignment has no processes (never true for a valid
    /// assignment; provided for clippy-conventional completeness).
    pub fn is_empty(&self) -> bool {
        self.teams.is_empty()
    }

    /// Indices of the processes on `team`.
    pub fn members(&self, team: Team) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.teams[i] == team).collect()
    }

    /// Size of `team`.
    pub fn team_size(&self, team: Team) -> usize {
        self.teams.iter().filter(|t| **t == team).count()
    }

    /// Returns the same assignment with the team names swapped.
    ///
    /// Both definitions are symmetric in the team names, so this preserves
    /// the defined properties; the Fig. 2 algorithm uses it to normalize a
    /// witness into its `q0 ∉ Q_B` form.
    pub fn swap_teams(&self) -> Assignment {
        Assignment {
            q0: self.q0.clone(),
            teams: self.teams.iter().map(|t| t.opposite()).collect(),
            ops: self.ops.clone(),
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q0={}; ", self.q0)?;
        for i in 0..self.len() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "p{}∈{}:{}", i + 1, self.teams[i], self.ops[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str) -> Operation {
        Operation::nullary(name)
    }

    #[test]
    fn split_builds_partition() {
        let a = Assignment::split(Value::Bottom, vec![op("x")], vec![op("y"), op("y")]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.members(Team::A), vec![0]);
        assert_eq!(a.members(Team::B), vec![1, 2]);
        assert_eq!(a.team_size(Team::A), 1);
        assert_eq!(a.team_size(Team::B), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn swap_teams_is_involutive() {
        let a = Assignment::split(Value::Bottom, vec![op("x")], vec![op("y")]);
        let swapped = a.swap_teams();
        assert_eq!(swapped.teams, vec![Team::B, Team::A]);
        assert_eq!(swapped.swap_teams(), a);
    }

    #[test]
    #[should_panic(expected = "both teams")]
    fn rejects_single_team() {
        Assignment::new(
            Value::Bottom,
            vec![Team::A, Team::A],
            vec![op("x"), op("x")],
        );
    }

    #[test]
    fn display_is_readable() {
        let a = Assignment::split(Value::Bottom, vec![op("opA")], vec![op("opB")]);
        let s = a.to_string();
        assert!(s.contains("p1∈A:opA"));
        assert!(s.contains("p2∈B:opB"));
    }

    #[test]
    fn team_opposite() {
        assert_eq!(Team::A.opposite(), Team::B);
        assert_eq!(Team::B.opposite(), Team::A);
        assert_eq!(Team::A.to_string(), "A");
    }
}
