//! The Theorem 3 (Ruppert) team consensus algorithm for *n*-discerning
//! readable types — correct under **halting** failures, and demonstrably
//! *not* crash-recoverable.
//!
//! Each process `p_i` writes its input to its team's register, performs
//! its single update `op_i` on the shared object `O`, **remembers the
//! response `r`** (in volatile local memory!), then reads `O`'s state `q`
//! and uses the witness classifier `(r, q) ↦ team` to decide which team's
//! register to return.
//!
//! The two failure modes the paper identifies for crashes (Section 3,
//! "there are two key difficulties…"):
//!
//! 1. a crash after the update loses `r`, which the classifier needs;
//! 2. a recovered process re-executes `op_i`, applying a **second** update
//!    that can obliterate the evidence of which team went first (e.g.
//!    `T_n`'s counters wrap and the object "forgets").
//!
//! The tests reproduce failure mode 2 as an agreement violation for `T_4`
//! under a single crash — the executable heart of the paper's claim that
//! recoverable consensus is *harder* than consensus.

use crate::algorithms::input_mask::{InnerMaker, InputMasked};
use crate::discerning::DiscerningWitness;
use crate::witness::Team;
use rc_runtime::{Addr, MemOps, Memory, Program, Rebinding, Step, SymmetrySpec};
use rc_spec::{ObjectType, TypeHandle, Value};
use std::sync::Arc;

/// The shared cells of one Theorem-3 team consensus instance.
#[derive(Clone, Copy, Debug)]
pub struct TeamConsensusShared {
    /// The object `O`, initially in the witness state `q0`.
    pub obj: Addr,
    /// Team A's input register, initially ⊥.
    pub reg_a: Addr,
    /// Team B's input register, initially ⊥.
    pub reg_b: Addr,
}

/// Witness data shared by all processes of one instance.
#[derive(Debug)]
pub struct TeamConsensusConfig {
    /// The (readable) object type.
    pub ty: TypeHandle,
    /// The discerning witness whose per-process classifiers drive the
    /// decision.
    pub witness: DiscerningWitness,
}

impl TeamConsensusConfig {
    /// Packages a readable type and witness.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not readable — Theorem 3's algorithm reads `O`'s
    /// state, which non-readable types (e.g. the classic stack) do not
    /// support.
    pub fn new(ty: TypeHandle, witness: DiscerningWitness) -> Arc<Self> {
        assert!(
            ty.is_readable(),
            "Theorem 3's algorithm requires a readable type; {} is not",
            ty.name()
        );
        Arc::new(TeamConsensusConfig { ty, witness })
    }

    /// The behavioural class of `slot`: the smallest slot with the same
    /// team, operation *and* classifier. Slots of one class run the same
    /// code; with equal inputs they are interchangeable processes.
    fn class_of(&self, slot: usize) -> usize {
        let a = &self.witness.assignment;
        (0..slot)
            .find(|&j| {
                a.teams[j] == a.teams[slot]
                    && a.ops[j] == a.ops[slot]
                    && self.witness.same_classifier(j, slot)
            })
            .unwrap_or(slot)
    }
}

/// Allocates the shared cells for one instance.
pub fn alloc_team_consensus(mem: &mut Memory, config: &TeamConsensusConfig) -> TeamConsensusShared {
    let obj = mem.alloc_object(config.ty.clone(), config.witness.assignment.q0.clone());
    let reg_a = mem.alloc_register(Value::Bottom);
    let reg_b = mem.alloc_register(Value::Bottom);
    TeamConsensusShared { obj, reg_a, reg_b }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Pc {
    WriteInput,
    Apply,
    ReadState,
    /// Read the register of `winner` and decide.
    Output(Team),
}

/// One process's Theorem-3 team consensus routine.
///
/// This program is **intentionally not crash-safe**: [`Program::on_crash`]
/// faithfully wipes the remembered response and program counter, so a
/// recovered process re-runs from the beginning and updates `O` a second
/// time. That is the behaviour whose consequences Section 3 of the paper
/// analyzes; see the module docs.
#[derive(Clone, Debug)]
pub struct TeamConsensus {
    config: Arc<TeamConsensusConfig>,
    shared: TeamConsensusShared,
    slot: usize,
    /// `config.class_of(slot)`, precomputed — `state_key` is the model
    /// checker's hottest call and class comparison walks classifiers.
    class: usize,
    input: Value,
    pc: Pc,
    response: Option<Value>,
}

impl TeamConsensus {
    /// Creates the routine for witness row `slot` with the given input.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the witness.
    pub fn new(
        config: Arc<TeamConsensusConfig>,
        shared: TeamConsensusShared,
        slot: usize,
        input: Value,
    ) -> Self {
        assert!(slot < config.witness.len(), "slot out of range");
        let class = config.class_of(slot);
        TeamConsensus {
            config,
            shared,
            slot,
            class,
            input,
            pc: Pc::WriteInput,
            response: None,
        }
    }

    /// The process's team under the witness.
    pub fn team(&self) -> Team {
        self.config.witness.assignment.teams[self.slot]
    }

    fn reg_of(&self, team: Team) -> Addr {
        match team {
            Team::A => self.shared.reg_a,
            Team::B => self.shared.reg_b,
        }
    }
}

impl Program for TeamConsensus {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match &self.pc {
            Pc::WriteInput => {
                mem.write_register(self.reg_of(self.team()), self.input.clone());
                self.pc = Pc::Apply;
                Step::Running
            }
            Pc::Apply => {
                let op = &self.config.witness.assignment.ops[self.slot];
                // The response lives only in volatile memory — a crash
                // here loses it (difficulty 1 of Section 3).
                self.response = Some(mem.apply(self.shared.obj, op));
                self.pc = Pc::ReadState;
                Step::Running
            }
            Pc::ReadState => {
                let q = mem.read_object(self.shared.obj);
                let r = self.response.clone().expect("set at Apply");
                // In a crash-free execution the classifier is total over
                // reachable (r, q) pairs. Under crashes a process may
                // produce a pair outside every R-set; the paper gives no
                // guarantee there, and we default to our own team — any
                // choice can violate agreement, which is the point of the
                // counterexample experiments.
                let winner = self
                    .config
                    .witness
                    .classify(self.slot, &r, &q)
                    .unwrap_or_else(|| self.team());
                self.pc = Pc::Output(winner);
                Step::Running
            }
            Pc::Output(winner) => Step::Decided(mem.read_register(self.reg_of(*winner))),
        }
    }

    fn on_crash(&mut self) {
        self.pc = Pc::WriteInput;
        self.response = None;
    }

    fn state_key(&self) -> Value {
        let pc = match &self.pc {
            Pc::WriteInput => Value::Int(0),
            Pc::Apply => Value::Int(1),
            Pc::ReadState => Value::Int(2),
            Pc::Output(Team::A) => Value::Int(3),
            Pc::Output(Team::B) => Value::Int(4),
        };
        // Like `TeamRc`: the key encodes the behavioural class (team +
        // operation + classifier) and the input instead of the raw slot
        // number, so equal keys mean equal behaviour across slots —
        // per slot both are constants, so plain state counts don't move.
        Value::Tuple(vec![
            pc,
            Value::Int(self.class as i64),
            self.response.clone().unwrap_or(Value::Bottom),
            self.input.clone(),
        ])
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn rebind(&mut self, map: &Rebinding) {
        // All Theorem-3 cells are team-shared; honest identity rebind so
        // the masked wrapper can rebind through it.
        self.shared.obj = map.lookup(self.shared.obj);
        self.shared.reg_a = map.lookup(self.shared.reg_a);
        self.shared.reg_b = map.lookup(self.shared.reg_b);
    }

    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        Some(vec![self.shared.obj, self.shared.reg_a, self.shared.reg_b])
    }
}

/// Builds a complete Theorem-3 system: memory, cells, one [`TeamConsensus`]
/// per witness row with `inputs[i]` as row `i`'s input.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the witness size or the type is
/// not readable.
pub fn build_team_consensus_system(
    ty: TypeHandle,
    witness: &DiscerningWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    assert_eq!(inputs.len(), witness.len(), "one input per witness row");
    let config = TeamConsensusConfig::new(ty, witness.clone());
    let mut mem = Memory::new();
    let shared = alloc_team_consensus(&mut mem, &config);
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| {
            Box::new(TeamConsensus::new(
                config.clone(),
                shared,
                slot,
                input.clone(),
            )) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

/// [`build_team_consensus_system`] plus the system's process-symmetry
/// declaration, for [`rc_runtime::explore_symmetric`]: witness rows with
/// the same team, operation, classifier and input form one orbit.
pub fn build_team_consensus_system_sym(
    ty: TypeHandle,
    witness: &DiscerningWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let config = TeamConsensusConfig::new(ty.clone(), witness.clone());
    let (mem, programs) = build_team_consensus_system(ty, witness, inputs);
    let labels: Vec<(usize, &Value)> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| (config.class_of(slot), input))
        .collect();
    (mem, programs, SymmetrySpec::from_classes(&labels))
}

/// Builds the **input-masked** Theorem-3 system: each process runs
/// [`TeamConsensus`] under the [`InputMasked`] wrapper with a dedicated
/// per-process mask register (written and read only by its owner).
pub fn build_masked_team_consensus_system(
    ty: TypeHandle,
    witness: &DiscerningWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    let (mem, programs, _, _) = build_masked_team_consensus(ty, witness, inputs);
    (mem, programs)
}

/// [`build_masked_team_consensus_system`] plus its **full-state**
/// symmetry declaration: same-class, same-input rows form orbits, and
/// each mask register is declared as an owned cell so it permutes with
/// its owner under [`rc_runtime::Program::rebind`].
pub fn build_masked_team_consensus_system_sym(
    ty: TypeHandle,
    witness: &DiscerningWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let (mem, programs, config, mask_regs) = build_masked_team_consensus(ty, witness, inputs);
    let labels: Vec<(usize, &Value)> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| (config.class_of(slot), input))
        .collect();
    let mut spec = SymmetrySpec::from_classes(&labels);
    for (pid, &reg) in mask_regs.iter().enumerate() {
        spec = spec.with_owned_cells(pid, vec![reg]);
    }
    (mem, programs, spec)
}

/// A built masked system plus the config and per-process mask registers
/// the `_sym` sibling derives the symmetry declaration from.
type MaskedTeamConsensusSystem = (
    Memory,
    Vec<Box<dyn Program>>,
    Arc<TeamConsensusConfig>,
    Vec<Addr>,
);

fn build_masked_team_consensus(
    ty: TypeHandle,
    witness: &DiscerningWitness,
    inputs: &[Value],
) -> MaskedTeamConsensusSystem {
    assert_eq!(inputs.len(), witness.len(), "one input per witness row");
    let config = TeamConsensusConfig::new(ty, witness.clone());
    let mut mem = Memory::new();
    let shared = alloc_team_consensus(&mut mem, &config);
    let mask_regs: Vec<Addr> = (0..inputs.len())
        .map(|_| InputMasked::alloc_register(&mut mem))
        .collect();
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| {
            let config = config.clone();
            let make_inner: InnerMaker = Arc::new(move |masked: Value| {
                Box::new(TeamConsensus::new(config.clone(), shared, slot, masked))
                    as Box<dyn Program>
            });
            Box::new(InputMasked::new(mask_regs[slot], input.clone(), make_inner))
                as Box<dyn Program>
        })
        .collect();
    (mem, programs, config, mask_regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discerning::check_discerning;
    use crate::witness::Assignment;
    use rc_runtime::sched::{Action, RoundRobin, ScriptedScheduler};
    use rc_runtime::verify::check_consensus_execution;
    use rc_runtime::{explore, run, CrashModel, ExploreConfig, RunOptions};
    use rc_spec::types::{Sn, TestAndSet, Tn};
    use rc_spec::Operation;

    fn tn_witness(n: usize) -> (TypeHandle, DiscerningWitness) {
        let tn = Tn::new(n);
        let a = Assignment::split(
            Tn::forget_state(),
            vec![Tn::op_a(); n / 2],
            vec![Tn::op_b(); n.div_ceil(2)],
        );
        let w = check_discerning(&tn, &a).expect("paper's T_n witness");
        (Arc::new(tn), w)
    }

    fn team_inputs(w: &DiscerningWitness) -> Vec<Value> {
        w.assignment
            .teams
            .iter()
            .map(|t| match t {
                Team::A => Value::Int(0),
                Team::B => Value::Int(1),
            })
            .collect()
    }

    #[test]
    fn crash_free_consensus_on_tn_agrees() {
        for n in 4..=6 {
            let (ty, w) = tn_witness(n);
            let inputs = team_inputs(&w);
            let (mut mem, mut programs) = build_team_consensus_system(ty, &w, &inputs);
            let exec = run(
                &mut mem,
                &mut programs,
                &mut RoundRobin::new(),
                RunOptions::default(),
            );
            check_consensus_execution(&exec, &inputs).expect("crash-free agreement");
        }
    }

    #[test]
    fn crash_free_model_check_verifies_t4() {
        let (ty, w) = tn_witness(4);
        let inputs = team_inputs(&w);
        let outcome = explore(
            &|| build_team_consensus_system(ty.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(0),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            },
        );
        assert!(
            outcome.is_verified(),
            "Theorem 3 holds under halting failures: {outcome:?}"
        );
    }

    /// The executable heart of the paper: ONE crash breaks Theorem 3's
    /// algorithm on T_4. The recovered process re-applies opA; three
    /// A-updates wrap T_4's column counter, the object forgets the winner,
    /// and a team-B process then decides differently.
    #[test]
    fn one_crash_violates_agreement_on_t4() {
        let (ty, w) = tn_witness(4);
        let inputs = team_inputs(&w);
        // Slots: 0, 1 = team A (opA); 2, 3 = team B (opB).
        let schedule = [
            // p2 (slot 1, team A) runs to completion and decides A's value.
            Action::Step(1), // write R_A
            Action::Step(1), // apply opA → winner = A (first update)
            Action::Step(1), // read state (A,0,0)
            Action::Step(1), // read R_A → DECIDES 0
            // p1 (slot 0, team A) updates, crashes, and re-updates.
            Action::Step(0), // write R_A
            Action::Step(0), // apply opA → col = 1
            Action::Crash(0),
            Action::Step(0), // write R_A (re-run)
            Action::Step(0), // apply opA → col wraps → (⊥,0,0): FORGOTTEN
            // p4 (slot 3, team B) now looks like the first updater.
            Action::Step(3), // write R_B
            Action::Step(3), // apply opB → winner = B
            Action::Step(3), // read state (B,0,0)
            Action::Step(3), // read R_B → DECIDES 1 — agreement violated
        ];
        let (mut mem, mut programs) = build_team_consensus_system(ty, &w, &inputs);
        let mut sched = ScriptedScheduler::then_finish(schedule);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        let err = check_consensus_execution(&exec, &inputs)
            .expect_err("one crash must break the non-recoverable algorithm");
        assert!(err.to_string().contains("agreement"), "{err}");
    }

    #[test]
    fn crash_violation_found_by_model_checker_on_t4() {
        let (ty, w) = tn_witness(4);
        let inputs = team_inputs(&w);
        let outcome = explore(
            &|| build_team_consensus_system(ty.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(1),
                inputs: Some(inputs.clone()),
                max_states: 2_000_000,
                ..ExploreConfig::default()
            },
        );
        assert!(
            outcome.is_violation(),
            "a single crash suffices to break Theorem 3 on T_4: {outcome:?}"
        );
    }

    /// Full-state symmetry on the masked Theorem-3 system (crash-free —
    /// the algorithm is deliberately not crash-safe): both team orbits
    /// merge even though every process owns a distinguishing mask
    /// register, with identical verdicts and weighted leaf counts and
    /// strictly fewer states.
    #[test]
    fn masked_owned_cell_symmetry_reduces_and_preserves_outcomes() {
        let (ty, w) = tn_witness(4);
        let inputs = team_inputs(&w);
        let config = ExploreConfig {
            crash: CrashModel::independent(0),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        };
        let off = explore(
            &|| build_masked_team_consensus_system(ty.clone(), &w, &inputs),
            &config,
        );
        let on = rc_runtime::explore_symmetric(
            &|| build_masked_team_consensus_system_sym(ty.clone(), &w, &inputs),
            &config,
        );
        let (off_states, off_leaves) = match off {
            rc_runtime::ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("masked T_4 crash-free must verify: {other:?}"),
        };
        match on {
            rc_runtime::ExploreOutcome::Verified { states, leaves } => {
                assert_eq!(leaves, off_leaves, "weighted leaves must match");
                assert!(
                    states < off_states,
                    "owned-cell orbits must reduce ({states} vs {off_states})"
                );
            }
            other => panic!("masked T_4 crash-free must verify: {other:?}"),
        }
    }

    #[test]
    fn tas_two_process_consensus_works_crash_free() {
        let tas: TypeHandle = Arc::new(TestAndSet::new());
        let a = Assignment::split(
            Value::Bool(false),
            vec![Operation::nullary("tas")],
            vec![Operation::nullary("tas")],
        );
        let w = check_discerning(&TestAndSet::new(), &a).expect("TAS witness");
        let inputs = vec![Value::Int(0), Value::Int(1)];
        let outcome = explore(
            &|| build_team_consensus_system(tas.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(0),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    #[test]
    fn sn_consensus_crash_free() {
        let sn = Sn::new(3);
        let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); 2]);
        let w = check_discerning(&sn, &a).expect("S_3 witness");
        let ty: TypeHandle = Arc::new(sn);
        let inputs = team_inputs(&w);
        let (mut mem, mut programs) = build_team_consensus_system(ty, &w, &inputs);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        check_consensus_execution(&exec, &inputs).expect("agreement");
    }

    #[test]
    fn rejects_non_readable_types() {
        use rc_spec::types::Stack;
        let stack = Stack::new(3, 2);
        let a = Assignment::split(
            Value::empty_list(),
            vec![Operation::new("push", Value::Int(0))],
            vec![Operation::new("push", Value::Int(1))],
        );
        let w = check_discerning(&stack, &a).expect("structurally discerning");
        let result =
            std::panic::catch_unwind(|| TeamConsensusConfig::new(Arc::new(Stack::new(3, 2)), w));
        assert!(
            result.is_err(),
            "Theorem 3 must refuse non-readable types like the stack"
        );
    }
}
