//! The Fig. 4 transformation (Theorem 1): recoverable consensus under
//! **simultaneous** crashes from any wait-free consensus algorithm.
//!
//! Each process walks through rounds `r = 1, 2, …`. Round `r` owns a
//! consensus instance `C_r` and a result register `D[r]`. The register
//! `Round[j]` remembers the largest round process `j` has *started*, so a
//! recovered process never accesses the same `C_r` twice (Lemma 27 — this
//! is what makes the black-box consensus safe to reuse: a crash in the
//! middle of `C_r` looks to `C_r` like a *halting* failure, which the
//! wait-free consensus algorithm tolerates by assumption). A process
//! terminates when it completes a round and sees no process ahead of it
//! (line 44); Lemmas 25–29 prove recoverable wait-freedom, validity and
//! agreement for the simultaneous-crash model.
//!
//! The paper allows an *unbounded* number of instances (footnote 2); the
//! simulation preallocates a caller-chosen horizon and reports via panic
//! if an execution ever outruns it (none does, for finite crash budgets —
//! the E3 experiment records the rounds actually used).
//!
//! The consensus base objects are pluggable ([`ConsensusFactory`]): atomic
//! consensus objects for unit tests, or — the paper's headline
//! composition — Theorem 3's algorithm on an *n*-discerning type such as
//! `T_n`, yielding: `T_n` solves *n*-process RC under simultaneous crashes
//! even though it cannot under independent crashes (Corollary 20).

use crate::algorithms::tournament::StageMaker;
use rc_runtime::{Addr, MemOps, Memory, Program, Rebinding, Step, SymmetrySpec};
use rc_spec::Value;
use std::fmt;
use std::sync::Arc;

/// Allocates per-round consensus instances inside the shared memory and
/// hands out per-process programs for them.
pub trait ConsensusFactory {
    /// Allocates one instance's shared cells and returns a maker that
    /// builds process `pid`'s routine with the given input.
    fn alloc_instance(&self, mem: &mut Memory) -> InstanceMaker;
}

/// Builds process `pid`'s routine for one consensus instance, given its
/// input value.
pub type InstanceMaker = Arc<dyn Fn(usize, Value) -> Box<dyn Program> + Send + Sync>;

/// A [`ConsensusFactory`] backed by atomic consensus objects
/// ([`rc_spec::types::ConsensusObject`]) — one `propose` access decides.
#[derive(Clone, Debug)]
pub struct ConsensusObjectFactory {
    /// Value domain of the underlying objects.
    pub domain: u32,
}

impl ConsensusFactory for ConsensusObjectFactory {
    fn alloc_instance(&self, mem: &mut Memory) -> InstanceMaker {
        let obj = mem.alloc_object(
            Arc::new(rc_spec::types::ConsensusObject::new(self.domain)),
            Value::Bottom,
        );
        Arc::new(move |_pid, input| Box::new(ProposeProgram { obj, input }) as Box<dyn Program>)
    }
}

/// A [`ConsensusFactory`] running an arbitrary per-instance builder —
/// used to plug Theorem 3's tournament consensus (e.g. on `T_n`) into
/// Fig. 4.
pub struct FnConsensusFactory<F>(pub F);

impl<F> ConsensusFactory for FnConsensusFactory<F>
where
    F: Fn(&mut Memory) -> InstanceMaker,
{
    fn alloc_instance(&self, mem: &mut Memory) -> InstanceMaker {
        (self.0)(mem)
    }
}

/// One-shot program proposing `input` to an atomic consensus object.
#[derive(Clone, Debug)]
struct ProposeProgram {
    obj: Addr,
    input: Value,
}

impl Program for ProposeProgram {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        let decided = mem.apply(
            self.obj,
            &rc_spec::Operation::new("propose", self.input.clone()),
        );
        Step::Decided(decided)
    }
    fn on_crash(&mut self) {}
    fn state_key(&self) -> Value {
        Value::Unit
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn rebind(&mut self, map: &Rebinding) {
        self.obj = map.lookup(self.obj);
    }
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        Some(vec![self.obj])
    }
}

/// Shared layout of one Fig. 4 system.
#[derive(Clone)]
pub struct SimultaneousRcShared {
    /// `Round[1..n]` registers (0-indexed by pid), initially 0.
    pub round_regs: Arc<Vec<Addr>>,
    /// `D[1..R]` registers (0-indexed by round), initially ⊥.
    pub d_regs: Arc<Vec<Addr>>,
    /// Per-round instance makers for `C_1..C_R`.
    pub instances: Arc<Vec<InstanceMaker>>,
}

impl fmt::Debug for SimultaneousRcShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimultaneousRcShared")
            .field("rounds", &self.d_regs.len())
            .finish_non_exhaustive()
    }
}

/// Allocates a Fig. 4 system for `n` processes with `max_rounds`
/// preallocated consensus instances (lines 30–32).
pub fn alloc_simultaneous_rc(
    mem: &mut Memory,
    factory: &dyn ConsensusFactory,
    n: usize,
    max_rounds: usize,
) -> SimultaneousRcShared {
    let round_regs: Vec<Addr> = (0..n).map(|_| mem.alloc_register(Value::Int(0))).collect();
    let d_regs: Vec<Addr> = (0..max_rounds)
        .map(|_| mem.alloc_register(Value::Bottom))
        .collect();
    let instances: Vec<InstanceMaker> = (0..max_rounds)
        .map(|_| factory.alloc_instance(mem))
        .collect();
    SimultaneousRcShared {
        round_regs: Arc::new(round_regs),
        d_regs: Arc::new(d_regs),
        instances: Arc::new(instances),
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Pc {
    /// Line 37: read `Round[j]`.
    CheckRound,
    /// Line 38: write `Round[j] ← r`.
    WriteRound,
    /// Lines 39–41: read `D[r−1]` (skipped when `r = 1`).
    ReadPrevThen,
    /// Line 42: run `C_r.Decide(pref)` to completion.
    RunConsensus,
    /// Line 43: write `D[r] ← pref`.
    WriteD,
    /// Line 44: scan `Round[1..n]`; terminate if all ≤ r. The scan is
    /// modeled as an **order-insensitive fold**: `mask` records the
    /// positions already checked (bit `k` = `Round[k]` seen `≤ r`), and
    /// each step checks *any* unchecked position — the exhaustive
    /// engines branch over every alternative
    /// ([`Program::choices`]), while [`Program::step`] resolves to the
    /// smallest unchecked position, the paper's textual order. The
    /// paper's conjunction is order-independent, so this is the same
    /// predicate; making the order internal nondeterminism is what lets
    /// the scalarset certifier prove the scan order-insensitive and
    /// unlock symmetry reduction over the round registers.
    CheckAll { mask: u64 },
    /// Lines 47–49: read `D[r−1]` on the else-branch (skipped when
    /// `r = 1`).
    ReadPrevElse,
}

/// One process's Fig. 4 `Decide(v)` routine (lines 33–52) as a crashable
/// state machine.
pub struct SimultaneousRc {
    shared: SimultaneousRcShared,
    pid: usize,
    n: usize,
    input: Value,
    // Volatile state.
    pc: Pc,
    r: usize, // 1-based round, as in the paper
    pref: Value,
    inner: Option<Box<dyn Program>>,
}

impl SimultaneousRc {
    /// Creates process `pid`'s routine.
    ///
    /// # Panics
    ///
    /// Panics if `pid ≥ n`.
    pub fn new(shared: SimultaneousRcShared, pid: usize, n: usize, input: Value) -> Self {
        assert!(pid < n, "pid out of range");
        assert!(
            n <= 64,
            "the line-44 scan tracks checked positions in a u64 bitmask; \
             n = {n} exceeds 64 processes"
        );
        SimultaneousRc {
            shared,
            pid,
            n,
            pref: input.clone(),
            input,
            pc: Pc::CheckRound,
            r: 1,
            inner: None,
        }
    }

    /// The highest round this process has entered in its current run
    /// (diagnostic; the E3 experiment reports the maximum over a run).
    pub fn current_round(&self) -> usize {
        self.r
    }

    fn d_reg(&self, round: usize) -> Addr {
        *self.shared.d_regs.get(round - 1).unwrap_or_else(|| {
            panic!("round horizon exceeded: round {round} was never preallocated; raise max_rounds")
        })
    }

    /// The line-44 scan's completion mask: one bit per process.
    fn full_mask(&self) -> u64 {
        if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        }
    }

    /// Line 44, one position: reads `Round[k]` and folds the result into
    /// the scan mask — advancing the round if `k` is ahead, deciding
    /// when the scan completes.
    fn check_position(&mut self, mem: &mut dyn MemOps, mask: u64, k: usize) -> Step {
        debug_assert_eq!(mask & (1 << k), 0, "position {k} was already checked");
        let other = mem.read_register(self.shared.round_regs[k]);
        let other = other.as_int().expect("Round registers hold ints");
        if other > self.r as i64 {
            // Someone is ahead: advance to the next round (line 50).
            self.r += 1;
            self.pc = Pc::CheckRound;
            Step::Running
        } else {
            let mask = mask | (1 << k);
            self.pc = Pc::CheckAll { mask };
            if mask == self.full_mask() {
                // Line 45. The pc keeps the completed (permutation-
                // fixed) mask, so the decided state is not pinned.
                Step::Decided(self.pref.clone())
            } else {
                Step::Running
            }
        }
    }
}

impl fmt::Debug for SimultaneousRc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimultaneousRc")
            .field("pid", &self.pid)
            .field("r", &self.r)
            .field("pc", &self.pc)
            .field("pref", &self.pref)
            .finish_non_exhaustive()
    }
}

impl Program for SimultaneousRc {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc.clone() {
            Pc::CheckRound => {
                // Line 37: if Round[j] < r then … else lines 47–49.
                let mine = mem.read_register(self.shared.round_regs[self.pid]);
                let mine = mine.as_int().expect("Round registers hold ints");
                if mine < self.r as i64 {
                    self.pc = Pc::WriteRound;
                } else {
                    self.pc = Pc::ReadPrevElse;
                }
                Step::Running
            }
            Pc::WriteRound => {
                // Line 38.
                mem.write_register(self.shared.round_regs[self.pid], Value::Int(self.r as i64));
                self.pc = Pc::ReadPrevThen;
                Step::Running
            }
            Pc::ReadPrevThen => {
                // Lines 39–41: pref ← D[r−1] if set (r > 1 only).
                if self.r > 1 {
                    let prev = mem.read_register(self.d_reg(self.r - 1));
                    if !prev.is_bottom() {
                        self.pref = prev;
                    }
                    self.pc = Pc::RunConsensus;
                    Step::Running
                } else {
                    // No shared access this step.
                    self.pc = Pc::RunConsensus;
                    Step::Running
                }
            }
            Pc::RunConsensus => {
                // Line 42: pref ← C_r.Decide(pref).
                if self.inner.is_none() {
                    let round = self.r;
                    let maker = self
                        .shared
                        .instances
                        .get(round - 1)
                        .unwrap_or_else(|| panic!("round horizon exceeded: round {round} was never preallocated; raise max_rounds"))
                        .clone();
                    self.inner = Some(maker(self.pid, self.pref.clone()));
                }
                match self.inner.as_mut().expect("just created").step(mem) {
                    Step::Running => Step::Running,
                    Step::Decided(v) => {
                        self.pref = v;
                        self.inner = None;
                        self.pc = Pc::WriteD;
                        Step::Running
                    }
                }
            }
            Pc::WriteD => {
                // Line 43.
                mem.write_register(self.d_reg(self.r), self.pref.clone());
                self.pc = Pc::CheckAll { mask: 0 };
                Step::Running
            }
            Pc::CheckAll { mask } => {
                // Line 44: ∀k, Round[k] ≤ r? — check the smallest
                // unchecked position (the paper's textual order; the
                // first entry of `choices`).
                let k = (0..self.n)
                    .find(|&k| mask & (1 << k) == 0)
                    .expect("an undecided scan has an unchecked position");
                self.check_position(mem, mask, k)
            }
            Pc::ReadPrevElse => {
                // Lines 47–49, then line 50.
                if self.r > 1 {
                    let prev = mem.read_register(self.d_reg(self.r - 1));
                    if !prev.is_bottom() {
                        self.pref = prev;
                    }
                }
                self.r += 1;
                self.pc = Pc::CheckRound;
                Step::Running
            }
        }
    }

    fn choices(&self) -> Vec<usize> {
        // The line-44 scan may check any unchecked position next; every
        // other step is deterministic. Choice ids are the process-slot
        // positions themselves, as the `choices` contract requires of
        // multi-alternative steps.
        if let Pc::CheckAll { mask } = self.pc {
            let unchecked: Vec<usize> = (0..self.n).filter(|&k| mask & (1 << k) == 0).collect();
            if !unchecked.is_empty() {
                return unchecked;
            }
        }
        vec![0]
    }

    fn step_choice(&mut self, mem: &mut dyn MemOps, choice: usize) -> Step {
        if let Pc::CheckAll { mask } = self.pc {
            if mask != self.full_mask() {
                return self.check_position(mem, mask, choice);
            }
        }
        debug_assert_eq!(choice, 0, "only the scan offers multiple choices");
        self.step(mem)
    }

    fn scalarset_pinned(&self) -> bool {
        // A mid-scan mask names family positions; empty and complete
        // masks are fixed by every permutation.
        matches!(self.pc, Pc::CheckAll { mask } if mask != 0 && mask != self.full_mask())
    }

    fn on_crash(&mut self) {
        self.pc = Pc::CheckRound;
        self.r = 1;
        self.pref = self.input.clone();
        self.inner = None;
    }

    fn state_key(&self) -> Value {
        let pc = match &self.pc {
            Pc::CheckRound => Value::Int(0),
            Pc::WriteRound => Value::Int(1),
            Pc::ReadPrevThen => Value::Int(2),
            Pc::RunConsensus => Value::Int(3),
            Pc::WriteD => Value::Int(4),
            Pc::CheckAll { mask } => Value::pair(Value::Int(5), Value::Int(*mask as i64)),
            Pc::ReadPrevElse => Value::Int(6),
        };
        Value::Tuple(vec![
            pc,
            Value::Int(self.r as i64),
            self.pref.clone(),
            self.inner.as_ref().map_or(Value::Bottom, |p| p.state_key()),
        ])
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(SimultaneousRc {
            shared: self.shared.clone(),
            pid: self.pid,
            n: self.n,
            input: self.input.clone(),
            pc: self.pc.clone(),
            r: self.r,
            pref: self.pref.clone(),
            inner: self.inner.clone(),
        })
    }

    fn rebind(&mut self, map: &Rebinding) {
        // The only pid-derived handle is the process's *own* round
        // register (lines 37–38). Scalarset canonicalization relocates
        // this program together with its family cell, so follow the
        // register to its destination slot. The shared layout vectors
        // are positional (cell addresses never change identity — only
        // contents and program slots move), so the destination position
        // IS the new pid. `D[_]` and instance cells never move; the
        // mid-consensus routine is rebound for completeness (identity
        // on all its cells).
        let own = self.shared.round_regs[self.pid];
        let new = map.lookup(own);
        if new != own {
            self.pid = self
                .shared
                .round_regs
                .iter()
                .position(|&c| c == new)
                .expect("a round register can only be rebound to a round register");
        }
        if let Some(inner) = &mut self.inner {
            inner.rebind(map);
        }
    }

    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        // Every Round register — the line-44 termination scan reads all
        // of them, own and foreign alike — plus every D register and
        // every preallocated consensus instance's cells (probed through
        // a throwaway program; an instance's reference set does not
        // depend on the proposed value). This honest enumeration is
        // what makes the model checker's owned-cell validation *reject*
        // round-register orbits: the registers are per-process but not
        // owner-only, so they cannot soundly permute with their owners —
        // the sound declaration is the *scalarset* one
        // (see `build_simultaneous_rc_system_sym`).
        let mut cells: Vec<Addr> = self.shared.round_regs.iter().copied().collect();
        cells.extend(self.shared.d_regs.iter().copied());
        for maker in self.shared.instances.iter() {
            cells.extend(maker(self.pid, self.input.clone()).referenced_cells()?);
        }
        Some(cells)
    }
}

/// Builds a complete Fig. 4 system for the given inputs.
pub fn build_simultaneous_rc_system(
    factory: &dyn ConsensusFactory,
    inputs: &[Value],
    max_rounds: usize,
) -> (Memory, Vec<Box<dyn Program>>) {
    let n = inputs.len();
    let mut mem = Memory::new();
    let shared = alloc_simultaneous_rc(&mut mem, factory, n, max_rounds);
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(pid, input)| {
            Box::new(SimultaneousRc::new(shared.clone(), pid, n, input.clone())) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

/// [`build_simultaneous_rc_system`] plus the strongest process-symmetry
/// declaration that is **sound** for Fig. 4: same-input orbits with the
/// round registers declared as a **scalarset family**.
///
/// The per-process `Round[j]` registers are distinguishing shared state,
/// but they are *not* owner-only: Fig. 4's line-44 termination scan
/// makes every process read every round register, so declaring them as
/// owned cells is rejected by the owner-only validation (tested in
/// `simultaneous::tests`). They fit the scalarset fragment instead
/// ([`SymmetrySpec::with_scalarset`]): one cell per process, cross-read
/// only by the line-44 scan, which [`SimultaneousRc`] models as an
/// order-insensitive fold over a checked-position mask (internal
/// nondeterminism, [`Program::choices`]) rather than a positional walk.
/// At search start the scalarset certifier (`rc_runtime::lint_scalarset`)
/// *proves* the fold order-insensitive — transposition equivariance of
/// the memoized local-state graphs, member exchange, rebind fidelity —
/// and only then do the engines permute the family with the process
/// slots; mid-scan (pinned) states simply forgo reduction
/// ([`Program::scalarset_pinned`]). DESIGN.md §3 has the full soundness
/// argument.
pub fn build_simultaneous_rc_system_sym(
    factory: &dyn ConsensusFactory,
    inputs: &[Value],
    max_rounds: usize,
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let n = inputs.len();
    let mut mem = Memory::new();
    let shared = alloc_simultaneous_rc(&mut mem, factory, n, max_rounds);
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(pid, input)| {
            Box::new(SimultaneousRc::new(shared.clone(), pid, n, input.clone())) as Box<dyn Program>
        })
        .collect();
    let spec = SymmetrySpec::from_classes(inputs)
        .with_scalarset(shared.round_regs.iter().copied().collect());
    (mem, programs, spec)
}

/// A [`ConsensusFactory`] running Theorem 3's tournament consensus on an
/// *n*-discerning readable type — the composition that proves Theorem 1's
/// "simultaneous-crash RC ≡ consensus" for concrete types like `T_n`.
pub fn discerning_consensus_factory(
    ty: rc_spec::TypeHandle,
    witness: crate::DiscerningWitness,
) -> impl ConsensusFactory {
    use crate::algorithms::tournament::{build_stages_for_consensus, StagedProgram};

    FnConsensusFactory(move |mem: &mut Memory| {
        // Each instance is a fresh consensus tournament over the witness
        // (its own object and registers); StagedProgram chains the
        // per-group stages exactly as in build_tournament_consensus.
        let n = witness.len();
        let mut stages: Vec<Vec<StageMaker>> = vec![Vec::new(); n];
        let procs: Vec<usize> = (0..n).collect();
        build_stages_for_consensus(mem, &ty, &witness, &procs, &mut stages);
        let stages = Arc::new(stages);
        Arc::new(move |pid: usize, input: Value| {
            Box::new(StagedProgram::new(stages[pid].clone(), input)) as Box<dyn Program>
        }) as InstanceMaker
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, RoundRobin};
    use rc_runtime::verify::check_consensus_execution;
    use rc_runtime::{explore, run, CrashModel, ExploreConfig, RunOptions};

    fn inputs(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::Int(i as i64)).collect()
    }

    #[test]
    fn crash_free_run_agrees() {
        let factory = ConsensusObjectFactory { domain: 8 };
        let inputs = inputs(4);
        let (mut mem, mut programs) = build_simultaneous_rc_system(&factory, &inputs, 4);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        check_consensus_execution(&exec, &inputs).expect("crash-free agreement");
    }

    #[test]
    fn survives_randomized_simultaneous_crashes() {
        let factory = ConsensusObjectFactory { domain: 8 };
        let inputs = inputs(4);
        for seed in 0..300 {
            let (mut mem, mut programs) = build_simultaneous_rc_system(&factory, &inputs, 8);
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.05,
                crash: CrashModel::simultaneous(4).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            check_consensus_execution(&exec, &inputs)
                .unwrap_or_else(|e| panic!("seed={seed}: {e}\ntrace:\n{}", exec.trace));
        }
    }

    #[test]
    fn model_checked_simultaneous_crashes_n2() {
        let factory = ConsensusObjectFactory { domain: 4 };
        let inputs = inputs(2);
        let outcome = explore(
            &|| build_simultaneous_rc_system(&factory, &inputs, 5),
            &ExploreConfig {
                crash: CrashModel::simultaneous(2).after_decide(true),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    /// The round registers are per-process but cross-read (the line-44
    /// scan), so declaring them as owned cells is unsound — and the
    /// model checker's owner-only validation rejects the declaration at
    /// search start, naming the offending cross-reference.
    #[test]
    fn round_register_owned_orbits_are_rejected() {
        let factory = ConsensusObjectFactory { domain: 4 };
        let inputs = inputs(2);
        let unsound = || {
            let n = inputs.len();
            let mut mem = Memory::new();
            let shared = alloc_simultaneous_rc(&mut mem, &factory, n, 3);
            let mut spec = rc_runtime::SymmetrySpec::full(n);
            for (pid, &reg) in shared.round_regs.iter().enumerate() {
                spec = spec.with_owned_cells(pid, vec![reg]);
            }
            let programs: Vec<Box<dyn Program>> = (0..n)
                .map(|pid| {
                    Box::new(SimultaneousRc::new(shared.clone(), pid, n, Value::Int(0)))
                        as Box<dyn Program>
                })
                .collect();
            (mem, programs, spec)
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rc_runtime::explore_symmetric(&unsound, &ExploreConfig::default())
        }));
        let message = *result
            .expect_err("the owned declaration must be rejected")
            .downcast::<String>()
            .expect("panic payload is a String");
        assert!(
            message.contains("owned by p") && message.contains("referenced by p"),
            "the rejection must name the cross-reference: {message}"
        );
    }

    /// The sound declaration Fig. 4 gets instead is the *scalarset* one:
    /// with equal inputs the round registers permute with their owners
    /// under the certified order-insensitive scan, the quotient search
    /// visits strictly fewer states, and the weighted leaf count — each
    /// canonical class counted with its orbit multiplicity — matches the
    /// plain engines exactly.
    #[test]
    fn scalarset_symmetry_reduces_exactly() {
        let factory = ConsensusObjectFactory { domain: 4 };
        let inputs = vec![Value::Int(0), Value::Int(0)];
        let config = ExploreConfig {
            crash: CrashModel::simultaneous(1).after_decide(true),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        };
        let plain = rc_runtime::explore(
            &|| build_simultaneous_rc_system(&factory, &inputs, 4),
            &config,
        );
        let sym = rc_runtime::explore_symmetric(
            &|| build_simultaneous_rc_system_sym(&factory, &inputs, 4),
            &config,
        );
        let (
            rc_runtime::ExploreOutcome::Verified {
                states: ps,
                leaves: pl,
            },
            rc_runtime::ExploreOutcome::Verified {
                states: ss,
                leaves: sl,
            },
        ) = (&plain, &sym)
        else {
            panic!("both searches must verify: plain={plain:?} sym={sym:?}");
        };
        assert_eq!(pl, sl, "orbit-weighted leaves must match the plain count");
        assert!(
            ss < ps,
            "the scalarset quotient must visit fewer states ({ss} vs {ps})"
        );
    }

    #[test]
    fn round_horizon_panic_is_informative() {
        let factory = ConsensusObjectFactory { domain: 2 };
        let mut mem = Memory::new();
        let shared = alloc_simultaneous_rc(&mut mem, &factory, 1, 1);
        let mut p = SimultaneousRc::new(shared, 0, 1, Value::Int(0));
        assert_eq!(p.current_round(), 1);
        // Force an out-of-horizon round access.
        p.r = 2;
        p.pc = Pc::WriteD;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.step(&mut mem)));
        assert!(result.is_err());
    }
}
