//! Executable forms of the paper's algorithms, as crashable state machines
//! over the `rc-runtime` simulator.
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Fig. 2 — recoverable team consensus (Theorem 8) | [`TeamRc`], [`build_team_rc_system`] |
//! | Section 3.1's bad scenario (missing `|B|=1` guard) | [`BrokenTeamRc`] |
//! | Appendix B — tournament: team RC → full RC (Prop. 30) | [`build_tournament_rc`] |
//! | Theorem 3 — consensus from *n*-discerning readable types | [`TeamConsensus`], [`build_tournament_consensus`] |
//! | Fig. 4 — consensus → simultaneous-crash RC (Theorem 1) | [`SimultaneousRc`], [`build_simultaneous_rc_system`] |
//! | Section 1 — input-register masking transformation | [`InputMasked`] |

mod consensus;
mod input_mask;
mod rc_factory;
mod simultaneous;
mod team_rc;
mod tournament;

pub use consensus::{
    alloc_team_consensus, build_masked_team_consensus_system,
    build_masked_team_consensus_system_sym, build_team_consensus_system,
    build_team_consensus_system_sym, TeamConsensus, TeamConsensusConfig, TeamConsensusShared,
};
pub use input_mask::{InnerMaker, InputMasked};
pub use rc_factory::{consensus_object_rc_factory, tournament_rc_factory};
pub use simultaneous::{
    alloc_simultaneous_rc, build_simultaneous_rc_system, build_simultaneous_rc_system_sym,
    discerning_consensus_factory, ConsensusFactory, ConsensusObjectFactory, FnConsensusFactory,
    InstanceMaker, SimultaneousRc, SimultaneousRcShared,
};
pub use team_rc::{
    alloc_team_rc, build_broken_team_rc_system, build_broken_team_rc_system_sym,
    build_masked_broken_team_rc_system, build_masked_broken_team_rc_system_sym,
    build_masked_team_rc_system, build_masked_team_rc_system_sym, build_team_rc_system,
    build_team_rc_system_sym, BrokenTeamRc, TeamRc, TeamRcConfig, TeamRcShared,
};
pub use tournament::{build_tournament_consensus, build_tournament_rc, StageMaker, StagedProgram};
