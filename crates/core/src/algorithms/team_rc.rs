//! The recoverable team consensus algorithm of Fig. 2 (Theorem 8).
//!
//! Given a *normalized* [`RecordingWitness`] (`q0 ∉ Q_B`; see
//! [`RecordingWitness::normalized`]), each process executes the paper's
//! `Decide(v)` routine — team A's code on lines 4–14, team B's on lines
//! 15–29 — against one shared object `O` of the witnessing type and two
//! registers `R_A`, `R_B`. Every [`Program::step`] performs exactly one
//! shared-memory access, so crashes can strike between any two accesses,
//! exactly as the paper's adversary allows.
//!
//! The deliberately faulty [`BrokenTeamRc`] omits the `|B| = 1` test of
//! line 19; Section 3.1 describes a schedule on which that version
//! violates agreement — reproduced in this module's tests and in the
//! `adversary` example.

use crate::algorithms::input_mask::{InnerMaker, InputMasked};
use crate::recording::RecordingWitness;
use crate::witness::Team;
use rc_runtime::{Addr, MemOps, Memory, Program, Rebinding, Step, SymmetrySpec};
use rc_spec::{Operation, TypeHandle, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The shared cells of one Fig. 2 instance.
#[derive(Clone, Copy, Debug)]
pub struct TeamRcShared {
    /// The object `O` of the witnessing type, initially in state `q0`.
    pub obj: Addr,
    /// Register `R_A`, initially ⊥.
    pub reg_a: Addr,
    /// Register `R_B`, initially ⊥.
    pub reg_b: Addr,
}

/// Witness data shared by all processes of one instance.
#[derive(Debug)]
pub struct TeamRcConfig {
    /// The object type.
    pub ty: TypeHandle,
    /// The normalized witness (`q0 ∉ Q_B`).
    pub witness: RecordingWitness,
}

impl TeamRcConfig {
    /// Packages a type and witness, normalizing the witness.
    ///
    /// # Panics
    ///
    /// Panics if the witness (after normalization) still has `q0 ∈ Q_B` —
    /// impossible for a witness produced by
    /// [`check_recording`](crate::check_recording).
    pub fn new(ty: TypeHandle, witness: &RecordingWitness) -> Arc<Self> {
        let witness = witness.normalized();
        assert!(
            !witness.q_b.contains(&witness.assignment.q0),
            "normalization must establish q0 ∉ Q_B"
        );
        Arc::new(TeamRcConfig { ty, witness })
    }

    fn q0(&self) -> &Value {
        &self.witness.assignment.q0
    }

    fn q_a(&self) -> &BTreeSet<Value> {
        &self.witness.q_a
    }

    fn team_of(&self, slot: usize) -> Team {
        self.witness.assignment.teams[slot]
    }

    fn op_of(&self, slot: usize) -> &Operation {
        &self.witness.assignment.ops[slot]
    }

    fn team_b_is_singleton(&self) -> bool {
        self.witness.assignment.team_size(Team::B) == 1
    }

    /// The behavioural class of `slot`: the smallest slot with the same
    /// `(team, op)` under the normalized witness. Two slots of one class
    /// run literally the same code — `slot` influences behaviour only
    /// through its team and operation — so the class (plus the input) is
    /// what [`Program::state_key`] encodes, and processes of one class
    /// with equal inputs are interchangeable for the model checker's
    /// process-symmetry reduction.
    fn class_of(&self, slot: usize) -> usize {
        (0..slot)
            .find(|&j| self.team_of(j) == self.team_of(slot) && self.op_of(j) == self.op_of(slot))
            .unwrap_or(slot)
    }
}

/// Allocates the shared cells for one Fig. 2 instance (lines 1–3: `O` in
/// state `q0`, registers `R_A`, `R_B` initially ⊥).
pub fn alloc_team_rc(mem: &mut Memory, config: &TeamRcConfig) -> TeamRcShared {
    let obj = mem.alloc_object(config.ty.clone(), config.q0().clone());
    let reg_a = mem.alloc_register(Value::Bottom);
    let reg_b = mem.alloc_register(Value::Bottom);
    TeamRcShared { obj, reg_a, reg_b }
}

/// Program counter of the Fig. 2 state machine. Each variant performs one
/// shared-memory access; paper line numbers in comments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pc {
    /// Lines 5 / 16: write input to the team's register.
    WriteInput,
    /// Lines 6 / 17: first read of `O`.
    ReadFirst,
    /// Line 19 (team B, singleton): read `R_A`; if ≠ ⊥, return it.
    SingletonGuard,
    /// Lines 8 / 22: apply `op_i` to `O`.
    Apply,
    /// Lines 9 / 23: re-read `O`.
    ReadSecond,
    /// Lines 11–12 / 26–27: read the winning team's register and return.
    Output { q_in_q_a: bool },
}

/// One process's Fig. 2 `Decide(v)` routine as a crashable state machine.
///
/// `slot` selects the process's row of the witness (its team and its
/// operation `op_i`). The `input` is retained across crashes (the paper's
/// stable-input assumption; see
/// [`InputMasked`](crate::algorithms::InputMasked) for the transformation
/// that removes it).
#[derive(Clone, Debug)]
pub struct TeamRc {
    config: Arc<TeamRcConfig>,
    shared: TeamRcShared,
    slot: usize,
    /// `config.class_of(slot)`, precomputed — `state_key` is the model
    /// checker's hottest call.
    class: usize,
    input: Value,
    pc: Pc,
    /// If `true`, the `|B| = 1` test of line 19 is skipped — the broken
    /// variant of Section 3.1's second bad scenario.
    skip_singleton_test: bool,
}

impl TeamRc {
    /// Creates the routine for witness row `slot` with the given input.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the witness.
    pub fn new(config: Arc<TeamRcConfig>, shared: TeamRcShared, slot: usize, input: Value) -> Self {
        assert!(slot < config.witness.len(), "slot out of range");
        let class = config.class_of(slot);
        TeamRc {
            config,
            shared,
            slot,
            class,
            input,
            pc: Pc::WriteInput,
            skip_singleton_test: false,
        }
    }

    /// The process's team under the (normalized) witness.
    pub fn team(&self) -> Team {
        self.config.team_of(self.slot)
    }

    fn my_reg(&self) -> Addr {
        match self.team() {
            Team::A => self.shared.reg_a,
            Team::B => self.shared.reg_b,
        }
    }

    fn pc_code(&self) -> i64 {
        match self.pc {
            Pc::WriteInput => 0,
            Pc::ReadFirst => 1,
            Pc::SingletonGuard => 2,
            Pc::Apply => 3,
            Pc::ReadSecond => 4,
            Pc::Output { q_in_q_a: false } => 5,
            Pc::Output { q_in_q_a: true } => 6,
        }
    }
}

impl Program for TeamRc {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc {
            Pc::WriteInput => {
                // Line 5 / 16: R_team ← v.
                mem.write_register(self.my_reg(), self.input.clone());
                self.pc = Pc::ReadFirst;
                Step::Running
            }
            Pc::ReadFirst => {
                // Line 6 / 17: q ← O.
                let q = mem.read_object(self.shared.obj);
                if q == *self.config.q0() {
                    // Line 7 / 18 true branch.
                    self.pc = match self.team() {
                        Team::A => Pc::Apply,
                        Team::B => {
                            // Line 19: the guard applies only when |B| = 1
                            // (unless we are the broken variant).
                            if self.skip_singleton_test || self.config.team_b_is_singleton() {
                                Pc::SingletonGuard
                            } else {
                                Pc::Apply
                            }
                        }
                    };
                } else {
                    // Fall through to lines 11 / 26 with this q.
                    self.pc = Pc::Output {
                        q_in_q_a: self.config.q_a().contains(&q),
                    };
                }
                Step::Running
            }
            Pc::SingletonGuard => {
                // Line 19: |B| = 1 and R_A ≠ ⊥ → return R_A (line 20).
                let r_a = mem.read_register(self.shared.reg_a);
                if r_a.is_bottom() {
                    self.pc = Pc::Apply;
                    Step::Running
                } else {
                    Step::Decided(r_a)
                }
            }
            Pc::Apply => {
                // Line 8 / 22: apply op_i to O (response unused — after a
                // crash it would be lost anyway; only the state matters).
                mem.apply(self.shared.obj, self.config.op_of(self.slot));
                self.pc = Pc::ReadSecond;
                Step::Running
            }
            Pc::ReadSecond => {
                // Line 9 / 23: q ← O.
                let q = mem.read_object(self.shared.obj);
                self.pc = Pc::Output {
                    q_in_q_a: self.config.q_a().contains(&q),
                };
                Step::Running
            }
            Pc::Output { q_in_q_a } => {
                // Lines 11–12 / 26–27: return the winner team's register.
                let reg = if q_in_q_a {
                    self.shared.reg_a
                } else {
                    self.shared.reg_b
                };
                Step::Decided(mem.read_register(reg))
            }
        }
    }

    fn on_crash(&mut self) {
        // The programme counter and all locals are volatile; the input is
        // stable (Section 1).
        self.pc = Pc::WriteInput;
    }

    fn state_key(&self) -> Value {
        // The key encodes the behavioural state, not the slot number:
        // `slot` acts only through its `(team, op)` class, so the class
        // plus the input makes equal keys mean equal behaviour *across*
        // process slots too — which is what lets the symmetry reduction
        // merge same-class, same-input processes. Per slot, class and
        // input are constants, so plain (symmetry-off) state counts are
        // unchanged.
        Value::Tuple(vec![
            Value::Int(self.pc_code()),
            Value::Int(self.class as i64),
            self.input.clone(),
        ])
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn rebind(&mut self, map: &Rebinding) {
        // Fig. 2's cells are all team-shared (never owned by one
        // process), so in practice this is the identity — implemented
        // honestly so the masked wrapper can rebind through it.
        self.shared.obj = map.lookup(self.shared.obj);
        self.shared.reg_a = map.lookup(self.shared.reg_a);
        self.shared.reg_b = map.lookup(self.shared.reg_b);
    }

    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        Some(vec![self.shared.obj, self.shared.reg_a, self.shared.reg_b])
    }
}

/// The broken variant of Fig. 2 used to reproduce the paper's second bad
/// scenario (Section 3.1): the `|B| = 1` test of line 19 is omitted, so
/// *every* team-B process defers to team A when it sees `R_A ≠ ⊥`.
///
/// With `|B| ≥ 2`, the paper's interleaving — one B process poised to
/// update `O` after passing the guard, another B process deferring — makes
/// two processes output different teams' values, violating agreement. The
/// correct algorithm forbids exactly this by restricting the guard to
/// singleton B.
#[derive(Clone, Debug)]
pub struct BrokenTeamRc(pub TeamRc);

impl BrokenTeamRc {
    /// Creates the broken routine for witness row `slot`.
    pub fn new(config: Arc<TeamRcConfig>, shared: TeamRcShared, slot: usize, input: Value) -> Self {
        let mut inner = TeamRc::new(config, shared, slot, input);
        inner.skip_singleton_test = true;
        BrokenTeamRc(inner)
    }
}

impl Program for BrokenTeamRc {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        self.0.step(mem)
    }
    fn on_crash(&mut self) {
        self.0.on_crash();
    }
    fn state_key(&self) -> Value {
        self.0.state_key()
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn rebind(&mut self, map: &Rebinding) {
        self.0.rebind(map);
    }
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        self.0.referenced_cells()
    }
}

/// Builds a complete Fig. 2 system: memory, shared cells, and one
/// [`TeamRc`] per witness row, with `inputs[i]` as row `i`'s input.
///
/// The inputs must satisfy the *team consensus* precondition (all members
/// of a team propose the same value) for the agreement guarantee of
/// Theorem 8 to apply; the function does not enforce it so that tests can
/// also explore precondition violations.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the witness size.
pub fn build_team_rc_system(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    build_team_rc(ty, witness, inputs, false)
}

/// [`build_team_rc_system`] plus the system's process-symmetry
/// declaration, for [`rc_runtime::explore_symmetric`]: witness rows with
/// the same `(team, op)` class *and* the same input run interchangeable
/// processes and form one orbit. For the paper's `S_n` witness (one
/// team-A row, `n − 1` identical team-B rows) the team-B side collapses
/// into a single orbit of `n − 1` processes.
pub fn build_team_rc_system_sym(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let config = TeamRcConfig::new(ty.clone(), witness);
    let (mem, programs) = build_team_rc(ty, witness, inputs, false);
    (mem, programs, team_rc_symmetry(&config, inputs))
}

/// Builds the [`BrokenTeamRc`] variant of the system (the Section 3.1
/// missing-guard counterexample) — one builder instead of the inline
/// copies the experiments and tests used to carry.
pub fn build_broken_team_rc_system(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    build_team_rc(ty, witness, inputs, true)
}

/// [`build_broken_team_rc_system`] plus its symmetry declaration (orbits
/// are the same as the correct variant's: the broken flag is
/// system-wide, so it never distinguishes two rows of one class).
pub fn build_broken_team_rc_system_sym(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let config = TeamRcConfig::new(ty.clone(), witness);
    let (mem, programs) = build_team_rc(ty, witness, inputs, true);
    (mem, programs, team_rc_symmetry(&config, inputs))
}

fn build_team_rc(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
    broken: bool,
) -> (Memory, Vec<Box<dyn Program>>) {
    assert_eq!(inputs.len(), witness.len(), "one input per witness row");
    let config = TeamRcConfig::new(ty, witness);
    let mut mem = Memory::new();
    let shared = alloc_team_rc(&mut mem, &config);
    // Inputs are given per *original* witness row; normalization only
    // renames teams, so row indices are stable.
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| {
            if broken {
                Box::new(BrokenTeamRc::new(
                    config.clone(),
                    shared,
                    slot,
                    input.clone(),
                )) as Box<dyn Program>
            } else {
                Box::new(TeamRc::new(config.clone(), shared, slot, input.clone()))
                    as Box<dyn Program>
            }
        })
        .collect();
    (mem, programs)
}

/// The orbit partition of one Fig. 2 instance: witness rows grouped by
/// `(class, input)` — interchangeable iff they run the same code (same
/// normalized team and operation) with the same input.
fn team_rc_symmetry(config: &TeamRcConfig, inputs: &[Value]) -> SymmetrySpec {
    let labels: Vec<(usize, &Value)> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| (config.class_of(slot), input))
        .collect();
    SymmetrySpec::from_classes(&labels)
}

/// Builds the **input-masked** Fig. 2 system: each process runs
/// [`TeamRc`] under the [`InputMasked`] wrapper with a dedicated
/// per-process mask register — the introduction's transformation that
/// removes the stable-input assumption. The mask registers are written
/// and read only by their owners.
pub fn build_masked_team_rc_system(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    let (mem, programs, _, _) = build_masked_team_rc(ty, witness, inputs, false);
    (mem, programs)
}

/// [`build_masked_team_rc_system`] plus its **full-state** symmetry
/// declaration for [`rc_runtime::explore_symmetric`]: rows of one
/// `(team, op)` class with equal inputs form an orbit, and each
/// process's mask register is declared as an *owned cell*
/// ([`SymmetrySpec::with_owned_cells`]) so it permutes together with its
/// owner and the relocated wrapper is rebound. A slots-only declaration
/// would have to keep every masked process in a singleton orbit (the
/// mask registers are per-process distinguishing state), so this is the
/// system family that needed `Program::rebind`.
pub fn build_masked_team_rc_system_sym(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let (mem, programs, config, mask_regs) = build_masked_team_rc(ty, witness, inputs, false);
    (
        mem,
        programs,
        masked_team_rc_symmetry(&config, inputs, &mask_regs),
    )
}

/// The masked [`BrokenTeamRc`] system (the Section 3.1 missing-guard
/// counterexample under input masking), for witness-replay tests of the
/// full-state symmetry reduction on a *violating* masked system.
pub fn build_masked_broken_team_rc_system(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    let (mem, programs, _, _) = build_masked_team_rc(ty, witness, inputs, true);
    (mem, programs)
}

/// [`build_masked_broken_team_rc_system`] plus its full-state symmetry
/// declaration (orbits and owned cells as in the correct variant).
pub fn build_masked_broken_team_rc_system_sym(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let (mem, programs, config, mask_regs) = build_masked_team_rc(ty, witness, inputs, true);
    (
        mem,
        programs,
        masked_team_rc_symmetry(&config, inputs, &mask_regs),
    )
}

/// A built masked system plus the config and per-process mask registers
/// its `_sym` siblings derive the symmetry declaration from.
type MaskedTeamRcSystem = (Memory, Vec<Box<dyn Program>>, Arc<TeamRcConfig>, Vec<Addr>);

fn build_masked_team_rc(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
    broken: bool,
) -> MaskedTeamRcSystem {
    assert_eq!(inputs.len(), witness.len(), "one input per witness row");
    let config = TeamRcConfig::new(ty, witness);
    let mut mem = Memory::new();
    let shared = alloc_team_rc(&mut mem, &config);
    let mask_regs: Vec<Addr> = (0..inputs.len())
        .map(|_| InputMasked::alloc_register(&mut mem))
        .collect();
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(slot, input)| {
            let config = config.clone();
            let make_inner: InnerMaker = Arc::new(move |masked: Value| {
                if broken {
                    Box::new(BrokenTeamRc::new(config.clone(), shared, slot, masked))
                        as Box<dyn Program>
                } else {
                    Box::new(TeamRc::new(config.clone(), shared, slot, masked)) as Box<dyn Program>
                }
            });
            Box::new(InputMasked::new(mask_regs[slot], input.clone(), make_inner))
                as Box<dyn Program>
        })
        .collect();
    (mem, programs, config, mask_regs)
}

/// The masked system's orbit partition — `(class, input)` like the
/// unmasked variant — with each process's mask register declared owned.
fn masked_team_rc_symmetry(
    config: &TeamRcConfig,
    inputs: &[Value],
    mask_regs: &[Addr],
) -> SymmetrySpec {
    let mut spec = team_rc_symmetry(config, inputs);
    for (pid, &reg) in mask_regs.iter().enumerate() {
        spec = spec.with_owned_cells(pid, vec![reg]);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::check_recording;
    use crate::witness::Assignment;
    use rc_runtime::sched::{Action, RandomScheduler, RandomSchedulerConfig, ScriptedScheduler};
    use rc_runtime::verify::check_consensus_execution;
    use rc_runtime::{explore, run, CrashModel, ExploreConfig, RunOptions};
    use rc_spec::types::{Cas, Sn, StickyRegister};

    fn sn_witness(n: usize) -> (TypeHandle, RecordingWitness) {
        let sn = Sn::new(n);
        let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]);
        let w = check_recording(&sn, &a).expect("S_n witness");
        (Arc::new(sn), w)
    }

    /// Inputs satisfying the team-consensus precondition: team A proposes
    /// 0, team B proposes 1 (slot 0 is team A in the S_n witness).
    fn team_inputs(n: usize) -> Vec<Value> {
        let mut inputs = vec![Value::Int(0)];
        inputs.extend(vec![Value::Int(1); n - 1]);
        inputs
    }

    #[test]
    fn crash_free_run_agrees() {
        for n in 2..=5 {
            let (ty, w) = sn_witness(n);
            let inputs = team_inputs(n);
            let (mut mem, mut programs) = build_team_rc_system(ty, &w, &inputs);
            let mut sched = rc_runtime::sched::RoundRobin::new();
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            let decision =
                check_consensus_execution(&exec, &inputs).expect("must satisfy RC properties");
            assert!(decision.is_some());
        }
    }

    #[test]
    fn randomized_crashes_never_violate_agreement() {
        for n in 2..=4 {
            let (ty, w) = sn_witness(n);
            let inputs = team_inputs(n);
            for seed in 0..200 {
                let (mut mem, mut programs) = build_team_rc_system(ty.clone(), &w, &inputs);
                let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                    seed,
                    crash_prob: 0.25,
                    crash: CrashModel::independent(4).after_decide(true),
                });
                let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
                check_consensus_execution(&exec, &inputs)
                    .unwrap_or_else(|e| panic!("n={n}, seed={seed}: {e}\ntrace:\n{}", exec.trace));
            }
        }
    }

    #[test]
    fn model_checked_for_s2_and_s3() {
        for n in [2usize, 3] {
            let (ty, w) = sn_witness(n);
            let inputs = team_inputs(n);
            let outcome = explore(
                &|| build_team_rc_system(ty.clone(), &w, &inputs),
                &ExploreConfig {
                    crash: CrashModel::independent(2).after_decide(true),
                    inputs: Some(inputs.clone()),
                    ..ExploreConfig::default()
                },
            );
            assert!(outcome.is_verified(), "n={n}: {outcome:?}");
        }
    }

    #[test]
    fn works_with_cas_and_sticky_witnesses() {
        for (ty, n) in [
            (Arc::new(Cas::new(2)) as TypeHandle, 4usize),
            (Arc::new(StickyRegister::new(2)) as TypeHandle, 4),
        ] {
            let w = crate::find_recording_witness(&ty, n).expect("witness exists");
            // Team A proposes 0, team B proposes 1, per the found witness.
            let inputs: Vec<Value> = w
                .assignment
                .teams
                .iter()
                .map(|t| match t {
                    Team::A => Value::Int(0),
                    Team::B => Value::Int(1),
                })
                .collect();
            for seed in 0..100 {
                let (mut mem, mut programs) = build_team_rc_system(ty.clone(), &w, &inputs);
                let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                    seed,
                    crash_prob: 0.2,
                    crash: CrashModel::independent(3).after_decide(true),
                });
                let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
                check_consensus_execution(&exec, &inputs)
                    .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
            }
        }
    }

    /// Full-state symmetry on the masked Fig. 2 system: the owned-cell
    /// declaration merges the team-B orbit even though each process owns
    /// a distinguishing mask register — identical verdicts and weighted
    /// leaf counts, strictly fewer states.
    #[test]
    fn masked_owned_cell_symmetry_reduces_and_preserves_outcomes() {
        let n = 3;
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(n);
        for budget in [0usize, 1] {
            let config = rc_runtime::ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..rc_runtime::ExploreConfig::default()
            };
            let off = explore(
                &|| build_masked_team_rc_system(ty.clone(), &w, &inputs),
                &config,
            );
            let on = rc_runtime::explore_symmetric(
                &|| build_masked_team_rc_system_sym(ty.clone(), &w, &inputs),
                &config,
            );
            let (off_states, off_leaves) = match off {
                rc_runtime::ExploreOutcome::Verified { states, leaves } => (states, leaves),
                other => panic!("masked S_{n}/{budget} must verify: {other:?}"),
            };
            match on {
                rc_runtime::ExploreOutcome::Verified { states, leaves } => {
                    assert_eq!(leaves, off_leaves, "budget {budget}: weighted leaves");
                    assert!(
                        states < off_states,
                        "budget {budget}: owned-cell orbits must reduce \
                         ({states} vs {off_states})"
                    );
                }
                other => panic!("masked S_{n}/{budget} must verify: {other:?}"),
            }
        }
    }

    /// A slots-only orbit over masked processes — distinguishing mask
    /// registers *not* declared owned — would miscount orbit weights, so
    /// the reference-consistency validation rejects it at search start.
    #[test]
    fn masked_slots_only_orbits_are_rejected() {
        let n = 3;
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(n);
        let config = TeamRcConfig::new(ty.clone(), &w);
        let slots_only = || {
            let (mem, programs) = build_masked_team_rc_system(ty.clone(), &w, &inputs);
            // The unmasked orbit labels, with no owned cells: unsound
            // over masked programs.
            let labels: Vec<(usize, &Value)> = inputs
                .iter()
                .enumerate()
                .map(|(slot, input)| (config.class_of(slot), input))
                .collect();
            (mem, programs, SymmetrySpec::from_classes(&labels))
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rc_runtime::explore_symmetric(&slots_only, &rc_runtime::ExploreConfig::default())
        }));
        let message = *result
            .expect_err("slots-only masked orbits must be rejected")
            .downcast::<String>()
            .expect("panic payload is a String");
        assert!(
            message.contains("different shared cells"),
            "the rejection must explain the reference mismatch: {message}"
        );
    }

    /// The paper's second bad scenario (Section 3.1): without the `|B| = 1`
    /// test, agreement breaks on this exact interleaving.
    ///
    /// The scenario needs a witness orientation with `q0 ∉ Q_B` and
    /// `|B| ≥ 2`. (S_n cannot provide it: its normalized witness always has
    /// a singleton B, which makes the guard *correct* — so the demo uses
    /// CAS, whose witnesses have `q0` outside both Q-sets.)
    #[test]
    fn broken_variant_violates_agreement_on_papers_schedule() {
        let cas: TypeHandle = Arc::new(Cas::new(2));
        let w = crate::find_recording_witness(&cas, 3).expect("cas witness");
        let w = w.normalized();
        // Ensure the orientation we need: make B the 2-process team by
        // swapping if necessary (CAS witnesses have q0 ∉ both Q-sets, so
        // both orientations are normalized).
        let w = if w.assignment.team_size(Team::B) >= 2 {
            w
        } else {
            RecordingWitness {
                assignment: w.assignment.swap_teams(),
                q_a: w.q_b.clone(),
                q_b: w.q_a.clone(),
            }
        };
        assert!(w.assignment.team_size(Team::B) >= 2);
        assert!(!w.q_b.contains(&w.assignment.q0));

        let config = TeamRcConfig::new(cas.clone(), &w);
        let inputs: Vec<Value> = w
            .assignment
            .teams
            .iter()
            .map(|t| match t {
                Team::A => Value::Int(0),
                Team::B => Value::Int(1),
            })
            .collect();
        let b_members = w.assignment.members(Team::B);
        let a_members = w.assignment.members(Team::A);
        let (b1, b2) = (b_members[0], b_members[1]);
        let a1 = a_members[0];

        let build = |broken: bool| {
            let mut mem = Memory::new();
            let shared = alloc_team_rc(&mut mem, &config);
            let programs: Vec<Box<dyn Program>> = inputs
                .iter()
                .enumerate()
                .map(|(slot, input)| {
                    if broken {
                        Box::new(BrokenTeamRc::new(
                            config.clone(),
                            shared,
                            slot,
                            input.clone(),
                        )) as Box<dyn Program>
                    } else {
                        Box::new(TeamRc::new(config.clone(), shared, slot, input.clone()))
                            as Box<dyn Program>
                    }
                })
                .collect();
            (mem, programs)
        };

        // The paper's interleaving: b1 writes R_B, reads O = q0, passes the
        // guard (R_A = ⊥) and is poised to update O; a1 writes R_A; b2 runs
        // to completion, sees R_A ≠ ⊥ at the guard and returns team A's
        // value; b1 resumes, updates O first, and returns team B's value.
        let schedule = [
            Action::Step(b1), // write R_B
            Action::Step(b1), // read O = q0
            Action::Step(b1), // guard: reads R_A = ⊥ → will update
            Action::Step(a1), // a1 writes R_A
            Action::Step(b2), // write R_B
            Action::Step(b2), // read O = q0
            Action::Step(b2), // guard: R_A ≠ ⊥ → DECIDES team A's value
            Action::Step(b1), // apply op (first update! O ∈ Q_B)
            Action::Step(b1), // re-read O
            Action::Step(b1), // output: DECIDES team B's value — violation
        ];

        // Broken variant: agreement violated on this schedule.
        let (mut mem, mut programs) = build(true);
        let mut sched = ScriptedScheduler::then_finish(schedule);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        let err = check_consensus_execution(&exec, &inputs)
            .expect_err("the broken variant must violate agreement");
        assert!(err.to_string().contains("agreement"), "{err}");

        // Correct algorithm: the exact same schedule is harmless (b1 and
        // b2 skip the guard because |B| > 1).
        let (mut mem, mut programs) = build(false);
        let mut sched = ScriptedScheduler::then_finish(schedule);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        check_consensus_execution(&exec, &inputs).expect("correct variant agrees");
    }

    #[test]
    fn broken_variant_caught_by_model_checker() {
        let cas: TypeHandle = Arc::new(Cas::new(2));
        let w = crate::find_recording_witness(&cas, 3)
            .expect("cas witness")
            .normalized();
        let w = if w.assignment.team_size(Team::B) >= 2 {
            w
        } else {
            RecordingWitness {
                assignment: w.assignment.swap_teams(),
                q_a: w.q_b.clone(),
                q_b: w.q_a.clone(),
            }
        };
        let config = TeamRcConfig::new(cas, &w);
        let inputs: Vec<Value> = w
            .assignment
            .teams
            .iter()
            .map(|t| match t {
                Team::A => Value::Int(0),
                Team::B => Value::Int(1),
            })
            .collect();
        let outcome = explore(
            &|| {
                let mut mem = Memory::new();
                let shared = alloc_team_rc(&mut mem, &config);
                let programs: Vec<Box<dyn Program>> = inputs
                    .iter()
                    .enumerate()
                    .map(|(slot, input)| {
                        Box::new(BrokenTeamRc::new(
                            config.clone(),
                            shared,
                            slot,
                            input.clone(),
                        )) as Box<dyn Program>
                    })
                    .collect();
                (mem, programs)
            },
            &ExploreConfig {
                crash: CrashModel::none(), // the violation needs no crashes at all
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            },
        );
        assert!(
            outcome.is_violation(),
            "model checker must find the Section 3.1 scenario: {outcome:?}"
        );
    }
}
