//! Tournament composition: from *team* consensus to full consensus
//! (Proposition 30 / Appendix B).
//!
//! The recursive construction: split the `k` processes into two non-empty
//! groups no larger than the witness's teams; each group recursively
//! agrees on a group value; the two groups then run *team* consensus —
//! with the group's agreed value as every member's input — to produce the
//! final output. The recursion bottoms out at singleton groups, whose
//! "agreement" is the process's own input.
//!
//! A process's view of the tournament is a *chain of stages* from its leaf
//! to the root: [`StagedProgram`] runs stage `i+1` with stage `i`'s output
//! as input. On a crash the whole chain restarts from the leaf — exactly
//! the paper's re-run-from-the-beginning semantics. Re-running is safe
//! for the recoverable tournament because each stage is itself an RC
//! algorithm: by agreement, every re-run of a stage produces the same
//! value, so the stage inputs (and hence the team-consensus preconditions)
//! are stable across runs.
//!
//! The same combinator builds the (non-recoverable) consensus tournament
//! of Theorem 3 from [`TeamConsensus`](super::TeamConsensus) stages.

use crate::algorithms::consensus::{alloc_team_consensus, TeamConsensus, TeamConsensusConfig};
use crate::algorithms::team_rc::{alloc_team_rc, TeamRc, TeamRcConfig};
use crate::discerning::{check_discerning, DiscerningWitness};
use crate::recording::{check_recording, RecordingWitness};
use crate::witness::{Assignment, Team};
use rc_runtime::{Addr, MemOps, Memory, Program, Step};
use rc_spec::{TypeHandle, Value};
use std::fmt;
use std::sync::Arc;

/// A factory producing one stage's program given the stage input.
pub type StageMaker = Arc<dyn Fn(Value) -> Box<dyn Program> + Send + Sync>;

/// A chain of consensus stages threaded leaf-to-root; see the module docs.
#[derive(Clone)]
pub struct StagedProgram {
    stages: Vec<StageMaker>,
    original_input: Value,
    stage_idx: usize,
    current_input: Value,
    current: Option<Box<dyn Program>>,
}

impl StagedProgram {
    /// Creates a staged program; with no stages it immediately decides its
    /// own input (the singleton-group base case).
    pub fn new(stages: Vec<StageMaker>, input: Value) -> Self {
        StagedProgram {
            stages,
            current_input: input.clone(),
            original_input: input,
            stage_idx: 0,
            current: None,
        }
    }

    /// Number of stages in the chain.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }
}

impl fmt::Debug for StagedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StagedProgram")
            .field("stages", &self.stages.len())
            .field("stage_idx", &self.stage_idx)
            .field("current_input", &self.current_input)
            .finish_non_exhaustive()
    }
}

impl Program for StagedProgram {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        if self.stage_idx >= self.stages.len() {
            return Step::Decided(self.current_input.clone());
        }
        let current = self
            .current
            .get_or_insert_with(|| self.stages[self.stage_idx](self.current_input.clone()));
        match current.step(mem) {
            Step::Running => Step::Running,
            Step::Decided(v) => {
                self.current = None;
                self.current_input = v.clone();
                self.stage_idx += 1;
                if self.stage_idx >= self.stages.len() {
                    Step::Decided(v)
                } else {
                    Step::Running
                }
            }
        }
    }

    fn on_crash(&mut self) {
        self.stage_idx = 0;
        self.current = None;
        self.current_input = self.original_input.clone();
    }

    fn state_key(&self) -> Value {
        Value::triple(
            Value::Int(self.stage_idx as i64),
            self.current_input.clone(),
            self.current
                .as_ref()
                .map_or(Value::Bottom, |p| p.state_key()),
        )
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        // Each stage's cell set is input-independent (the shared layout is
        // captured by the maker closure, not derived from the stage input),
        // so probing every maker with the original input covers all
        // executions; the chain's footprint is the union over its stages.
        let mut cells = Vec::new();
        for maker in &self.stages {
            cells.extend(maker(self.original_input.clone()).referenced_cells()?);
        }
        cells.sort_unstable();
        cells.dedup();
        Some(cells)
    }
}

/// Splits `k` processes into group sizes `(a', b')` with `a' ≤ a`,
/// `b' ≤ b`, both non-empty (possible whenever `2 ≤ k ≤ a + b`).
fn split_sizes(k: usize, a: usize, b: usize) -> (usize, usize) {
    debug_assert!(k >= 2 && k <= a + b);
    // Need a' ≥ k − b (so b' ≤ b), a' ≤ a, and 1 ≤ a' ≤ k − 1.
    let lo = k.saturating_sub(b).max(1);
    let hi = a.min(k - 1);
    debug_assert!(lo <= hi);
    // Balance the tree: prefer an even split within the legal range.
    let a_prime = (k / 2).clamp(lo, hi);
    (a_prime, k - a_prime)
}

/// Builds the sub-assignment of `witness_assignment` for `a'` team-A rows
/// and `b'` team-B rows, returning the row indices used and the new
/// assignment (A rows first).
fn sub_assignment(assignment: &Assignment, a_prime: usize, b_prime: usize) -> Assignment {
    let a_rows = assignment.members(Team::A);
    let b_rows = assignment.members(Team::B);
    assert!(a_prime <= a_rows.len() && b_prime <= b_rows.len());
    Assignment::split(
        assignment.q0.clone(),
        a_rows[..a_prime]
            .iter()
            .map(|&i| assignment.ops[i].clone())
            .collect(),
        b_rows[..b_prime]
            .iter()
            .map(|&i| assignment.ops[i].clone())
            .collect(),
    )
}

/// Recursively builds the stage chains; `stages[p]` accumulates process
/// `p`'s chain in leaf-to-root order.
fn build_node<F>(
    mem: &mut Memory,
    assignment: &Assignment,
    procs: &[usize],
    stages: &mut [Vec<StageMaker>],
    make_stage: &F,
) where
    F: Fn(&mut Memory, Assignment, /*slot of each proc*/ &[usize]) -> Vec<StageMaker>,
{
    let k = procs.len();
    if k < 2 {
        return;
    }
    let a = assignment.team_size(Team::A);
    let b = assignment.team_size(Team::B);
    let (a_prime, b_prime) = split_sizes(k, a, b);
    let (group_a, group_b) = procs.split_at(a_prime);

    // Children first: stages accumulate leaf-to-root.
    build_node(mem, assignment, group_a, stages, make_stage);
    build_node(mem, assignment, group_b, stages, make_stage);

    let sub = sub_assignment(assignment, a_prime, b_prime);
    // Slot i of `sub` belongs to procs[i] (A rows first, matching split).
    let makers = make_stage(mem, sub, procs);
    debug_assert_eq!(makers.len(), k);
    for (i, &p) in procs.iter().enumerate() {
        stages[p].push(makers[i].clone());
    }
}

/// Builds a full *recoverable consensus* system for `inputs.len()`
/// processes from an *n*-recording witness with `n ≥ inputs.len()`
/// (Theorem 8 + Proposition 30).
///
/// # Panics
///
/// Panics if the witness is smaller than the number of processes.
pub fn build_tournament_rc(
    ty: TypeHandle,
    witness: &RecordingWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    let k = inputs.len();
    assert!(
        witness.len() >= k,
        "witness covers {} processes, need {k}",
        witness.len()
    );
    let mut mem = Memory::new();
    let mut stages: Vec<Vec<StageMaker>> = vec![Vec::new(); k];
    let procs: Vec<usize> = (0..k).collect();
    let ty2 = ty.clone();
    build_node(
        &mut mem,
        &witness.assignment,
        &procs,
        &mut stages,
        &|mem, sub, _procs| {
            let sub_witness =
                check_recording(&ty2, &sub).expect("sub-assignments of a recording witness record");
            let config = TeamRcConfig::new(ty2.clone(), &sub_witness);
            let shared = alloc_team_rc(mem, &config);
            (0..sub.len())
                .map(|slot| {
                    let config = config.clone();
                    Arc::new(move |input: Value| {
                        Box::new(TeamRc::new(config.clone(), shared, slot, input))
                            as Box<dyn Program>
                    }) as StageMaker
                })
                .collect()
        },
    );
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(p, input)| {
            Box::new(StagedProgram::new(stages[p].clone(), input.clone())) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

/// Allocates the consensus-tournament cells for `procs` and appends each
/// process's stage chain to `stages` (leaf-to-root). Shared by
/// [`build_tournament_consensus`] and the Fig. 4 factory
/// [`discerning_consensus_factory`](super::discerning_consensus_factory).
pub(crate) fn build_stages_for_consensus(
    mem: &mut Memory,
    ty: &TypeHandle,
    witness: &DiscerningWitness,
    procs: &[usize],
    stages: &mut [Vec<StageMaker>],
) {
    let ty2 = ty.clone();
    build_node(
        mem,
        &witness.assignment,
        procs,
        stages,
        &|mem, sub, _procs| {
            let sub_witness = check_discerning(&ty2, &sub)
                .expect("sub-assignments of a discerning witness discern");
            let config = TeamConsensusConfig::new(ty2.clone(), sub_witness);
            let shared = alloc_team_consensus(mem, &config);
            (0..sub.len())
                .map(|slot| {
                    let config = config.clone();
                    Arc::new(move |input: Value| {
                        Box::new(TeamConsensus::new(config.clone(), shared, slot, input))
                            as Box<dyn Program>
                    }) as StageMaker
                })
                .collect()
        },
    );
}

/// Builds a full (non-recoverable) *consensus* system from an
/// *n*-discerning witness (Theorem 3's tournament).
///
/// # Panics
///
/// Panics if the witness is smaller than the number of processes or the
/// type is not readable.
pub fn build_tournament_consensus(
    ty: TypeHandle,
    witness: &DiscerningWitness,
    inputs: &[Value],
) -> (Memory, Vec<Box<dyn Program>>) {
    let k = inputs.len();
    assert!(
        witness.len() >= k,
        "witness covers {} processes, need {k}",
        witness.len()
    );
    let mut mem = Memory::new();
    let mut stages: Vec<Vec<StageMaker>> = vec![Vec::new(); k];
    let procs: Vec<usize> = (0..k).collect();
    build_stages_for_consensus(&mut mem, &ty, witness, &procs, &mut stages);
    let programs: Vec<Box<dyn Program>> = inputs
        .iter()
        .enumerate()
        .map(|(p, input)| {
            Box::new(StagedProgram::new(stages[p].clone(), input.clone())) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, RoundRobin};
    use rc_runtime::verify::check_consensus_execution;
    use rc_runtime::{explore, run, CrashModel, ExploreConfig, RunOptions};
    use rc_spec::types::{Cas, Sn, Tn};

    fn sn_witness(n: usize) -> (TypeHandle, RecordingWitness) {
        let sn = Sn::new(n);
        let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]);
        let w = check_recording(&sn, &a).expect("S_n witness");
        (Arc::new(sn), w)
    }

    #[test]
    fn split_sizes_are_legal() {
        for a in 1..=5usize {
            for b in 1..=5usize {
                for k in 2..=(a + b) {
                    let (ap, bp) = split_sizes(k, a, b);
                    assert!(ap >= 1 && bp >= 1, "k={k}, a={a}, b={b}");
                    assert!(ap <= a && bp <= b, "k={k}, a={a}, b={b}");
                    assert_eq!(ap + bp, k);
                }
            }
        }
    }

    #[test]
    fn tournament_rc_crash_free_with_distinct_inputs() {
        for n in 2..=5 {
            let (ty, w) = sn_witness(n);
            let inputs: Vec<Value> = (0..n).map(|i| Value::Int(i as i64)).collect();
            let (mut mem, mut programs) = build_tournament_rc(ty, &w, &inputs);
            let exec = run(
                &mut mem,
                &mut programs,
                &mut RoundRobin::new(),
                RunOptions::default(),
            );
            check_consensus_execution(&exec, &inputs).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn tournament_rc_survives_randomized_crashes() {
        for n in 2..=4 {
            let (ty, w) = sn_witness(n);
            let inputs: Vec<Value> = (0..n).map(|i| Value::Int(i as i64)).collect();
            for seed in 0..150 {
                let (mut mem, mut programs) = build_tournament_rc(ty.clone(), &w, &inputs);
                let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                    seed,
                    crash_prob: 0.2,
                    crash: CrashModel::independent(4).after_decide(true),
                });
                let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
                check_consensus_execution(&exec, &inputs)
                    .unwrap_or_else(|e| panic!("n={n}, seed={seed}: {e}\ntrace:\n{}", exec.trace));
            }
        }
    }

    #[test]
    fn tournament_rc_model_checked_for_s3() {
        let (ty, w) = sn_witness(3);
        let inputs: Vec<Value> = (0..3).map(|i| Value::Int(i as i64)).collect();
        let outcome = explore(
            &|| build_tournament_rc(ty.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(1),
                inputs: Some(inputs.clone()),
                max_states: 3_000_000,
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    #[test]
    fn tournament_rc_with_cas_many_processes() {
        let cas: TypeHandle = Arc::new(Cas::new(2));
        let w = crate::find_recording_witness(&cas, 6).expect("cas 6-witness");
        let inputs: Vec<Value> = (0..6).map(|i| Value::Int(i64::from(i % 2))).collect();
        for seed in 0..50 {
            let (mut mem, mut programs) = build_tournament_rc(cas.clone(), &w, &inputs);
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.15,
                crash: CrashModel::independent(5).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            check_consensus_execution(&exec, &inputs)
                .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
        }
    }

    #[test]
    fn tournament_consensus_crash_free_on_tn() {
        let tn = Tn::new(6);
        let a = Assignment::split(Tn::forget_state(), vec![Tn::op_a(); 3], vec![Tn::op_b(); 3]);
        let w = check_discerning(&tn, &a).expect("T_6 witness");
        let ty: TypeHandle = Arc::new(tn);
        let inputs: Vec<Value> = (0..6).map(|i| Value::Int(i as i64)).collect();
        let (mut mem, mut programs) = build_tournament_consensus(ty, &w, &inputs);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        check_consensus_execution(&exec, &inputs).expect("crash-free tournament agrees");
    }

    #[test]
    fn fewer_processes_than_witness_is_fine() {
        // An n-recording witness solves RC for any k ≤ n (unused processes
        // simply take no steps — Proposition 30's remark).
        let (ty, w) = sn_witness(5);
        let inputs: Vec<Value> = (0..3).map(|i| Value::Int(i as i64)).collect();
        let (mut mem, mut programs) = build_tournament_rc(ty, &w, &inputs);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        check_consensus_execution(&exec, &inputs).expect("3 of 5 processes agree");
    }

    #[test]
    fn staged_program_with_no_stages_decides_input() {
        let mut mem = Memory::new();
        let mut p = StagedProgram::new(Vec::new(), Value::Int(4));
        assert_eq!(p.depth(), 0);
        assert_eq!(p.step(&mut mem), Step::Decided(Value::Int(4)));
    }
}
