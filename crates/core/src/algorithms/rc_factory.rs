//! Recoverable-consensus instance factories for the universal construction.
//!
//! Appendix F of the paper remarks: *"a process that crashes and recovers
//! might access the RC instance associated with the `next` pointer of a
//! node multiple times with different input values. So, we should use the
//! mechanism described in the introduction to mask this behaviour and
//! ensure that the process's inputs to the RC instance are identical."*
//!
//! Concretely: inside `RUniversal`, a process's proposal for a node's
//! `next` pointer depends on volatile reads (the helping rule) — after a
//! crash, the re-run may compute a *different* proposal for the *same* RC
//! instance, violating the stable-input assumption of recoverable
//! consensus. [`tournament_rc_factory`] therefore wraps each process's
//! routine in the [`InputMasked`] transformation with a dedicated
//! per-(instance, process) register: the first proposal is persisted and
//! every re-run proposes it again.
//!
//! (Atomic consensus objects — [`ConsensusObjectFactory`] — do not need
//! masking: their single `propose` access is atomic, and re-proposing any
//! value returns the sticky winner.)

use crate::algorithms::input_mask::{InnerMaker, InputMasked};
use crate::algorithms::simultaneous::{ConsensusFactory, FnConsensusFactory, InstanceMaker};
use crate::algorithms::team_rc::{alloc_team_rc, TeamRc, TeamRcConfig};
use crate::algorithms::tournament::StageMaker;
use crate::algorithms::ConsensusObjectFactory;
use crate::recording::{check_recording, RecordingWitness};
use crate::witness::{Assignment, Team};
use rc_runtime::{Memory, Program};
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

/// Builds a [`ConsensusFactory`] whose every instance is a *recoverable*
/// consensus tournament (Fig. 2 + Appendix B) over an *n*-recording
/// witness, with per-process input masking as required by Appendix F.
///
/// Instances allocated by this factory tolerate arbitrary independent
/// crash/recovery of their callers, including re-invocation with
/// *different* input values across runs — the masking registers pin each
/// process's effective input to its first proposal.
///
/// # Panics
///
/// Panics (at instance-allocation time) if a sub-assignment of the witness
/// fails to verify — impossible for a witness produced by
/// [`check_recording`].
pub fn tournament_rc_factory(ty: TypeHandle, witness: RecordingWitness) -> impl ConsensusFactory {
    FnConsensusFactory(move |mem: &mut Memory| {
        let n = witness.len();
        let mut stages: Vec<Vec<StageMaker>> = vec![Vec::new(); n];
        let procs: Vec<usize> = (0..n).collect();
        build_rc_stages(mem, &ty, &witness, &procs, &mut stages);
        // One masking register per process, per instance (Appendix F).
        let mask_regs: Vec<_> = (0..n).map(|_| InputMasked::alloc_register(mem)).collect();
        let stages = Arc::new(stages);
        Arc::new(move |pid: usize, input: Value| {
            let stages = stages.clone();
            let inner: InnerMaker = Arc::new(move |masked: Value| {
                Box::new(crate::algorithms::tournament::StagedProgram::new(
                    stages[pid].clone(),
                    masked,
                )) as Box<dyn Program>
            });
            Box::new(InputMasked::new(mask_regs[pid], input, inner)) as Box<dyn Program>
        }) as InstanceMaker
    })
}

/// Allocates the tournament-RC cells for `procs` and appends each
/// process's stage chain (leaf-to-root) — the recoverable sibling of
/// `build_stages_for_consensus`.
fn build_rc_stages(
    mem: &mut Memory,
    ty: &TypeHandle,
    witness: &RecordingWitness,
    procs: &[usize],
    stages: &mut [Vec<StageMaker>],
) {
    fn rec(
        mem: &mut Memory,
        ty: &TypeHandle,
        assignment: &Assignment,
        procs: &[usize],
        stages: &mut [Vec<StageMaker>],
    ) {
        let k = procs.len();
        if k < 2 {
            return;
        }
        let a = assignment.team_size(Team::A);
        let b = assignment.team_size(Team::B);
        let lo = k.saturating_sub(b).max(1);
        let hi = a.min(k - 1);
        let a_prime = (k / 2).clamp(lo, hi);
        let (group_a, group_b) = procs.split_at(a_prime);
        rec(mem, ty, assignment, group_a, stages);
        rec(mem, ty, assignment, group_b, stages);

        let a_rows = assignment.members(Team::A);
        let b_rows = assignment.members(Team::B);
        let sub = Assignment::split(
            assignment.q0.clone(),
            a_rows[..a_prime]
                .iter()
                .map(|&i| assignment.ops[i].clone())
                .collect(),
            b_rows[..k - a_prime]
                .iter()
                .map(|&i| assignment.ops[i].clone())
                .collect(),
        );
        let sub_witness =
            check_recording(ty, &sub).expect("sub-assignments of a recording witness record");
        let config = TeamRcConfig::new(ty.clone(), &sub_witness);
        let shared = alloc_team_rc(mem, &config);
        for (slot, &p) in procs.iter().enumerate() {
            let config = config.clone();
            stages[p].push(Arc::new(move |input: Value| {
                Box::new(TeamRc::new(config.clone(), shared, slot, input)) as Box<dyn Program>
            }) as StageMaker);
        }
    }
    rec(mem, ty, &witness.assignment, procs, stages);
}

/// Convenience: the factory used for scale experiments — atomic consensus
/// objects over node-pointer domains.
pub fn consensus_object_rc_factory(domain: u32) -> ConsensusObjectFactory {
    ConsensusObjectFactory { domain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_recording_witness;
    use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig};
    use rc_runtime::verify::check_consensus_execution;
    use rc_runtime::{run, CrashModel, RunOptions, Step};
    use rc_spec::types::Sn;

    /// The masked tournament-RC instances must satisfy RC even when every
    /// run proposes a *different* value — the Appendix F hazard.
    #[test]
    fn masked_instances_tolerate_changing_proposals() {
        let sn: TypeHandle = Arc::new(Sn::new(3));
        let w = find_recording_witness(&sn, 3).expect("S_3 records");
        let factory = tournament_rc_factory(sn, w);
        for seed in 0..60u64 {
            let mut mem = Memory::new();
            let maker = factory.alloc_instance(&mut mem);
            // Three processes propose; p0's proposal CHANGES between runs
            // (simulating the helping rule recomputing a different
            // pointer after a crash).
            let mut programs: Vec<Box<dyn Program>> = (0..3)
                .map(|pid| maker(pid, Value::Int(pid as i64)))
                .collect();
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.2,
                crash: CrashModel::independent(3).after_decide(true),
            });
            // Run manually so we can change p0's nominal input on crash.
            let mut decided: Vec<Option<Value>> = vec![None; 3];
            let mut steps = 0;
            let mut all_outputs = Vec::new();
            loop {
                let flags: Vec<bool> = decided.iter().map(Option::is_some).collect();
                let ctx = rc_runtime::sched::SchedContext {
                    n: 3,
                    decided: &flags,
                    steps_taken: steps,
                    crashes_injected: 0,
                };
                let Some(action) = rc_runtime::sched::Scheduler::next_action(&mut sched, &ctx)
                else {
                    break;
                };
                match action {
                    rc_runtime::sched::Action::Step(p) => {
                        if decided[p].is_some() {
                            continue;
                        }
                        steps += 1;
                        if let Step::Decided(v) = programs[p].step(&mut mem) {
                            all_outputs.push(v.clone());
                            decided[p] = Some(v);
                        }
                    }
                    rc_runtime::sched::Action::Crash(p) => {
                        programs[p].on_crash();
                        decided[p] = None;
                        // Replace the program to simulate a re-run with a
                        // DIFFERENT nominal proposal (pid + 10).
                        programs[p] = maker(p, Value::Int(p as i64 + 10));
                    }
                    rc_runtime::sched::Action::CrashAll => {}
                    rc_runtime::sched::Action::Branch(..) => {
                        panic!("schedulers never emit Branch")
                    }
                }
                assert!(steps < 100_000);
            }
            // Agreement over every output of every run.
            if let Some(first) = all_outputs.first() {
                assert!(
                    all_outputs.iter().all(|v| v == first),
                    "seed {seed}: outputs {all_outputs:?}"
                );
            }
            // Validity: the decision must be a FIRST-run proposal (the
            // masking registers pin inputs to first proposals) or — if the
            // crash replaced a program before it ever wrote its mask — a
            // replacement proposal. Either way it is one of the proposals
            // ever made.
            let valid: Vec<Value> = (0..3)
                .flat_map(|p| [Value::Int(p as i64), Value::Int(p as i64 + 10)])
                .collect();
            for v in &all_outputs {
                assert!(valid.contains(v), "seed {seed}: invalid output {v}");
            }
        }
    }

    #[test]
    fn unmasked_factory_for_objects_still_works() {
        let factory = consensus_object_rc_factory(8);
        let mut mem = Memory::new();
        let maker = factory.alloc_instance(&mut mem);
        let mut programs: Vec<Box<dyn Program>> = (0..4)
            .map(|pid| maker(pid, Value::Int(pid as i64)))
            .collect();
        let mut sched = RandomScheduler::from_seed(3);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        let inputs: Vec<Value> = (0..4).map(Value::Int).collect();
        check_consensus_execution(&exec, &inputs).expect("consensus object RC");
    }
}
