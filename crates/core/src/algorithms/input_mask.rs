//! The input-masking transformation from the paper's introduction.
//!
//! "Like Golab, we assume a process's input value does not change, even
//! across multiple runs, but this is not a crucial assumption. If an RC
//! algorithm requires this precondition, it can be transformed into one
//! that does not using a register for each process's input. When a process
//! begins a run, it reads this register and, if it has not yet been
//! written, the process writes its input value. It then uses the value in
//! the register as its input, ensuring that all of the process's runs of
//! the original algorithm use the same input value." — Section 1.
//!
//! [`InputMasked`] implements exactly that wrapper. Tests simulate an
//! adversarial environment that *changes* the process's nominal input
//! between runs ([`InputMasked::set_next_input`]) and verify the inner
//! algorithm still sees a single stable value.

use rc_runtime::{Addr, MemOps, Memory, Program, Rebinding, Step};
use rc_spec::Value;
use std::fmt;
use std::sync::Arc;

/// Builds the wrapped program once the masked input is known.
pub type InnerMaker = Arc<dyn Fn(Value) -> Box<dyn Program> + Send + Sync>;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Pc {
    /// Read the input register.
    ReadReg,
    /// It was ⊥: write our current nominal input.
    WriteReg,
    /// Run the inner algorithm with the masked input.
    Run,
}

/// Wraps an RC routine so that every run uses the same input value, even
/// if the process's nominal input changes between runs.
pub struct InputMasked {
    reg: Addr,
    nominal_input: Value,
    make_inner: InnerMaker,
    pc: Pc,
    masked: Option<Value>,
    inner: Option<Box<dyn Program>>,
}

impl InputMasked {
    /// Creates the wrapper. `reg` must be a register dedicated to this
    /// process, initialized to ⊥ and written by no one else.
    pub fn new(reg: Addr, nominal_input: Value, make_inner: InnerMaker) -> Self {
        InputMasked {
            reg,
            nominal_input,
            make_inner,
            pc: Pc::ReadReg,
            masked: None,
            inner: None,
        }
    }

    /// Allocates the per-process input register (initially ⊥).
    pub fn alloc_register(mem: &mut Memory) -> Addr {
        mem.alloc_register(Value::Bottom)
    }

    /// Simulates an environment whose nominal input differs on the next
    /// run (the situation the transformation defends against). Has no
    /// effect on the current run.
    pub fn set_next_input(&mut self, input: Value) {
        self.nominal_input = input;
    }

    /// The input value the inner algorithm actually sees, if fixed yet.
    pub fn masked_input(&self) -> Option<&Value> {
        self.masked.as_ref()
    }
}

impl fmt::Debug for InputMasked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InputMasked")
            .field("pc", &self.pc)
            .field("nominal_input", &self.nominal_input)
            .field("masked", &self.masked)
            .finish_non_exhaustive()
    }
}

impl Program for InputMasked {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc {
            Pc::ReadReg => {
                let v = mem.read_register(self.reg);
                if v.is_bottom() {
                    self.pc = Pc::WriteReg;
                } else {
                    self.masked = Some(v);
                    self.pc = Pc::Run;
                }
                Step::Running
            }
            Pc::WriteReg => {
                mem.write_register(self.reg, self.nominal_input.clone());
                self.masked = Some(self.nominal_input.clone());
                self.pc = Pc::Run;
                Step::Running
            }
            Pc::Run => {
                let masked = self.masked.clone().expect("set before Run");
                let inner = self.inner.get_or_insert_with(|| (self.make_inner)(masked));
                inner.step(mem)
            }
        }
    }

    fn on_crash(&mut self) {
        self.pc = Pc::ReadReg;
        self.masked = None;
        self.inner = None;
    }

    fn state_key(&self) -> Value {
        let pc = match self.pc {
            Pc::ReadReg => 0,
            Pc::WriteReg => 1,
            Pc::Run => 2,
        };
        // The nominal input is part of the key even though it is stable
        // per process: it stays behaviourally live across crashes (a
        // recovery run whose register is still ⊥ writes it), so equal
        // keys across *different* processes must imply equal nominal
        // inputs — the honest-key contract the model checker's
        // process-symmetry reduction validates orbit declarations with.
        Value::Tuple(vec![
            Value::Int(pc),
            self.nominal_input.clone(),
            self.masked.clone().unwrap_or(Value::Bottom),
            self.inner.as_ref().map_or(Value::Bottom, |p| p.state_key()),
        ])
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(InputMasked {
            reg: self.reg,
            nominal_input: self.nominal_input.clone(),
            make_inner: self.make_inner.clone(),
            pc: self.pc.clone(),
            masked: self.masked.clone(),
            inner: self.inner.clone(),
        })
    }

    fn rebind(&mut self, map: &Rebinding) {
        self.reg = map.lookup(self.reg);
        if let Some(inner) = &mut self.inner {
            inner.rebind(map);
        }
    }

    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        // The wrapper touches its mask register plus everything the
        // inner algorithm touches; probe a fresh inner when none is
        // materialized yet (the reference set of the inner program does
        // not depend on the masked input).
        let inner_refs = match &self.inner {
            Some(inner) => inner.referenced_cells()?,
            None => (self.make_inner)(self.nominal_input.clone()).referenced_cells()?,
        };
        let mut cells = vec![self.reg];
        cells.extend(inner_refs);
        Some(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_runtime::sched::{Action, ScriptedScheduler};
    use rc_runtime::{run, RunOptions};

    /// Inner program that simply decides its input after one register
    /// write (so it takes more than one step).
    #[derive(Clone, Debug)]
    struct Echo {
        scratch: Addr,
        input: Value,
        pc: u8,
    }
    impl Program for Echo {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            if self.pc == 0 {
                mem.write_register(self.scratch, self.input.clone());
                self.pc = 1;
                Step::Running
            } else {
                Step::Decided(self.input.clone())
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn masks_changing_inputs_across_runs() {
        let mut mem = Memory::new();
        let reg = InputMasked::alloc_register(&mut mem);
        let scratch = mem.alloc_register(Value::Bottom);
        let make_inner: InnerMaker = Arc::new(move |input| {
            Box::new(Echo {
                scratch,
                input,
                pc: 0,
            }) as Box<dyn Program>
        });
        let mut p = InputMasked::new(reg, Value::Int(1), make_inner);

        // Run 1: read ⊥, write 1, start inner — then crash.
        assert_eq!(p.step(&mut mem), Step::Running); // read reg (⊥)
        assert_eq!(p.step(&mut mem), Step::Running); // write reg ← 1
        assert_eq!(p.masked_input(), Some(&Value::Int(1)));
        p.on_crash();
        // The environment changes the nominal input between runs.
        p.set_next_input(Value::Int(9));
        // Run 2: the register already holds 1; the inner algorithm must
        // see 1, not 9.
        assert_eq!(p.step(&mut mem), Step::Running); // read reg (1)
        assert_eq!(p.masked_input(), Some(&Value::Int(1)));
        assert_eq!(p.step(&mut mem), Step::Running); // inner write
        assert_eq!(p.step(&mut mem), Step::Decided(Value::Int(1)));
    }

    #[test]
    fn first_run_uses_nominal_input() {
        let mut mem = Memory::new();
        let reg = InputMasked::alloc_register(&mut mem);
        let scratch = mem.alloc_register(Value::Bottom);
        let make_inner: InnerMaker = Arc::new(move |input| {
            Box::new(Echo {
                scratch,
                input,
                pc: 0,
            }) as Box<dyn Program>
        });
        let mut programs: Vec<Box<dyn Program>> =
            vec![Box::new(InputMasked::new(reg, Value::Int(7), make_inner))];
        let mut sched = ScriptedScheduler::then_finish([Action::Step(0)]);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        assert_eq!(exec.outputs[0], vec![Value::Int(7)]);
    }
}
