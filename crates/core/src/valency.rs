//! The valency machinery behind the paper's impossibility proofs
//! (Theorem 14, Appendix H / Fig. 8), made executable.
//!
//! A finite execution is **v-valent** if every completion decides `v`, and
//! **multivalent** if different completions decide differently; a
//! **critical** execution is a multivalent one whose every one-step
//! extension is univalent (the paper constructs one inductively at the
//! start of both proofs). This module computes valence sets exactly over
//! *crash-free* completions — a simplification of the paper's `E_A`
//! execution class (which also contains budgeted crashes of `p_1`); the
//! crash moves of the Fig. 8 argument are then applied *at* the critical
//! execution by the caller, which is exactly how the tests and E7 use it:
//!
//! 1. [`find_critical`] locates a critical execution of the 2-process
//!    stack protocol;
//! 2. the two one-step extensions commit to different values;
//! 3. applying both poised operations in either order, then crashing
//!    `p_1`, leaves states that `p_1`'s recovery run cannot distinguish
//!    (Fig. 8(a): the pops commute) — so `p_1` decides the same value in
//!    both branches, contradicting the committed valencies. For a
//!    *correct* algorithm this is the paper's contradiction; for an actual
//!    protocol it materializes as an agreement violation, which the tests
//!    exhibit.

use rc_runtime::{Memory, Pid, Program, Step};
use rc_spec::Value;
use std::collections::{BTreeSet, HashMap};

/// A system snapshot the valency analysis walks over.
#[derive(Clone)]
pub struct System {
    /// The shared memory.
    pub mem: Memory,
    /// The per-process programs.
    pub programs: Vec<Box<dyn Program>>,
    /// Which processes' current runs have decided.
    pub decided: Vec<Option<Value>>,
}

impl System {
    /// Wraps a freshly-built system.
    pub fn new(mem: Memory, programs: Vec<Box<dyn Program>>) -> Self {
        let n = programs.len();
        System {
            mem,
            programs,
            decided: vec![None; n],
        }
    }

    /// Steps process `p`, recording its decision if the run returns.
    ///
    /// # Panics
    ///
    /// Panics if `p` already decided (the valency tree never steps decided
    /// processes).
    pub fn step(&mut self, p: Pid) {
        assert!(self.decided[p].is_none(), "stepping a decided process");
        if let Step::Decided(v) = self.programs[p].step(&mut self.mem) {
            self.decided[p] = Some(v);
        }
    }

    /// Crashes process `p` (volatile state wiped, shared memory kept).
    pub fn crash(&mut self, p: Pid) {
        self.programs[p].on_crash();
        self.decided[p] = None;
    }

    /// Runs process `p` alone until its current run decides, returning the
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `p` takes more than `max_steps` steps without deciding.
    pub fn run_solo(&mut self, p: Pid, max_steps: usize) -> Value {
        for _ in 0..max_steps {
            if let Some(v) = &self.decided[p] {
                return v.clone();
            }
            self.step(p);
        }
        self.decided[p]
            .clone()
            .unwrap_or_else(|| panic!("p{p} did not decide within {max_steps} steps"))
    }

    /// The first decision value, if any (executions of correct consensus
    /// algorithms decide a single value; for broken protocols this is the
    /// value the execution is committed to by its earliest decision).
    pub fn first_decision(&self) -> Option<Value> {
        self.decided.iter().flatten().next().cloned()
    }

    fn key(&self) -> (Vec<Value>, Vec<Value>, Vec<Option<Value>>) {
        (
            self.mem.state_key(),
            self.programs.iter().map(|p| p.state_key()).collect(),
            self.decided.clone(),
        )
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("decided", &self.decided)
            .finish_non_exhaustive()
    }
}

/// Computes the exact set of first-decision values over all crash-free
/// completions of `sys` (memoized over system states).
pub fn valence(sys: &System) -> BTreeSet<Value> {
    /// Memo key: shared-memory contents, program states, decided values.
    type SystemKey = (Vec<Value>, Vec<Value>, Vec<Option<Value>>);

    fn rec(sys: &System, memo: &mut HashMap<SystemKey, BTreeSet<Value>>) -> BTreeSet<Value> {
        if let Some(v) = sys.first_decision() {
            return std::iter::once(v).collect();
        }
        let key = sys.key();
        if let Some(cached) = memo.get(&key) {
            return cached.clone();
        }
        let mut values = BTreeSet::new();
        for p in 0..sys.programs.len() {
            if sys.decided[p].is_some() {
                continue;
            }
            let mut next = sys.clone();
            next.step(p);
            values.extend(rec(&next, memo));
        }
        memo.insert(key, values.clone());
        values
    }
    rec(sys, &mut HashMap::new())
}

/// A critical execution: multivalent, with every enabled one-step
/// extension univalent.
#[derive(Clone, Debug)]
pub struct Critical {
    /// The schedule (process ids, in order) reaching the critical
    /// execution from the initial system.
    pub schedule: Vec<Pid>,
    /// For each enabled process, the single value its next step commits
    /// the execution to.
    pub commitments: Vec<(Pid, Value)>,
}

/// Finds a critical execution of the system produced by `factory`, if one
/// exists within the (finite) crash-free execution tree.
///
/// Mirrors the paper's construction: start from the initial (multivalent)
/// execution and extend while staying multivalent; the first execution
/// whose extensions are all univalent is critical.
pub fn find_critical(factory: &dyn Fn() -> System) -> Option<Critical> {
    let sys = factory();
    if valence(&sys).len() < 2 {
        return None;
    }
    let mut schedule = Vec::new();
    let mut current = sys;
    loop {
        // Classify every enabled extension.
        let mut commitments = Vec::new();
        let mut multivalent_child: Option<(Pid, System)> = None;
        for p in 0..current.programs.len() {
            if current.decided[p].is_some() {
                continue;
            }
            let mut next = current.clone();
            next.step(p);
            let vals = valence(&next);
            if vals.len() == 1 {
                commitments.push((p, vals.into_iter().next().expect("single")));
            } else if multivalent_child.is_none() {
                multivalent_child = Some((p, next));
            }
        }
        match multivalent_child {
            None => {
                return Some(Critical {
                    schedule,
                    commitments,
                });
            }
            Some((p, next)) => {
                schedule.push(p);
                current = next;
                // Termination: the crash-free tree is finite (wait-free
                // programs), so this loop reaches a critical node.
            }
        }
    }
}

/// Replays a step schedule from a fresh system.
pub fn replay(factory: &dyn Fn() -> System, schedule: &[Pid]) -> System {
    let mut sys = factory();
    for &p in schedule {
        sys.step(p);
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_runtime::{Addr, MemOps};
    use rc_spec::types::ConsensusObject;
    use std::sync::Arc;

    /// Propose-input program over an atomic consensus object.
    #[derive(Clone, Debug)]
    struct Propose {
        obj: Addr,
        input: i64,
    }
    impl Program for Propose {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            let v = mem.apply(
                self.obj,
                &rc_spec::Operation::new("propose", Value::Int(self.input)),
            );
            Step::Decided(v)
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn consensus_system() -> System {
        let mut mem = Memory::new();
        let obj = mem.alloc_object(Arc::new(ConsensusObject::new(4)), Value::Bottom);
        let programs: Vec<Box<dyn Program>> = (0..2)
            .map(|i| Box::new(Propose { obj, input: i }) as Box<dyn Program>)
            .collect();
        System::new(mem, programs)
    }

    #[test]
    fn initial_execution_is_multivalent() {
        let sys = consensus_system();
        let vals = valence(&sys);
        assert_eq!(vals.len(), 2, "either input can win: {vals:?}");
    }

    #[test]
    fn consensus_object_critical_execution_is_empty() {
        // For an atomic consensus object, the empty execution is already
        // critical: each process's first step decides the outcome.
        let critical = find_critical(&consensus_system).expect("critical exists");
        assert!(critical.schedule.is_empty());
        assert_eq!(critical.commitments.len(), 2);
        let values: BTreeSet<&Value> = critical.commitments.iter().map(|(_, v)| v).collect();
        assert_eq!(values.len(), 2, "the two steps commit to different values");
    }

    #[test]
    fn valence_after_commitment_is_singleton() {
        let critical = find_critical(&consensus_system).expect("critical");
        for (p, v) in &critical.commitments {
            let mut sys = replay(&consensus_system, &critical.schedule);
            sys.step(*p);
            let vals = valence(&sys);
            assert_eq!(vals.len(), 1);
            assert_eq!(vals.into_iter().next().expect("single"), *v);
        }
    }

    #[test]
    fn run_solo_decides() {
        let mut sys = consensus_system();
        let v = sys.run_solo(0, 10);
        assert_eq!(v, Value::Int(0));
        // p1 now decides the same value.
        let v1 = sys.run_solo(1, 10);
        assert_eq!(v1, Value::Int(0));
    }
}
