//! The *n*-discerning property (Definition 2, from Ruppert 2000) and its
//! decision procedure.
//!
//! For a team `X` and a process index `j`, the set `R_{X,j}` contains every
//! pair `(r, q)` such that some sequence of *distinct* processes
//! `i_1, …, i_α` **including `j`**, with `p_{i_1} ∈ X`, applied to an object
//! in state `q0`, makes `op_j` return `r` and leaves the object in state
//! `q`. A type is **n-discerning** if an assignment exists with
//! `R_{A,j} ∩ R_{B,j} = ∅` for every `j`: a process that knows its own
//! response `r` and later reads the state `q` can always tell which team
//! updated the object first.
//!
//! Theorem 3 (Ruppert): a deterministic *readable* type solves `n`-process
//! wait-free consensus **iff** it is *n*-discerning. The
//! [`DiscerningWitness`] produced here carries the per-process classifier
//! `(r, q) ↦ team` that the Theorem-3 consensus algorithm
//! (`rc-core::algorithms::discerning_consensus`) evaluates at run time.

use crate::recording::multisets;
use crate::witness::{Assignment, Team};
use rc_spec::{ObjectType, Value};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// The derived data of a successful Definition-2 check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscerningWitness {
    /// The witnessing assignment.
    pub assignment: Assignment,
    /// `classifiers[j]` maps `(r, q)` — the response of `op_j` and a state
    /// read later — to the team that updated the object first.
    classifiers: Vec<HashMap<(Value, Value), Team>>,
}

impl DiscerningWitness {
    /// Number of processes `n`.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the witness covers no processes (never true).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Which team updated the object first, given that process `j`'s update
    /// returned `r` and a later read of the object returned state `q`.
    ///
    /// Returns `None` if the pair can arise from no execution in which each
    /// process applies its operation at most once — the Theorem-3 algorithm
    /// never encounters that case.
    pub fn classify(&self, j: usize, response: &Value, state: &Value) -> Option<Team> {
        self.classifiers
            .get(j)
            .and_then(|m| m.get(&(response.clone(), state.clone())))
            .copied()
    }

    /// Whether rows `j` and `k` carry identical classifiers — together
    /// with equal teams, operations and inputs this makes the two
    /// processes interchangeable (used by the symmetric system builders
    /// to declare model-checker orbits).
    pub fn same_classifier(&self, j: usize, k: usize) -> bool {
        self.classifiers.get(j) == self.classifiers.get(k)
    }

    /// The number of classified `(r, q)` pairs for process `j` (diagnostic).
    pub fn classifier_size(&self, j: usize) -> usize {
        self.classifiers.get(j).map_or(0, HashMap::len)
    }
}

/// Why an assignment fails Definition 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscerningViolation {
    /// The process whose response/state pair is ambiguous.
    pub process: usize,
    /// The response of `op_j` in both executions.
    pub response: Value,
    /// The final state in both executions.
    pub state: Value,
}

/// Computes `R_{X,j}` (Definition 2's notation) for `team = X` and process
/// index `j` (0-based).
///
/// The breadth-first search runs over triples *(object state, set of used
/// processes, response of `op_j` if already applied)*; a pair `(r, q)` is
/// collected at every node whose used-set contains `j`.
pub fn r_set(
    ty: &dyn ObjectType,
    assignment: &Assignment,
    team: Team,
    j: usize,
) -> BTreeSet<(Value, Value)> {
    let n = assignment.len();
    assert!(n <= 31, "r_set supports at most 31 processes");
    assert!(j < n, "process index out of range");
    let mut pairs = BTreeSet::new();
    let mut seen: HashSet<(Value, u32, Option<Value>)> = HashSet::new();
    let mut frontier = VecDeque::new();
    for i in 0..n {
        if assignment.teams[i] == team {
            let t = ty.apply(&assignment.q0, &assignment.ops[i]);
            let resp_j = (i == j).then(|| t.response.clone());
            let node = (t.next, 1u32 << i, resp_j);
            if seen.insert(node.clone()) {
                frontier.push_back(node);
            }
        }
    }
    while let Some((state, used, resp_j)) = frontier.pop_front() {
        if let Some(r) = &resp_j {
            pairs.insert((r.clone(), state.clone()));
        }
        for k in 0..n {
            if used & (1 << k) == 0 {
                let t = ty.apply(&state, &assignment.ops[k]);
                let resp_j = if k == j {
                    Some(t.response.clone())
                } else {
                    resp_j.clone()
                };
                let node = (t.next, used | (1 << k), resp_j);
                if seen.insert(node.clone()) {
                    frontier.push_back(node);
                }
            }
        }
    }
    pairs
}

/// Checks whether `assignment` satisfies Definition 2 for `ty`.
///
/// # Errors
///
/// Returns the first ambiguous `(process, response, state)` triple found.
pub fn check_discerning(
    ty: &dyn ObjectType,
    assignment: &Assignment,
) -> Result<DiscerningWitness, DiscerningViolation> {
    let n = assignment.len();
    let mut classifiers = Vec::with_capacity(n);
    for j in 0..n {
        let r_a = r_set(ty, assignment, Team::A, j);
        let r_b = r_set(ty, assignment, Team::B, j);
        if let Some((response, state)) = r_a.intersection(&r_b).next() {
            return Err(DiscerningViolation {
                process: j,
                response: response.clone(),
                state: state.clone(),
            });
        }
        let mut map = HashMap::with_capacity(r_a.len() + r_b.len());
        for (r, q) in r_a {
            map.insert((r, q), Team::A);
        }
        for (r, q) in r_b {
            map.insert((r, q), Team::B);
        }
        classifiers.push(map);
    }
    Ok(DiscerningWitness {
        assignment: assignment.clone(),
        classifiers,
    })
}

/// Searches for an *n*-discerning witness for `ty` (exhaustive over
/// candidate initial states, team sizes, and per-team operation multisets —
/// see [`find_recording_witness`](crate::find_recording_witness) for why
/// multisets suffice).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn find_discerning_witness(ty: &dyn ObjectType, n: usize) -> Option<DiscerningWitness> {
    assert!(n >= 2, "n-discerning is defined for n ≥ 2");
    let ops = ty.operations();
    let m = ops.len();
    let mut q0s: Vec<Value> = ty.initial_states();
    q0s.dedup();
    for q0 in &q0s {
        for size_a in 1..=n / 2 {
            let size_b = n - size_a;
            let ms_a = multisets(m, size_a);
            let ms_b = multisets(m, size_b);
            for a_ops in &ms_a {
                for b_ops in &ms_b {
                    if size_a == size_b && b_ops < a_ops {
                        continue;
                    }
                    let assignment = Assignment::split(
                        q0.clone(),
                        a_ops.iter().map(|&i| ops[i].clone()).collect(),
                        b_ops.iter().map(|&i| ops[i].clone()).collect(),
                    );
                    if let Ok(w) = check_discerning(ty, &assignment) {
                        return Some(w);
                    }
                }
            }
        }
    }
    None
}

/// Whether `ty` is *n*-discerning (Definition 2).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn is_discerning(ty: &dyn ObjectType, n: usize) -> bool {
    find_discerning_witness(ty, n).is_some()
}

/// The largest `k` in `2..=cap` such that `ty` is `k`-discerning, or `None`
/// if `ty` is not even 2-discerning.
///
/// Discerning is downward closed (drop a process from the larger team, as
/// in Observation 6), so the scan stops at the first failure.
pub fn max_discerning(ty: &dyn ObjectType, cap: usize) -> Option<usize> {
    let mut best = None;
    for k in 2..=cap {
        if is_discerning(ty, k) {
            best = Some(k);
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_spec::types::{
        Cas, Counter, FetchAdd, MaxRegister, Queue, Register, Sn, Stack, TestAndSet, Tn,
    };
    use rc_spec::Operation;

    #[test]
    fn tas_is_2_discerning_with_classifier() {
        let tas = TestAndSet::new();
        let w = find_discerning_witness(&tas, 2).expect("TAS is 2-discerning");
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        // First mover saw false: whichever process saw `false` belongs to
        // the first team.
        let q_true = Value::Bool(true);
        let first = w
            .classify(0, &Value::Bool(false), &q_true)
            .expect("(false, true) must be classified for p0");
        let second = w
            .classify(0, &Value::Bool(true), &q_true)
            .expect("(true, true) must be classified for p0");
        assert_ne!(first, second);
        assert!(w.classifier_size(0) >= 2);
    }

    #[test]
    fn tas_is_not_3_discerning() {
        assert!(find_discerning_witness(&TestAndSet::new(), 3).is_none());
    }

    #[test]
    fn stack_discerning_saturates_despite_cons_2() {
        // The stack's transition structure is n-discerning for every n
        // (push-only executions record the first team at the bottom of the
        // stack), yet cons(stack) = 2 (Herlihy 1991): Theorem 3 converts
        // discerning witnesses into consensus algorithms only for READABLE
        // types, and the classic stack is not readable.
        use rc_spec::ObjectType;
        let stack = Stack::new(3, 2);
        assert!(!stack.is_readable());
        assert!(is_discerning(&stack, 2));
        assert!(is_discerning(&stack, 3));
        assert!(is_discerning(&stack, 4));
    }

    #[test]
    fn queue_discerning_saturates_despite_cons_2() {
        let queue = Queue::new(3, 2);
        assert!(is_discerning(&queue, 2));
        assert!(is_discerning(&queue, 3));
    }

    #[test]
    fn faa_and_swap_are_2_discerning() {
        assert!(is_discerning(&FetchAdd::new(8, &[1, 2]), 2));
        assert!(!is_discerning(&FetchAdd::new(8, &[1, 2]), 3));
    }

    #[test]
    fn register_counter_max_are_not_2_discerning() {
        assert!(!is_discerning(&Register::new(2), 2));
        assert!(!is_discerning(&Counter::new(4), 2));
        assert!(!is_discerning(&MaxRegister::new(3), 2));
    }

    #[test]
    fn tn_is_n_discerning_with_papers_witness() {
        // Proposition 19: q0 = (⊥,0,0), |A| = ⌊n/2⌋ with opA,
        // |B| = ⌈n/2⌉ with opB.
        for n in 4..=7 {
            let tn = Tn::new(n);
            let a = Assignment::split(
                Tn::forget_state(),
                vec![Tn::op_a(); n / 2],
                vec![Tn::op_b(); n.div_ceil(2)],
            );
            check_discerning(&tn, &a).expect("paper's witness must verify");
        }
    }

    #[test]
    fn tn_is_not_n_plus_1_discerning() {
        for n in 4..=6 {
            let tn = Tn::new(n);
            assert!(
                find_discerning_witness(&tn, n + 1).is_none(),
                "T_{n} must not be {}-discerning",
                n + 1
            );
        }
    }

    #[test]
    fn sn_is_n_but_not_n_plus_1_discerning() {
        // Proposition 21: cons(S_n) = n.
        for n in 2..=5 {
            let sn = Sn::new(n);
            assert!(is_discerning(&sn, n), "S_{n} must be {n}-discerning");
            assert!(
                !is_discerning(&sn, n + 1),
                "S_{n} must not be {}-discerning",
                n + 1
            );
        }
    }

    #[test]
    fn cas_discerns_many_processes() {
        assert!(is_discerning(&Cas::new(2), 4));
    }

    #[test]
    fn max_discerning_saturates_cap_for_stack() {
        assert_eq!(max_discerning(&Stack::new(3, 2), 4), Some(4));
    }

    #[test]
    fn violation_pinpoints_ambiguity() {
        // Two writes to a plain register: the second write's (r, q) pair is
        // identical no matter who went first.
        let reg = Register::new(2);
        let a = Assignment::split(
            Value::Bottom,
            vec![Operation::new("write", Value::Int(0))],
            vec![Operation::new("write", Value::Int(1))],
        );
        let v = check_discerning(&reg, &a).expect_err("register is not 2-discerning");
        assert!(v.process < 2);
    }

    #[test]
    fn r_set_for_tas_matches_hand_computation() {
        let tas = TestAndSet::new();
        let a = Assignment::split(
            Value::Bool(false),
            vec![Operation::nullary("tas")],
            vec![Operation::nullary("tas")],
        );
        // R_{A,0}: p0 first (r=false,q=true) or p0 first then p1
        // (r=false,q=true) → {(false,true)}.
        let r_a0 = r_set(&tas, &a, Team::A, 0);
        assert_eq!(r_a0.len(), 1);
        assert!(r_a0.contains(&(Value::Bool(false), Value::Bool(true))));
        // R_{B,0}: p1 first then p0: op_0 returns true → {(true,true)}.
        let r_b0 = r_set(&tas, &a, Team::B, 0);
        assert_eq!(r_b0.len(), 1);
        assert!(r_b0.contains(&(Value::Bool(true), Value::Bool(true))));
    }
}
