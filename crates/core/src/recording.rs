//! The *n*-recording property (Definition 4) and its decision procedure.
//!
//! Fix a deterministic type `T`, a state `q0`, a partition of `n` processes
//! into non-empty teams `A` and `B`, and operations `op_1, …, op_n`.
//! For a team `X`, the set `Q_X(q0, op_1, …, op_n)` contains every state `q`
//! reachable by applying the operations of *distinct* processes
//! `i_1, …, i_α` (in that order) with `p_{i_1} ∈ X`, starting from `q0`.
//!
//! `T` is **n-recording** (Definition 4) if such a choice exists with:
//!
//! 1. `Q_A ∩ Q_B = ∅`,
//! 2. `q0 ∉ Q_A` or `|B| = 1`,
//! 3. `q0 ∉ Q_B` or `|A| = 1`.
//!
//! Because the process index sets are finite and the type is deterministic,
//! `Q_X` is computed exactly by a breadth-first search over pairs
//! *(object state, set of used processes)* — there are at most `|S| · 2^n`
//! of them. Witness search enumerates candidate `q0`s, team sizes, and
//! *multisets* of operations per team (processes on the same team are
//! interchangeable in the definition, so enumerating multisets instead of
//! functions loses nothing and is exponentially cheaper).

use crate::witness::{Assignment, Team};
use rc_spec::{ObjectType, Value};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// The derived data of a successful Definition-4 check: the assignment plus
/// the exact sets `Q_A` and `Q_B`.
///
/// The Fig. 2 algorithm consumes this directly: its run-time tests
/// "`q ∈ Q_A`" (paper lines 11 and 26) are membership queries on
/// [`RecordingWitness::q_a`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordingWitness {
    /// The witnessing assignment.
    pub assignment: Assignment,
    /// `Q_A(q0, op_1, …, op_n)`.
    pub q_a: BTreeSet<Value>,
    /// `Q_B(q0, op_1, …, op_n)`.
    pub q_b: BTreeSet<Value>,
}

impl RecordingWitness {
    /// Number of processes `n`.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the witness covers no processes (never true; see
    /// [`Assignment::is_empty`]).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Returns an equivalent witness in the normal form assumed by the
    /// Fig. 2 code: `q0 ∉ Q_B`. (Condition 1 guarantees `q0` is in at most
    /// one of the two sets; if it is in `Q_B`, the team names are swapped.)
    pub fn normalized(&self) -> RecordingWitness {
        if self.q_b.contains(&self.assignment.q0) {
            RecordingWitness {
                assignment: self.assignment.swap_teams(),
                q_a: self.q_b.clone(),
                q_b: self.q_a.clone(),
            }
        } else {
            self.clone()
        }
    }
}

/// Why an assignment fails Definition 4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordingViolation {
    /// Condition 1 fails: the state is in both `Q_A` and `Q_B`.
    Overlap {
        /// A state in `Q_A ∩ Q_B`.
        state: Value,
    },
    /// Condition 2 fails: `q0 ∈ Q_A` and `|B| > 1`.
    ReturnsToInitialViaA,
    /// Condition 3 fails: `q0 ∈ Q_B` and `|A| > 1`.
    ReturnsToInitialViaB,
}

/// Computes `Q_X(q0, op_1, …, op_n)` for `team = X` (Definition 4's
/// notation, Section 3 of the paper).
///
/// # Example
///
/// ```
/// use rc_core::{q_set, Assignment, Team};
/// use rc_spec::types::{Sn, TEAM_A};
/// use rc_spec::Value;
///
/// let s3 = Sn::new(3);
/// let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(), Sn::op_b()]);
/// let q_a = q_set(&s3, &a, Team::A);
/// // Every state reached by a team-A-first execution has winner = A.
/// assert!(q_a.iter().all(|q| q.as_tuple().unwrap()[0] == Value::sym(TEAM_A)));
/// ```
pub fn q_set(ty: &dyn ObjectType, assignment: &Assignment, team: Team) -> BTreeSet<Value> {
    let n = assignment.len();
    assert!(n <= 31, "q_set supports at most 31 processes");
    let mut states = BTreeSet::new();
    let mut seen: HashSet<(Value, u32)> = HashSet::new();
    let mut frontier = VecDeque::new();
    for i in 0..n {
        if assignment.teams[i] == team {
            let t = ty.apply(&assignment.q0, &assignment.ops[i]);
            let node = (t.next, 1u32 << i);
            if seen.insert(node.clone()) {
                states.insert(node.0.clone());
                frontier.push_back(node);
            }
        }
    }
    while let Some((state, used)) = frontier.pop_front() {
        for j in 0..n {
            if used & (1 << j) == 0 {
                let t = ty.apply(&state, &assignment.ops[j]);
                let node = (t.next, used | (1 << j));
                if seen.insert(node.clone()) {
                    states.insert(node.0.clone());
                    frontier.push_back(node);
                }
            }
        }
    }
    states
}

/// Checks whether `assignment` satisfies Definition 4 for `ty`.
///
/// # Errors
///
/// Returns the first [`RecordingViolation`] encountered (conditions checked
/// in the paper's order).
pub fn check_recording(
    ty: &dyn ObjectType,
    assignment: &Assignment,
) -> Result<RecordingWitness, RecordingViolation> {
    let q_a = q_set(ty, assignment, Team::A);
    let q_b = q_set(ty, assignment, Team::B);
    if let Some(state) = q_a.intersection(&q_b).next() {
        return Err(RecordingViolation::Overlap {
            state: state.clone(),
        });
    }
    if q_a.contains(&assignment.q0) && assignment.team_size(Team::B) != 1 {
        return Err(RecordingViolation::ReturnsToInitialViaA);
    }
    if q_b.contains(&assignment.q0) && assignment.team_size(Team::A) != 1 {
        return Err(RecordingViolation::ReturnsToInitialViaB);
    }
    Ok(RecordingWitness {
        assignment: assignment.clone(),
        q_a,
        q_b,
    })
}

/// Enumerates all non-decreasing index sequences of length `k` over
/// `0..m` — i.e. all multisets of size `k` from `m` operations.
pub(crate) fn multisets(m: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(m: usize, k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..m {
            cur.push(i);
            rec(m, k, i, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(m, k, 0, &mut Vec::new(), &mut out);
    out
}

/// Searches for an *n*-recording witness for `ty`.
///
/// The search is exhaustive over: candidate initial states
/// ([`ObjectType::initial_states`]), team-A sizes `1..=n/2` (team names are
/// symmetric), and multisets of operations per team (processes within a
/// team are interchangeable). Returns the first witness found, or `None`
/// if the type is **not** *n*-recording.
///
/// # Panics
///
/// Panics if `n < 2` (Definition 4 requires two non-empty teams).
pub fn find_recording_witness(ty: &dyn ObjectType, n: usize) -> Option<RecordingWitness> {
    assert!(n >= 2, "n-recording is defined for n ≥ 2");
    let ops = ty.operations();
    let m = ops.len();
    let mut q0s: Vec<Value> = ty.initial_states();
    q0s.dedup();
    for q0 in &q0s {
        for size_a in 1..=n / 2 {
            let size_b = n - size_a;
            let ms_a = multisets(m, size_a);
            let ms_b = multisets(m, size_b);
            for a_ops in &ms_a {
                for b_ops in &ms_b {
                    // When the teams have equal size, (A, B) and (B, A) are
                    // symmetric; skip the lexicographically larger order.
                    if size_a == size_b && b_ops < a_ops {
                        continue;
                    }
                    let assignment = Assignment::split(
                        q0.clone(),
                        a_ops.iter().map(|&i| ops[i].clone()).collect(),
                        b_ops.iter().map(|&i| ops[i].clone()).collect(),
                    );
                    if let Ok(w) = check_recording(ty, &assignment) {
                        return Some(w);
                    }
                }
            }
        }
    }
    None
}

/// Whether `ty` is *n*-recording (Definition 4).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn is_recording(ty: &dyn ObjectType, n: usize) -> bool {
    find_recording_witness(ty, n).is_some()
}

/// The largest `k` in `2..=cap` such that `ty` is `k`-recording, or `None`
/// if `ty` is not even 2-recording.
///
/// By Observation 6 the property is downward closed for `k ≥ 3`, so the
/// scan stops at the first failure. (The proptest suites verify the
/// observation independently, without this shortcut.)
pub fn max_recording(ty: &dyn ObjectType, cap: usize) -> Option<usize> {
    let mut best = None;
    for k in 2..=cap {
        if is_recording(ty, k) {
            best = Some(k);
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_spec::types::{Cas, FetchAdd, Register, Sn, Stack, StickyRegister, TestAndSet, Tn};
    use rc_spec::Operation;

    #[test]
    fn multiset_counts() {
        // C(k + m − 1, m − 1): m = 3 ops, k = 2 slots → 6 multisets.
        assert_eq!(multisets(3, 2).len(), 6);
        assert_eq!(multisets(2, 4).len(), 5);
        assert_eq!(multisets(1, 3), vec![vec![0, 0, 0]]);
    }

    #[test]
    fn sn_is_n_recording_with_papers_witness() {
        // Proposition 21: q0 = (B, 0), A = {p1} with opA, B = rest with opB.
        for n in 2..=6 {
            let sn = Sn::new(n);
            let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]);
            let w = check_recording(&sn, &a).expect("paper's witness must verify");
            // Q_A = {(A, row)}, Q_B = {(B, row)} as computed in the proof.
            assert_eq!(w.q_a.len(), n);
            assert_eq!(w.q_b.len(), n);
        }
    }

    #[test]
    fn sn_is_not_n_plus_1_recording() {
        for n in 2..=5 {
            let sn = Sn::new(n);
            assert!(
                find_recording_witness(&sn, n + 1).is_none(),
                "S_{n} must not be {}-recording",
                n + 1
            );
        }
    }

    #[test]
    fn sn_max_recording_is_n() {
        for n in 2..=5 {
            assert_eq!(max_recording(&Sn::new(n), n + 2), Some(n));
        }
    }

    #[test]
    fn tn_is_not_n_minus_1_recording() {
        // Proposition 19.
        for n in 4..=7 {
            let tn = Tn::new(n);
            assert!(
                find_recording_witness(&tn, n - 1).is_none(),
                "T_{n} must not be {}-recording",
                n - 1
            );
        }
    }

    #[test]
    fn tn_is_n_minus_2_recording() {
        // Theorem 16 (n-discerning ⇒ (n−2)-recording) applied to T_n.
        for n in 4..=7 {
            let tn = Tn::new(n);
            assert!(
                find_recording_witness(&tn, n - 2).is_some(),
                "T_{n} must be {}-recording",
                n - 2
            );
        }
    }

    #[test]
    fn cas_and_sticky_record_at_high_levels() {
        let cas = Cas::new(2);
        assert!(is_recording(&cas, 6));
        let sticky = StickyRegister::new(2);
        assert!(is_recording(&sticky, 6));
    }

    #[test]
    fn weak_types_are_not_2_recording() {
        assert!(find_recording_witness(&Register::new(2), 2).is_none());
        assert!(find_recording_witness(&TestAndSet::new(), 2).is_none());
        assert!(find_recording_witness(&FetchAdd::new(8, &[1, 2]), 2).is_none());
    }

    #[test]
    fn stack_records_at_every_level_but_is_not_readable() {
        // Subtle and important: Definition 4 does not mention reads, and
        // the classic stack satisfies it at every level — in a push-only
        // execution the BOTTOM element permanently records the first
        // team. The paper's rcons(stack) = 1 (Appendix H) is consistent
        // because Theorem 8 turns n-recording into an RC algorithm only
        // for READABLE types, and the stack's record can be consumed only
        // destructively (by popping), which a crash can then not replay.
        use rc_spec::ObjectType;
        let stack = Stack::new(3, 2);
        assert!(!stack.is_readable());
        for n in 2..=4 {
            assert!(is_recording(&stack, n), "stack must be {n}-recording");
        }
        // A push-only witness: bottoms differ between the teams.
        let a = Assignment::split(
            Value::empty_list(),
            vec![Operation::new("push", Value::Int(0))],
            vec![Operation::new("push", Value::Int(1)); 2],
        );
        let w = check_recording(&stack, &a).expect("push-only witness verifies");
        for q in &w.q_a {
            assert_eq!(q.as_list().and_then(|l| l.first()), Some(&Value::Int(0)));
        }
        for q in &w.q_b {
            assert_eq!(q.as_list().and_then(|l| l.first()), Some(&Value::Int(1)));
        }
    }

    #[test]
    fn violation_reports_overlap_state() {
        let tas = TestAndSet::new();
        let a = Assignment::split(
            Value::Bool(false),
            vec![Operation::nullary("tas")],
            vec![Operation::nullary("tas")],
        );
        match check_recording(&tas, &a) {
            Err(RecordingViolation::Overlap { state }) => {
                assert_eq!(state, Value::Bool(true));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn normalized_witness_has_q0_outside_q_b() {
        // The paper's S_2 witness has q0 = (B, 0) ∈ Q_B (the sequence
        // opB, opA returns to (B, 0)), which is legal because |A| = 1
        // (condition 3). The Fig. 2 code however assumes q0 ∉ Q_B, so
        // normalization must swap the teams.
        let s2 = Sn::new(2);
        let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b()]);
        let w = check_recording(&s2, &a).expect("witness");
        assert!(
            w.q_b.contains(&w.assignment.q0),
            "opB then opA returns S_2 to (B, 0)"
        );
        let norm = w.normalized();
        assert!(!norm.q_b.contains(&norm.assignment.q0));
        assert_eq!(norm.assignment.teams, vec![Team::B, Team::A]);
        assert!(!norm.is_empty());
        assert_eq!(norm.len(), 2);
        // Normalizing an already-normal witness is the identity.
        assert_eq!(norm.normalized(), norm);
    }

    #[test]
    fn q_set_on_sticky_is_team_constant() {
        let sticky = StickyRegister::new(2);
        let a = Assignment::split(
            Value::Bottom,
            vec![Operation::new("write", Value::Int(0))],
            vec![Operation::new("write", Value::Int(1))],
        );
        assert_eq!(
            q_set(&sticky, &a, Team::A),
            std::iter::once(Value::Int(0)).collect()
        );
        assert_eq!(
            q_set(&sticky, &a, Team::B),
            std::iter::once(Value::Int(1)).collect()
        );
    }
}
