//! Commute / overwrite structure of operation pairs (Herlihy 1991), used by
//! the paper in Appendix D (Proposition 19), Appendix E (Proposition 21)
//! and Appendix H (the stack and queue impossibility results, Fig. 8).
//!
//! Operations `op_i` and `op_j` **commute** from state `q0` if the
//! sequences `op_i, op_j` and `op_j, op_i` take the object from `q0` to the
//! same state. `op_i` **overwrites** `op_j` from `q0` if `op_i` and
//! `op_j, op_i` take the object from `q0` to the same state.
//!
//! For two processes (both teams singletons, so conditions 2–3 of
//! Definition 4 are vacuous), an assignment `(q0, op_1, op_2)` is
//! 2-recording **iff** none of the four state coincidences enumerated by
//! [`PairConflict`] occurs — this is the engine behind the paper's
//! "any pair of operations either commutes or overwrites, so even the
//! definition of 2-recording is not satisfied" arguments.

use rc_spec::{ObjectType, Operation, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether `op_i` and `op_j` commute from `q0` (equal final *states*; the
/// paper's Appendix D definition).
pub fn commutes(ty: &dyn ObjectType, q0: &Value, op_i: &Operation, op_j: &Operation) -> bool {
    let (s_ij, _) = ty.apply_all(q0, &[op_i.clone(), op_j.clone()]);
    let (s_ji, _) = ty.apply_all(q0, &[op_j.clone(), op_i.clone()]);
    s_ij == s_ji
}

/// Whether `op_i` overwrites `op_j` from `q0`: `[op_i]` and `[op_j, op_i]`
/// take the object from `q0` to the same state.
pub fn overwrites(ty: &dyn ObjectType, q0: &Value, op_i: &Operation, op_j: &Operation) -> bool {
    let (s_i, _) = ty.apply_all(q0, std::slice::from_ref(op_i));
    let (s_ji, _) = ty.apply_all(q0, &[op_j.clone(), op_i.clone()]);
    s_i == s_ji
}

/// The four state coincidences that each individually refute 2-recording
/// for a fixed `(q0, op_1, op_2)`.
///
/// Writing `a1 = δ(q0, op_1)`, `a12 = δ(q0, op_1 op_2)`,
/// `b2 = δ(q0, op_2)`, `b21 = δ(q0, op_2 op_1)`, condition 1 of
/// Definition 4 for two singleton teams says
/// `{a1, a12} ∩ {b2, b21} = ∅`; the four possible intersections are:
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairConflict {
    /// `a12 = b21`: the operations commute.
    Commute,
    /// `a1 = b21`: `op_1` overwrites `op_2`.
    FirstOverwritesSecond,
    /// `b2 = a12`: `op_2` overwrites `op_1`.
    SecondOverwritesFirst,
    /// `a1 = b2`: the two operations have identical effect on `q0`.
    SameEffect,
}

impl fmt::Display for PairConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairConflict::Commute => write!(f, "commute"),
            PairConflict::FirstOverwritesSecond => write!(f, "op1 overwrites op2"),
            PairConflict::SecondOverwritesFirst => write!(f, "op2 overwrites op1"),
            PairConflict::SameEffect => write!(f, "same effect"),
        }
    }
}

/// All conflicts refuting 2-recording for `(q0, op_1, op_2)`; an empty
/// result means the triple *is* a 2-recording witness (for two processes,
/// conditions 2–3 of Definition 4 are vacuous).
pub fn pair_conflicts(
    ty: &dyn ObjectType,
    q0: &Value,
    op_1: &Operation,
    op_2: &Operation,
) -> Vec<PairConflict> {
    let (a1, _) = ty.apply_all(q0, std::slice::from_ref(op_1));
    let (a12, _) = ty.apply_all(q0, &[op_1.clone(), op_2.clone()]);
    let (b2, _) = ty.apply_all(q0, std::slice::from_ref(op_2));
    let (b21, _) = ty.apply_all(q0, &[op_2.clone(), op_1.clone()]);
    let mut conflicts = Vec::new();
    if a12 == b21 {
        conflicts.push(PairConflict::Commute);
    }
    if a1 == b21 {
        conflicts.push(PairConflict::FirstOverwritesSecond);
    }
    if b2 == a12 {
        conflicts.push(PairConflict::SecondOverwritesFirst);
    }
    if a1 == b2 {
        conflicts.push(PairConflict::SameEffect);
    }
    conflicts
}

/// One row of the exhaustive pair analysis of [`analyze_pairs`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairReport {
    /// The initial state analyzed.
    pub q0: Value,
    /// First operation.
    pub op_1: Operation,
    /// Second operation.
    pub op_2: Operation,
    /// The conflicts found (empty = this triple witnesses 2-recording).
    pub conflicts: Vec<PairConflict>,
}

/// Exhaustively classifies every `(q0, op_1, op_2)` triple of `ty` — the
/// computational form of the paper's Appendix H stack analysis ("if both
/// operations are Pops, they commute; if a Push and a Pop meet an empty
/// stack, the Push overwrites the Pop; …").
///
/// The type is 2-recording **iff** some row has no conflicts.
pub fn analyze_pairs(ty: &dyn ObjectType) -> Vec<PairReport> {
    let ops = ty.operations();
    let mut rows = Vec::new();
    for q0 in ty.initial_states() {
        for op_1 in &ops {
            for op_2 in &ops {
                rows.push(PairReport {
                    q0: q0.clone(),
                    op_1: op_1.clone(),
                    op_2: op_2.clone(),
                    conflicts: pair_conflicts(ty, &q0, op_1, op_2),
                });
            }
        }
    }
    rows
}

/// Whether *every* operation pair of `ty` conflicts from *every* candidate
/// initial state — a sufficient condition for `ty` **not** being
/// 2-recording, and hence (by Theorem 14) for `rcons(ty) ≤ 2`.
pub fn all_pairs_conflict(ty: &dyn ObjectType) -> bool {
    analyze_pairs(ty)
        .iter()
        .all(|row| !row.conflicts.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_spec::types::{Queue, Sn, Stack, TestAndSet};

    fn push(v: i64) -> Operation {
        Operation::new("push", Value::Int(v))
    }
    fn pop() -> Operation {
        Operation::nullary("pop")
    }

    #[test]
    fn pops_commute() {
        let s = Stack::new(3, 2);
        let q0 = Value::List(vec![Value::Int(0), Value::Int(1)]);
        assert!(commutes(&s, &q0, &pop(), &pop()));
    }

    #[test]
    fn push_overwrites_pop_on_empty() {
        let s = Stack::new(3, 2);
        assert!(overwrites(&s, &Value::empty_list(), &push(1), &pop()));
    }

    #[test]
    fn pushes_do_not_commute_on_state() {
        let s = Stack::new(3, 2);
        assert!(!commutes(&s, &Value::empty_list(), &push(0), &push(1)));
    }

    #[test]
    fn stack_has_conflict_free_pairs() {
        // Two pushes of different values from the empty stack neither
        // commute nor overwrite: the bottom element records the first
        // pusher. (This is why the stack is 2-recording even though
        // rcons(stack) = 1 — the record is not READABLE; see Appendix H.)
        let s = Stack::new(3, 2);
        assert!(pair_conflicts(&s, &Value::empty_list(), &push(0), &push(1)).is_empty());
        assert!(!all_pairs_conflict(&s));
    }

    #[test]
    fn queue_has_conflict_free_pairs() {
        assert!(!all_pairs_conflict(&Queue::new(3, 2)));
    }

    #[test]
    fn tas_every_pair_conflicts() {
        // The TAS bit genuinely conflicts everywhere (single operation,
        // absorbing state), which is why TAS is not 2-recording and the
        // machinery bounds rcons(TAS) ≤ 2.
        assert!(all_pairs_conflict(&TestAndSet::new()));
    }

    #[test]
    fn register_faa_swap_counter_conflict_everywhere() {
        use rc_spec::types::{Counter, FetchAdd, MaxRegister, Register, Swap};
        assert!(all_pairs_conflict(&Register::new(2)));
        assert!(all_pairs_conflict(&FetchAdd::new(8, &[1, 2])));
        assert!(all_pairs_conflict(&Swap::new(2)));
        assert!(all_pairs_conflict(&Counter::new(4)));
        assert!(all_pairs_conflict(&MaxRegister::new(3)));
    }

    #[test]
    fn sn_has_a_conflict_free_pair() {
        // S_2 is 2-recording, so some (q0, opA, opB) row must be clean.
        let s2 = Sn::new(2);
        let rows = analyze_pairs(&s2);
        assert!(rows.iter().any(|r| r.conflicts.is_empty()));
        assert!(!all_pairs_conflict(&s2));
    }

    #[test]
    fn conflict_kinds_on_stack_match_fig8_cases() {
        let s = Stack::new(3, 2);
        // Fig. 8(a): Pop/Pop commute from a non-empty stack.
        let q_nonempty = Value::List(vec![Value::Int(0)]);
        assert!(pair_conflicts(&s, &q_nonempty, &pop(), &pop()).contains(&PairConflict::Commute));
        // Fig. 8(b): Push overwrites Pop from the empty stack.
        let cs = pair_conflicts(&s, &Value::empty_list(), &push(0), &pop());
        assert!(cs.contains(&PairConflict::FirstOverwritesSecond));
        // Two identical pushes: same effect.
        let cs = pair_conflicts(&s, &Value::empty_list(), &push(0), &push(0));
        assert!(cs.contains(&PairConflict::SameEffect));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PairConflict::Commute.to_string(), "commute");
        assert_eq!(PairConflict::SameEffect.to_string(), "same effect");
    }
}
