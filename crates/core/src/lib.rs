//! # rc-core — the paper's primary contribution
//!
//! This crate implements the central results of
//! *“When Is Recoverable Consensus Harder Than Consensus?”*
//! (Delporte-Gallet, Fatourou, Fauconnier, Ruppert — PODC 2022):
//!
//! * **Characterizations.** Exact decision procedures for Ruppert's
//!   [*n*-discerning](check_discerning) property (Definition 2 —
//!   characterizes readable types that solve ordinary *n*-process
//!   consensus, Theorem 3) and the paper's new
//!   [*n*-recording](check_recording) property (Definition 4 — sufficient
//!   for *n*-process recoverable consensus, Theorem 8, and necessary at
//!   level *n*−1, Theorem 14).
//! * **Hierarchies.** [`compute_hierarchy`] locates any finite deterministic
//!   type in both the consensus and the recoverable-consensus hierarchy,
//!   producing the paper's headline intervals
//!   `cons(T) − 2 ≤ rcons(T) ≤ cons(T)` (Corollary 17); [`set_rcons_bounds`]
//!   implements the multi-type bound of Theorem 22.
//! * **Structure analysis.** The commute/overwrite machinery of
//!   [`analysis`] behind the Appendix D/E/H arguments
//!   (e.g. `rcons(stack) = 1`).
//! * **Algorithms.** Executable state machines (over the `rc-runtime`
//!   crash–recovery simulator) for the paper's constructions: the Fig. 2
//!   recoverable team consensus algorithm, the Appendix B tournament, the
//!   Theorem 3 consensus algorithm, and the Fig. 4 simultaneous-crash
//!   transformation — plus deliberately *broken* variants reproducing the
//!   paper's counterexample scenarios. See [`algorithms`].
//!
//! ## Quick start
//!
//! ```
//! use rc_core::{compute_hierarchy, Level};
//! use rc_spec::types::Tn;
//!
//! // T_6 (Fig. 5): consensus number 6, but max recording level 4 —
//! // recoverable consensus is strictly harder (Corollary 20).
//! let report = compute_hierarchy(&Tn::new(6), 8);
//! assert_eq!(report.max_discerning, Level::Exactly(6));
//! assert_eq!(report.max_recording, Level::Exactly(4));
//! assert_eq!(report.rcons_upper(), Some(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod analysis;
pub mod valency;

mod discerning;
mod hierarchy;
mod recording;
mod witness;

pub use discerning::{
    check_discerning, find_discerning_witness, is_discerning, max_discerning, r_set,
    DiscerningViolation, DiscerningWitness,
};
pub use hierarchy::{compute_hierarchy, set_rcons_bounds, HierarchyReport, Level};
pub use recording::{
    check_recording, find_recording_witness, is_recording, max_recording, q_set,
    RecordingViolation, RecordingWitness,
};
pub use witness::{Assignment, Team};
