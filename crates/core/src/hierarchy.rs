//! The consensus and recoverable-consensus hierarchies (Section 3.3).
//!
//! For a deterministic *readable* type `T` the paper gives an effective
//! recipe for locating `T` in both hierarchies:
//!
//! * `cons(T)` equals the largest `n` for which `T` is *n*-discerning
//!   (Theorem 3, Ruppert 2000) — exact.
//! * If `T` is *n*-recording but not (*n*+1)-recording, then
//!   `rcons(T) ∈ {n, n+1}`: Theorem 8 gives the lower bound, Theorem 14
//!   the upper (solving (*n*+2)-process RC would make `T`
//!   (*n*+1)-recording).
//! * In every case `cons(T) − 2 ≤ rcons(T) ≤ cons(T)` (Corollary 17).
//!
//! [`compute_hierarchy`] runs both decision procedures up to a search cap
//! and packages the resulting interval; [`set_rcons_bounds`] implements the
//! Theorem 22 bound for a *set* of types.

use crate::discerning::max_discerning;
use crate::recording::max_recording;
use rc_spec::ObjectType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The maximum level at which a property (discerning / recording) holds,
/// relative to a search cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// The property fails already at `n = 2`; the type sits at hierarchy
    /// level 1 (single-process solvability is trivial).
    One,
    /// The property holds at this level and provably fails one level higher
    /// (the failure was observed inside the search cap).
    Exactly(usize),
    /// The property holds at every level up to the search cap; the true
    /// maximum is `≥ cap` and may be ∞.
    AtLeastCap(usize),
}

impl Level {
    /// The guaranteed lower bound on the hierarchy level.
    pub fn lower_bound(&self) -> usize {
        match self {
            Level::One => 1,
            Level::Exactly(n) | Level::AtLeastCap(n) => *n,
        }
    }

    /// The exact level, if the search resolved it.
    pub fn exact(&self) -> Option<usize> {
        match self {
            Level::One => Some(1),
            Level::Exactly(n) => Some(*n),
            Level::AtLeastCap(_) => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::One => write!(f, "1"),
            Level::Exactly(n) => write!(f, "{n}"),
            Level::AtLeastCap(n) => write!(f, "≥{n}"),
        }
    }
}

fn level_from_scan(max: Option<usize>, cap: usize) -> Level {
    match max {
        None => Level::One,
        Some(n) if n >= cap => Level::AtLeastCap(cap),
        Some(n) => Level::Exactly(n),
    }
}

/// The result of locating one type in both hierarchies.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// The type's name.
    pub type_name: String,
    /// Whether the type is readable. The paper's positive theorems
    /// (Theorem 3: discerning ⟹ consensus; Theorem 8: recording ⟹ RC)
    /// hold **only for readable types**, so for a non-readable type (e.g.
    /// the classic stack) the property levels below do *not* translate into
    /// solvability — see the readability discussion on
    /// [`rc_spec::types::Stack`].
    pub readable: bool,
    /// The search cap used for both properties.
    pub cap: usize,
    /// Maximum *n* for which the type is *n*-discerning.
    pub max_discerning: Level,
    /// Maximum *n* for which the type is *n*-recording.
    pub max_recording: Level,
}

impl HierarchyReport {
    /// `cons(T)` — exact for readable deterministic types (Theorem 3),
    /// modulo the search cap. Returns `None` for non-readable types, whose
    /// consensus number is not determined by the discerning level (the
    /// classic stack is ∞-discerning yet has `cons = 2`).
    pub fn cons(&self) -> Option<Level> {
        self.readable.then_some(self.max_discerning)
    }

    /// The guaranteed lower bound on `rcons(T)`:
    /// *n*-recording ⟹ `rcons ≥ n` for *readable* types (Theorem 8);
    /// for non-readable types only the trivial bound 1 is available.
    pub fn rcons_lower(&self) -> usize {
        if self.readable {
            self.max_recording.lower_bound()
        } else {
            1
        }
    }

    /// The upper bound on `rcons(T)`, when the search resolved one.
    ///
    /// If the type is *r*-recording but not (*r*+1)-recording, Theorem 14
    /// gives `rcons ≤ r + 1` — the theorem "is true even if the type is not
    /// readable". For readable types this is combined with `rcons ≤ cons`
    /// (every RC algorithm solves consensus) when `cons` is exact. Returns
    /// `None` if the relevant searches saturated the cap.
    pub fn rcons_upper(&self) -> Option<usize> {
        let via_recording = self.max_recording.exact().map(|r| r + 1);
        let via_cons = self.cons().and_then(|c| c.exact());
        match (via_recording, via_cons) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Whether the computed intervals satisfy Corollary 17
    /// (`cons − 2 ≤ rcons ≤ cons`, for readable types), used as a
    /// self-check by the harness. Vacuously true for non-readable types.
    pub fn satisfies_corollary_17(&self) -> bool {
        let Some(cons) = self.cons() else {
            return true;
        };
        let cons_lo = cons.lower_bound();
        // rcons ≥ cons − 2 must be consistent with the intervals: the best
        // rcons upper bound is ≥ cons_exact − 2.
        let lower_ok = match self.rcons_upper() {
            Some(hi) => hi + 2 >= cons_lo,
            None => true,
        };
        let upper_ok = match (cons.exact(), self.rcons_upper()) {
            (Some(c), Some(hi)) => hi <= c,
            _ => true,
        };
        lower_ok && upper_ok
    }
}

impl fmt::Display for HierarchyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rcons = match self.rcons_upper() {
            Some(hi) if hi == self.rcons_lower() => format!("{hi}"),
            Some(hi) => format!("[{}, {}]", self.rcons_lower(), hi),
            None => format!("≥{}", self.rcons_lower()),
        };
        let cons = match self.cons() {
            Some(c) => c.to_string(),
            None => "n/a (not readable)".to_string(),
        };
        write!(
            f,
            "{}: discerning={}, recording={}, cons={}, rcons={}",
            self.type_name, self.max_discerning, self.max_recording, cons, rcons
        )
    }
}

/// Locates `ty` in both hierarchies by exhaustive witness search up to
/// `cap` processes.
///
/// # Panics
///
/// Panics if `cap < 2`.
pub fn compute_hierarchy(ty: &dyn ObjectType, cap: usize) -> HierarchyReport {
    assert!(cap >= 2, "cap must be at least 2");
    HierarchyReport {
        type_name: ty.name(),
        readable: ty.is_readable(),
        cap,
        max_discerning: level_from_scan(max_discerning(ty, cap), cap),
        max_recording: level_from_scan(max_recording(ty, cap), cap),
    }
}

/// Theorem 22: for a non-empty set `T` of deterministic readable types with
/// `n = max {rcons(T)}`, `n ≤ rcons(T) ≤ n + 1`.
///
/// Given per-type reports, returns `(lower, upper)` bounds for the set's RC
/// number; `upper` is `None` when some member's upper bound is unresolved.
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn set_rcons_bounds(reports: &[HierarchyReport]) -> (usize, Option<usize>) {
    assert!(!reports.is_empty(), "Theorem 22 needs a non-empty set");
    let lower = reports
        .iter()
        .map(HierarchyReport::rcons_lower)
        .max()
        .expect("non-empty");
    let upper = reports
        .iter()
        .map(HierarchyReport::rcons_upper)
        .collect::<Option<Vec<_>>>()
        .map(|uppers| uppers.into_iter().max().expect("non-empty") + 1);
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_spec::types::{Cas, Register, Sn, Stack, TestAndSet, Tn};

    #[test]
    fn sn_report_is_exact() {
        let r = compute_hierarchy(&Sn::new(3), 6);
        assert_eq!(r.max_discerning, Level::Exactly(3));
        assert_eq!(r.max_recording, Level::Exactly(3));
        assert_eq!(r.rcons_lower(), 3);
        assert_eq!(r.rcons_upper(), Some(3), "rcons(S_3) = 3 exactly");
        assert_eq!(r.cons(), Some(Level::Exactly(3)));
        assert!(r.satisfies_corollary_17());
    }

    #[test]
    fn tn_report_shows_gap() {
        let r = compute_hierarchy(&Tn::new(4), 6);
        assert_eq!(r.max_discerning, Level::Exactly(4), "cons(T_4) = 4");
        assert_eq!(r.max_recording, Level::Exactly(2));
        assert_eq!(r.rcons_lower(), 2);
        assert_eq!(r.rcons_upper(), Some(3), "rcons(T_4) ∈ {{2, 3}} < 4");
        assert!(r.satisfies_corollary_17());
    }

    #[test]
    fn stack_report_is_gated_on_readability() {
        // The classic stack is NOT readable: its transition structure
        // saturates both properties (the bottom element of a push-only
        // execution records the first team forever), but without a Read
        // operation neither Theorem 3 nor Theorem 8 applies, so no cons /
        // rcons bounds may be derived. Appendix H settles them directly:
        // cons = 2, rcons = 1.
        let r = compute_hierarchy(&Stack::new(3, 2), 4);
        assert!(!r.readable);
        assert_eq!(r.max_discerning, Level::AtLeastCap(4));
        assert_eq!(r.max_recording, Level::AtLeastCap(4));
        assert_eq!(r.cons(), None, "cons not derivable for non-readable types");
        assert_eq!(r.rcons_lower(), 1, "only the trivial lower bound");
        assert_eq!(r.rcons_upper(), None);
        assert!(r.satisfies_corollary_17(), "vacuous for non-readable");
        assert!(r.to_string().contains("not readable"));
    }

    #[test]
    fn register_report() {
        let r = compute_hierarchy(&Register::new(2), 4);
        assert_eq!(r.max_discerning, Level::One);
        assert_eq!(r.max_recording, Level::One);
        assert_eq!(r.cons(), Some(Level::One));
        assert_eq!(r.rcons_upper(), Some(1), "rcons(register) = 1 exactly");
    }

    #[test]
    fn cas_saturates_cap() {
        let r = compute_hierarchy(&Cas::new(2), 4);
        assert_eq!(r.max_discerning, Level::AtLeastCap(4));
        assert_eq!(r.max_recording, Level::AtLeastCap(4));
        assert_eq!(r.rcons_upper(), None);
        assert_eq!(r.rcons_lower(), 4);
    }

    #[test]
    fn theorem_22_bounds() {
        let reports = vec![
            compute_hierarchy(&Sn::new(3), 5),
            compute_hierarchy(&TestAndSet::new(), 4),
        ];
        let (lo, hi) = set_rcons_bounds(&reports);
        assert_eq!(lo, 3, "the set is at least as strong as S_3");
        assert_eq!(hi, Some(4), "Theorem 22: at most max + 1");
    }

    #[test]
    fn level_display() {
        assert_eq!(Level::One.to_string(), "1");
        assert_eq!(Level::Exactly(3).to_string(), "3");
        assert_eq!(Level::AtLeastCap(5).to_string(), "≥5");
    }

    #[test]
    fn report_display_mentions_interval() {
        let r = compute_hierarchy(&Tn::new(4), 6);
        let s = r.to_string();
        assert!(s.contains("rcons=[2, 3]"), "got: {s}");
    }
}
