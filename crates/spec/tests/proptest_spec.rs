//! Property tests for the specification substrate: model-based testing of
//! the catalog types against reference implementations, and closure
//! properties of the reachability helpers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rc_spec::random::{random_table_type, RandomTypeConfig};
use rc_spec::types::{Queue, Stack};
use rc_spec::{ObjectType, Operation, Value};

/// Reference stack semantics over a plain Vec.
fn reference_stack(capacity: usize, script: &[Option<i64>]) -> (Vec<i64>, Vec<Value>) {
    let mut stack = Vec::new();
    let mut resps = Vec::new();
    for op in script {
        match op {
            Some(v) => {
                if stack.len() >= capacity {
                    resps.push(Value::sym("full"));
                } else {
                    stack.push(*v);
                    resps.push(Value::Unit);
                }
            }
            None => match stack.pop() {
                Some(v) => resps.push(Value::Int(v)),
                None => resps.push(Value::Bottom),
            },
        }
    }
    (stack, resps)
}

/// Reference queue semantics over a plain VecDeque.
fn reference_queue(capacity: usize, script: &[Option<i64>]) -> (Vec<i64>, Vec<Value>) {
    let mut queue = std::collections::VecDeque::new();
    let mut resps = Vec::new();
    for op in script {
        match op {
            Some(v) => {
                if queue.len() >= capacity {
                    resps.push(Value::sym("full"));
                } else {
                    queue.push_back(*v);
                    resps.push(Value::Unit);
                }
            }
            None => match queue.pop_front() {
                Some(v) => resps.push(Value::Int(v)),
                None => resps.push(Value::Bottom),
            },
        }
    }
    (queue.into_iter().collect(), resps)
}

fn script_strategy() -> impl Strategy<Value = Vec<Option<i64>>> {
    proptest::collection::vec(prop_oneof![Just(None), (0i64..2).prop_map(Some)], 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The bounded Stack type matches the reference implementation on
    /// arbitrary operation scripts.
    #[test]
    fn stack_matches_reference(script in script_strategy()) {
        let capacity = 4;
        let stack = Stack::new(capacity, 2);
        let ops: Vec<Operation> = script
            .iter()
            .map(|op| match op {
                Some(v) => Operation::new("push", Value::Int(*v)),
                None => Operation::nullary("pop"),
            })
            .collect();
        let (state, resps) = stack.apply_all(&Value::empty_list(), &ops);
        let (ref_state, ref_resps) = reference_stack(capacity, &script);
        let expected = Value::List(ref_state.into_iter().map(Value::Int).collect());
        prop_assert_eq!(state, expected);
        prop_assert_eq!(resps, ref_resps);
    }

    /// The bounded Queue type matches the reference implementation.
    #[test]
    fn queue_matches_reference(script in script_strategy()) {
        let capacity = 4;
        let queue = Queue::new(capacity, 2);
        let ops: Vec<Operation> = script
            .iter()
            .map(|op| match op {
                Some(v) => Operation::new("enq", Value::Int(*v)),
                None => Operation::nullary("deq"),
            })
            .collect();
        let (state, resps) = queue.apply_all(&Value::empty_list(), &ops);
        let (ref_state, ref_resps) = reference_queue(capacity, &script);
        let expected = Value::List(ref_state.into_iter().map(Value::Int).collect());
        prop_assert_eq!(state, expected);
        prop_assert_eq!(resps, ref_resps);
    }

    /// `reachable_states` is a closure: applying any operation to any
    /// reachable state stays inside the set, and the start state is in it.
    #[test]
    fn reachability_is_closed(seed in any::<u64>()) {
        let ty = random_table_type(
            &mut StdRng::seed_from_u64(seed),
            RandomTypeConfig {
                num_states: 5,
                num_ops: 2,
                num_responses: 2,
            },
        );
        let q0 = ty.state(0);
        let reach = ty.reachable_states(&q0);
        prop_assert!(reach.contains(&q0));
        for q in &reach {
            for op in ty.operations() {
                prop_assert!(reach.contains(&ty.apply(q, &op).next));
            }
        }
    }

    /// Determinism: applying the same operation to the same state twice
    /// gives identical transitions (a tautology for our implementations,
    /// but it guards against interior mutability sneaking in).
    #[test]
    fn transitions_are_deterministic(seed in any::<u64>(), s in 0usize..5, o in 0usize..2) {
        let ty = random_table_type(
            &mut StdRng::seed_from_u64(seed),
            RandomTypeConfig {
                num_states: 5,
                num_ops: 2,
                num_responses: 3,
            },
        );
        let q = ty.state(s);
        let op = ty.op(o);
        prop_assert_eq!(ty.apply(&q, &op), ty.apply(&q, &op));
    }

    /// `apply_all` is the fold of `apply`.
    #[test]
    fn apply_all_is_a_fold(seed in any::<u64>(), ops in proptest::collection::vec(0usize..2, 0..10)) {
        let ty = random_table_type(
            &mut StdRng::seed_from_u64(seed),
            RandomTypeConfig {
                num_states: 4,
                num_ops: 2,
                num_responses: 2,
            },
        );
        let ops: Vec<Operation> = ops.into_iter().map(|o| ty.op(o)).collect();
        let (state, resps) = ty.apply_all(&ty.state(0), &ops);
        let mut q = ty.state(0);
        let mut expected_resps = Vec::new();
        for op in &ops {
            let t = ty.apply(&q, op);
            q = t.next;
            expected_resps.push(t.response);
        }
        prop_assert_eq!(state, q);
        prop_assert_eq!(resps, expected_resps);
    }
}
