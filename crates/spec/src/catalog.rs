//! The named type catalog with known consensus numbers from the literature.
//!
//! The experiment harness (`rc-bench`) walks this catalog to regenerate the
//! paper's hierarchy comparisons: for each type it runs the `rc-core`
//! checkers and cross-checks the computed `cons`/`rcons` bounds against the
//! published values recorded here.

use crate::types::{
    Cas, ConsensusObject, Counter, FetchAdd, FetchAndCons, MaxRegister, Queue, ReadableStack,
    Register, Sn, Stack, StickyRegister, Swap, TestAndSet, Tn,
};
use crate::TypeHandle;
use std::fmt;
use std::sync::Arc;

/// A consensus number: finite or ∞.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsensusNumber {
    /// A finite level of the hierarchy.
    Finite(usize),
    /// The top of the hierarchy (e.g. compare-and-swap).
    Infinite,
}

impl ConsensusNumber {
    /// Returns the finite level, if any.
    pub fn as_finite(&self) -> Option<usize> {
        match self {
            ConsensusNumber::Finite(n) => Some(*n),
            ConsensusNumber::Infinite => None,
        }
    }
}

impl fmt::Display for ConsensusNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusNumber::Finite(n) => write!(f, "{n}"),
            ConsensusNumber::Infinite => write!(f, "∞"),
        }
    }
}

/// An inclusive range of possible values for an RC number.
///
/// The paper's machinery often pins `rcons` only to an interval (e.g.
/// `rcons(T) ∈ {n, n+1}` when `T` is *n*-recording but not
/// (*n*+1)-recording); this type records published knowledge the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RcBounds {
    /// Smallest possible value.
    pub lo: ConsensusNumber,
    /// Largest possible value.
    pub hi: ConsensusNumber,
}

impl RcBounds {
    /// An exactly-known RC number.
    pub fn exact(n: ConsensusNumber) -> Self {
        RcBounds { lo: n, hi: n }
    }

    /// A finite interval `[lo, hi]`.
    pub fn range(lo: usize, hi: usize) -> Self {
        RcBounds {
            lo: ConsensusNumber::Finite(lo),
            hi: ConsensusNumber::Finite(hi),
        }
    }

    /// Whether the bounds pin a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for RcBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// A catalog entry: a type plus its published hierarchy positions.
#[derive(Clone)]
pub struct CatalogEntry {
    /// Short identifier used in tables.
    pub id: &'static str,
    /// The object type.
    pub object: TypeHandle,
    /// Published consensus number (Herlihy 1991, Ruppert 2000, or this
    /// paper).
    pub known_cons: ConsensusNumber,
    /// Published (or paper-derived) recoverable consensus number bounds for
    /// the independent-crash model.
    pub known_rcons: RcBounds,
    /// Where the published numbers come from.
    pub provenance: &'static str,
}

impl fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("id", &self.id)
            .field("known_cons", &self.known_cons)
            .field("known_rcons", &self.known_rcons)
            .finish_non_exhaustive()
    }
}

/// The standard catalog used by the experiments.
///
/// Domain/capacity parameters are chosen so that exhaustive property
/// checking up to `n = 4` processes stays fast while remaining faithful
/// (see DESIGN.md §4).
pub fn catalog() -> Vec<CatalogEntry> {
    use ConsensusNumber::{Finite, Infinite};
    vec![
        CatalogEntry {
            id: "register",
            object: Arc::new(Register::new(2)),
            known_cons: Finite(1),
            known_rcons: RcBounds::exact(Finite(1)),
            provenance: "Herlihy 1991 (cons); trivial (rcons)",
        },
        CatalogEntry {
            id: "counter",
            object: Arc::new(Counter::new(4)),
            known_cons: Finite(1),
            known_rcons: RcBounds::exact(Finite(1)),
            provenance: "commuting updates (Herlihy 1991)",
        },
        CatalogEntry {
            id: "max-register",
            object: Arc::new(MaxRegister::new(3)),
            known_cons: Finite(1),
            known_rcons: RcBounds::exact(Finite(1)),
            provenance: "commuting/overwriting updates",
        },
        CatalogEntry {
            id: "test-and-set",
            object: Arc::new(TestAndSet::new()),
            known_cons: Finite(2),
            known_rcons: RcBounds::range(1, 2),
            provenance: "Herlihy 1991 (cons); paper §5 open question (rcons)",
        },
        CatalogEntry {
            id: "fetch-add",
            object: Arc::new(FetchAdd::new(8, &[1, 2])),
            known_cons: Finite(2),
            known_rcons: RcBounds::range(1, 2),
            provenance: "Herlihy 1991 (cons); not 2-recording (this paper's machinery)",
        },
        CatalogEntry {
            id: "swap",
            object: Arc::new(Swap::new(2)),
            known_cons: Finite(2),
            known_rcons: RcBounds::range(1, 2),
            provenance: "Herlihy 1991 (cons); not 2-recording",
        },
        CatalogEntry {
            id: "stack",
            object: Arc::new(Stack::new(3, 2)),
            known_cons: Finite(2),
            known_rcons: RcBounds::exact(Finite(1)),
            provenance: "Herlihy 1991 (cons); paper Appendix H (rcons = 1)",
        },
        CatalogEntry {
            id: "queue",
            object: Arc::new(Queue::new(3, 2)),
            known_cons: Finite(2),
            known_rcons: RcBounds::exact(Finite(1)),
            provenance: "Herlihy 1991 (cons); paper Appendix H remark (rcons = 1)",
        },
        CatalogEntry {
            id: "readable-stack",
            object: Arc::new(ReadableStack::new(3, 2)),
            known_cons: Infinite,
            known_rcons: RcBounds::exact(Infinite),
            provenance: "adding Read makes the push-log observable: a write-once log",
        },
        CatalogEntry {
            id: "fetch-cons",
            object: Arc::new(FetchAndCons::new(3, 2)),
            known_cons: Infinite,
            known_rcons: RcBounds::exact(Infinite),
            provenance: "Herlihy 1991 (cons); the list is a durable history (rcons)",
        },
        CatalogEntry {
            id: "cas",
            object: Arc::new(Cas::new(2)),
            known_cons: Infinite,
            known_rcons: RcBounds::exact(Infinite),
            provenance: "Herlihy 1991 (cons); n-recording for all n",
        },
        CatalogEntry {
            id: "sticky",
            object: Arc::new(StickyRegister::new(2)),
            known_cons: Infinite,
            known_rcons: RcBounds::exact(Infinite),
            provenance: "Plotkin 1989 (cons); n-recording for all n",
        },
        CatalogEntry {
            id: "consensus-object",
            object: Arc::new(ConsensusObject::new(2)),
            known_cons: Infinite,
            known_rcons: RcBounds::exact(Infinite),
            provenance: "by definition; n-recording for all n",
        },
        CatalogEntry {
            id: "T_4",
            object: Arc::new(Tn::new(4)),
            known_cons: Finite(4),
            known_rcons: RcBounds::range(2, 3),
            provenance: "this paper, Prop. 19 / Cor. 20",
        },
        CatalogEntry {
            id: "T_5",
            object: Arc::new(Tn::new(5)),
            known_cons: Finite(5),
            known_rcons: RcBounds::range(3, 4),
            provenance: "this paper, Prop. 19 / Cor. 20",
        },
        CatalogEntry {
            id: "T_6",
            object: Arc::new(Tn::new(6)),
            known_cons: Finite(6),
            known_rcons: RcBounds::range(4, 5),
            provenance: "this paper, Prop. 19 / Cor. 20",
        },
        CatalogEntry {
            id: "S_2",
            object: Arc::new(Sn::new(2)),
            known_cons: Finite(2),
            known_rcons: RcBounds::exact(Finite(2)),
            provenance: "this paper, Prop. 21",
        },
        CatalogEntry {
            id: "S_3",
            object: Arc::new(Sn::new(3)),
            known_cons: Finite(3),
            known_rcons: RcBounds::exact(Finite(3)),
            provenance: "this paper, Prop. 21",
        },
        CatalogEntry {
            id: "S_4",
            object: Arc::new(Sn::new(4)),
            known_cons: Finite(4),
            known_rcons: RcBounds::exact(Finite(4)),
            provenance: "this paper, Prop. 21",
        },
        CatalogEntry {
            id: "S_5",
            object: Arc::new(Sn::new(5)),
            known_cons: Finite(5),
            known_rcons: RcBounds::exact(Finite(5)),
            provenance: "this paper, Prop. 21",
        },
    ]
}

/// Looks up a catalog entry by id.
pub fn find(id: &str) -> Option<CatalogEntry> {
    catalog().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectType;

    #[test]
    fn catalog_is_well_formed() {
        let entries = catalog();
        assert!(entries.len() >= 15);
        for e in &entries {
            assert!(!e.object.operations().is_empty(), "{}", e.id);
            assert!(!e.object.initial_states().is_empty(), "{}", e.id);
            // rcons ≤ cons must hold for the published values (Cor. 17).
            match (e.known_rcons.hi, e.known_cons) {
                (ConsensusNumber::Finite(hi), ConsensusNumber::Finite(c)) => {
                    assert!(hi <= c, "{}: rcons hi > cons", e.id)
                }
                (ConsensusNumber::Infinite, ConsensusNumber::Finite(_)) => {
                    panic!("{}: rcons ∞ but cons finite", e.id)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let entries = catalog();
        let mut ids: Vec<_> = entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), entries.len());
    }

    #[test]
    fn find_works() {
        assert!(find("stack").is_some());
        assert!(find("warp-drive").is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ConsensusNumber::Infinite.to_string(), "∞");
        assert_eq!(ConsensusNumber::Finite(3).to_string(), "3");
        assert_eq!(RcBounds::range(1, 2).to_string(), "[1, 2]");
        assert_eq!(RcBounds::exact(ConsensusNumber::Finite(4)).to_string(), "4");
    }
}
