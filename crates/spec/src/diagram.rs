//! Textual transition diagrams — the printable form of the paper's Fig. 5
//! (`T_n`) and Fig. 6 (`S_n`) state diagrams, for any small finite type.

use crate::{ObjectType, Value};

/// Renders the transition table of `ty` over the states reachable from
/// `q0`: one row per state, one column per update operation, each cell
/// showing `next-state / response`.
///
/// # Example
///
/// ```
/// use rc_spec::diagram::render_transitions;
/// use rc_spec::types::Sn;
///
/// let s2 = Sn::new(2);
/// let diagram = render_transitions(&s2, &Sn::q0());
/// assert!(diagram.contains("(B, 0)"));
/// assert!(diagram.contains("opA"));
/// ```
pub fn render_transitions(ty: &dyn ObjectType, q0: &Value) -> String {
    let ops = ty.operations();
    let states: Vec<Value> = ty.reachable_states(q0).into_iter().collect();

    let mut header: Vec<String> = vec!["state".to_string()];
    header.extend(ops.iter().map(|op| op.to_string()));

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(states.len());
    for state in &states {
        let mut row = vec![if state == q0 {
            format!("{state} (q0)")
        } else {
            state.to_string()
        }];
        for op in &ops {
            let t = ty.apply(state, op);
            row.push(format!("{} / {}", t.next, t.response));
        }
        rows.push(row);
    }

    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            line.push_str(cell);
            line.push_str(&" ".repeat(pad));
            if i + 1 < cells.len() {
                line.push_str("  ");
            }
        }
        line
    };

    let mut out = String::new();
    out.push_str(&format!("{} transitions from {q0}:\n", ty.name()));
    out.push_str(&render_row(&header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Sn, TestAndSet, Tn};

    #[test]
    fn renders_sn_diagram() {
        let s3 = Sn::new(3);
        let d = render_transitions(&s3, &Sn::q0());
        // 2n = 6 states + header + separator + title.
        assert_eq!(d.lines().count(), 9);
        assert!(d.contains("(q0)"));
        assert!(d.contains("opB"));
    }

    #[test]
    fn renders_tn_diagram_with_forget_state() {
        let t4 = Tn::new(4);
        let d = render_transitions(&t4, &Tn::forget_state());
        assert!(d.contains("(⊥, 0, 0) (q0)"));
        // opA from q0 returns A.
        assert!(d.contains("/ A"));
    }

    #[test]
    fn renders_tas() {
        let d = render_transitions(&TestAndSet::new(), &Value::Bool(false));
        assert!(d.contains("true / false") || d.contains("true / true"));
    }
}
