//! Explicit finite transition tables — the "anonymous" deterministic types
//! used for randomized validation of the paper's implication diagram.

use crate::{ObjectType, Operation, SpecError, Transition, Value};
use serde::{Deserialize, Serialize};

/// A deterministic type given by an explicit transition table.
///
/// States are `0..num_states` (encoded as [`Value::Int`]) and operations are
/// `op0..op{k−1}`. Entry `table[op][state]` is `(next_state, response)`.
///
/// This is the workhorse of the property-based experiments: `rc-core`'s
/// proptest suites generate thousands of random `TableType`s and check that
/// every implication of the paper's Figure 1 holds on each of them —
/// *n*-recording ⟹ *n*-discerning (Observation 5), *n*-recording ⟹
/// (*n*−1)-recording (Observation 6), *n*-discerning ⟹ (*n*−2)-recording
/// (Theorem 16), and that the Fig. 2 algorithm run on any discovered
/// *n*-recording witness never violates agreement under crashes.
///
/// # Example
///
/// ```
/// use rc_spec::{ObjectType, TableType, Value};
///
/// // A 2-state toggle: op0 flips the state and returns the old state.
/// let toggle = TableType::new(
///     "toggle",
///     2,
///     1,
///     vec![vec![(1, Value::Int(0)), (0, Value::Int(1))]],
/// )?;
/// let t = toggle.apply(&Value::Int(0), &toggle.operations()[0]);
/// assert_eq!(t.next, Value::Int(1));
/// # Ok::<(), rc_spec::SpecError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableType {
    name: String,
    num_states: usize,
    num_ops: usize,
    /// `table[op][state] = (next_state, response)`.
    table: Vec<Vec<(usize, Value)>>,
}

impl TableType {
    /// Creates a table type.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidParameter`] if the table dimensions do
    /// not match `num_ops × num_states` or any successor state is out of
    /// range.
    pub fn new(
        name: impl Into<String>,
        num_states: usize,
        num_ops: usize,
        table: Vec<Vec<(usize, Value)>>,
    ) -> Result<Self, SpecError> {
        let name = name.into();
        let invalid = |message: String| SpecError::InvalidParameter {
            type_name: name.clone(),
            message,
        };
        if num_states == 0 {
            return Err(invalid("need at least one state".into()));
        }
        if table.len() != num_ops {
            return Err(invalid(format!(
                "table has {} op rows, expected {}",
                table.len(),
                num_ops
            )));
        }
        for (op, row) in table.iter().enumerate() {
            if row.len() != num_states {
                return Err(invalid(format!(
                    "op {op} row has {} entries, expected {}",
                    row.len(),
                    num_states
                )));
            }
            for (state, (next, _)) in row.iter().enumerate() {
                if *next >= num_states {
                    return Err(invalid(format!(
                        "transition ({op}, {state}) -> {next} is out of range"
                    )));
                }
            }
        }
        Ok(TableType {
            name,
            num_states,
            num_ops,
            table,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of update operations.
    pub fn num_ops(&self) -> usize {
        self.num_ops
    }

    /// The state value for state index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_states`.
    pub fn state(&self, i: usize) -> Value {
        assert!(i < self.num_states, "state index out of range");
        Value::Int(i as i64)
    }

    /// The operation value for operation index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_ops`.
    pub fn op(&self, i: usize) -> Operation {
        assert!(i < self.num_ops, "op index out of range");
        Operation::nullary(format!("op{i}"))
    }
}

impl ObjectType for TableType {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn operations(&self) -> Vec<Operation> {
        (0..self.num_ops).map(|i| self.op(i)).collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        (0..self.num_states).map(|i| self.state(i)).collect()
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let s = state
            .as_int()
            .filter(|i| (0..self.num_states as i64).contains(i))
            .ok_or_else(|| SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            })? as usize;
        let idx = op
            .name
            .strip_prefix("op")
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|i| *i < self.num_ops && op.arg == Value::Unit)
            .ok_or_else(|| SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            })?;
        let (next, resp) = &self.table[idx][s];
        Ok(Transition::new(Value::Int(*next as i64), resp.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> TableType {
        TableType::new(
            "toggle",
            2,
            1,
            vec![vec![(1, Value::Int(0)), (0, Value::Int(1))]],
        )
        .expect("valid table")
    }

    #[test]
    fn applies_table() {
        let t = toggle();
        let op = t.op(0);
        let (state, resps) = t.apply_all(&t.state(0), &[op.clone(), op]);
        assert_eq!(state, t.state(0));
        assert_eq!(resps, vec![Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn validates_dimensions() {
        assert!(TableType::new("bad", 2, 1, vec![]).is_err());
        assert!(TableType::new("bad", 2, 1, vec![vec![(0, Value::Unit)]]).is_err());
        assert!(
            TableType::new("bad", 2, 1, vec![vec![(0, Value::Unit), (5, Value::Unit)]]).is_err()
        );
        assert!(TableType::new("bad", 0, 0, vec![]).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let t = toggle();
        assert!(t.try_apply(&Value::Int(9), &t.op(0)).is_err());
        assert!(t
            .try_apply(&t.state(0), &Operation::nullary("op7"))
            .is_err());
        assert!(t
            .try_apply(&t.state(0), &Operation::new("op0", Value::Int(1)))
            .is_err());
    }

    #[test]
    fn sticky_as_table_matches_sticky_type() {
        // Encode a 1-bit sticky register as a table and compare with the
        // native type on all sequences of length ≤ 3.
        use crate::types::StickyRegister;
        // States: 0 = ⊥, 1 = holds 0, 2 = holds 1. Ops: write(0), write(1).
        let table = TableType::new(
            "sticky-table",
            3,
            2,
            vec![
                vec![(1, Value::Unit), (1, Value::Unit), (2, Value::Unit)],
                vec![(2, Value::Unit), (1, Value::Unit), (2, Value::Unit)],
            ],
        )
        .expect("valid");
        let native = StickyRegister::new(2);
        let encode = |v: &Value| match v {
            Value::Bottom => Value::Int(0),
            Value::Int(i) => Value::Int(i + 1),
            _ => unreachable!(),
        };
        let nat_ops = native.operations();
        let tab_ops = table.operations();
        for seq_len in 0..=3usize {
            for mask in 0..(2usize.pow(seq_len as u32)) {
                let idxs: Vec<usize> = (0..seq_len).map(|b| (mask >> b) & 1).collect();
                let nat_seq: Vec<_> = idxs.iter().map(|&i| nat_ops[i].clone()).collect();
                let tab_seq: Vec<_> = idxs.iter().map(|&i| tab_ops[i].clone()).collect();
                let (ns, _) = native.apply_all(&Value::Bottom, &nat_seq);
                let (ts, _) = table.apply_all(&Value::Int(0), &tab_seq);
                assert_eq!(encode(&ns), ts);
            }
        }
    }
}
