//! The [`ObjectType`] trait: deterministic sequential specifications.

use crate::{SpecError, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// An update operation: a name plus an argument value.
///
/// Following the paper (Definitions 2 and 4), "an operation `op_i` includes
/// the name of the operation and any arguments to it. For example,
/// `Write(42)` is an operation on a read/write register."
///
/// The implicit `Read` operation of readable types is *not* part of the
/// update-operation universe returned by [`ObjectType::operations`]; reads
/// are modelled separately by the runtime because they never change state.
///
/// # Example
///
/// ```
/// use rc_spec::{Operation, Value};
///
/// let w = Operation::new("write", Value::Int(42));
/// assert_eq!(w.to_string(), "write(42)");
/// let p = Operation::nullary("pop");
/// assert_eq!(p.to_string(), "pop");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Operation {
    /// The operation name, e.g. `"write"`.
    pub name: String,
    /// The operation argument; [`Value::Unit`] for nullary operations.
    pub arg: Value,
}

impl Operation {
    /// Creates an operation with an argument.
    pub fn new(name: impl Into<String>, arg: Value) -> Self {
        Operation {
            name: name.into(),
            arg,
        }
    }

    /// Creates an operation without an argument.
    pub fn nullary(name: impl Into<String>) -> Self {
        Operation {
            name: name.into(),
            arg: Value::Unit,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.arg == Value::Unit {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}({})", self.name, self.arg)
        }
    }
}

/// The result of applying an operation: the successor state and the response.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transition {
    /// The state after the operation.
    pub next: Value,
    /// The response returned to the caller.
    pub response: Value,
}

impl Transition {
    /// Creates a transition.
    pub fn new(next: Value, response: Value) -> Self {
        Transition { next, response }
    }
}

/// A deterministic sequential object-type specification.
///
/// This is the paper's notion of a shared object type: "a sequential
/// specification, which specifies the set of possible states of the object,
/// the operations that can be performed on it, and how the object changes
/// state and returns a response when an operation is applied on it"
/// (Section 1). A *deterministic* type has a unique response and successor
/// for each (state, operation) pair — which is exactly what
/// [`try_apply`](ObjectType::try_apply) computes.
///
/// A type is **readable** ([`is_readable`](ObjectType::is_readable)) if it
/// supports a `Read` operation returning the entire state without changing
/// it. All of the paper's positive results (Theorems 3 and 8) are for
/// readable types; the runtime exposes reads directly from the stored state.
///
/// Implementations must be *total* over the states reachable from any state
/// in [`initial_states`](ObjectType::initial_states) using operations from
/// [`operations`](ObjectType::operations).
pub trait ObjectType: fmt::Debug + Send + Sync {
    /// A short human-readable name, e.g. `"stack(cap=4, vals=2)"`.
    fn name(&self) -> String;

    /// The finite universe of update operations used by the property
    /// checkers when searching for witnesses.
    fn operations(&self) -> Vec<Operation>;

    /// Candidate initial states `q0` for witness search. For most types this
    /// is the full (finite) state space or a designated subset containing
    /// the states the paper's constructions start from.
    fn initial_states(&self) -> Vec<Value>;

    /// Applies `op` to `state`, returning the transition, or an error if
    /// `op`/`state` are not part of the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownOperation`] or [`SpecError::InvalidState`]
    /// when `op` or `state` fall outside the specification.
    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError>;

    /// Whether the type is readable (has a `Read` operation that returns the
    /// entire state without changing it). Defaults to `true`; every type in
    /// this crate is readable.
    fn is_readable(&self) -> bool {
        true
    }

    /// Applies `op` to `state`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not in the operation universe or `state` is not a
    /// valid state — both indicate programmer error. Use
    /// [`try_apply`](ObjectType::try_apply) for a fallible variant.
    fn apply(&self, state: &Value, op: &Operation) -> Transition {
        match self.try_apply(state, op) {
            Ok(t) => t,
            Err(e) => panic!("specification misuse: {e}"),
        }
    }

    /// All states reachable from `q0` by applying update operations
    /// (breadth-first closure). Used by the checkers and by diagram printers.
    fn reachable_states(&self, q0: &Value) -> BTreeSet<Value> {
        let ops = self.operations();
        let mut seen = BTreeSet::new();
        let mut frontier = VecDeque::new();
        seen.insert(q0.clone());
        frontier.push_back(q0.clone());
        while let Some(state) = frontier.pop_front() {
            for op in &ops {
                let t = self.apply(&state, op);
                if seen.insert(t.next.clone()) {
                    frontier.push_back(t.next);
                }
            }
        }
        seen
    }

    /// Checks that `state` is a valid state of the type: since
    /// implementations are total over valid states, **every** operation
    /// in the universe must accept it.
    ///
    /// Allocation-time validation (e.g. `Memory::alloc_object` in
    /// `rc-runtime`) goes through this method; probing a single
    /// operation is not enough, because a state rejected by every
    /// *other* operation would slip through and fail much later.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] produced by an operation that
    /// rejects `state`.
    fn validate_state(&self, state: &Value) -> Result<(), SpecError> {
        for op in self.operations() {
            self.try_apply(state, &op)?;
        }
        Ok(())
    }

    /// Applies a sequence of operations starting at `q0`, returning the final
    /// state and each operation's response (a convenience for tests and for
    /// the commute/overwrite analysis of Appendix D/H).
    fn apply_all(&self, q0: &Value, ops: &[Operation]) -> (Value, Vec<Value>) {
        let mut state = q0.clone();
        let mut responses = Vec::with_capacity(ops.len());
        for op in ops {
            let t = self.apply(&state, op);
            state = t.next;
            responses.push(t.response);
        }
        (state, responses)
    }
}

impl ObjectType for std::sync::Arc<dyn ObjectType> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn operations(&self) -> Vec<Operation> {
        (**self).operations()
    }
    fn initial_states(&self) -> Vec<Value> {
        (**self).initial_states()
    }
    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        (**self).try_apply(state, op)
    }
    fn is_readable(&self) -> bool {
        (**self).is_readable()
    }
    fn validate_state(&self, state: &Value) -> Result<(), SpecError> {
        (**self).validate_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TestAndSet;
    use std::sync::Arc;

    #[test]
    fn operation_display() {
        assert_eq!(Operation::nullary("tas").to_string(), "tas");
        assert_eq!(Operation::new("push", Value::Int(1)).to_string(), "push(1)");
    }

    #[test]
    fn reachable_states_of_tas() {
        let tas = TestAndSet::new();
        let reach = tas.reachable_states(&Value::Bool(false));
        assert_eq!(reach.len(), 2);
        assert!(reach.contains(&Value::Bool(true)));
    }

    #[test]
    fn apply_all_collects_responses() {
        let tas = TestAndSet::new();
        let op = Operation::nullary("tas");
        let (state, resps) = tas.apply_all(&Value::Bool(false), &[op.clone(), op]);
        assert_eq!(state, Value::Bool(true));
        assert_eq!(resps, vec![Value::Bool(false), Value::Bool(true)]);
    }

    #[test]
    fn arc_forwarding() {
        let tas: Arc<dyn ObjectType> = Arc::new(TestAndSet::new());
        assert_eq!(tas.name(), "test-and-set");
        assert!(tas.is_readable());
        assert_eq!(tas.operations().len(), 1);
        assert_eq!(tas.initial_states().len(), 2);
        let t = tas.apply(&Value::Bool(false), &Operation::nullary("tas"));
        assert_eq!(t.next, Value::Bool(true));
    }

    #[test]
    fn apply_panics_on_unknown_op() {
        let tas = TestAndSet::new();
        let result = std::panic::catch_unwind(|| {
            tas.apply(&Value::Bool(false), &Operation::nullary("nope"))
        });
        assert!(result.is_err());
    }
}
