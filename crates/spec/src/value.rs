//! The dynamic value algebra used for object states, arguments and responses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically-typed value.
///
/// Object states, operation arguments and operation responses are all
/// [`Value`]s. The algebra is deliberately small: everything the paper's
/// types need (symbols such as `A`/`B`, the undefined value ⊥, integers,
/// tuples for compound states, and sequences for stack/queue contents).
///
/// `Value` is totally ordered and hashable so it can key the breadth-first
/// searches performed by the property checkers in `rc-core`.
///
/// # Example
///
/// ```
/// use rc_spec::Value;
///
/// let state = Value::triple(Value::sym("A"), Value::Int(0), Value::Int(1));
/// assert_eq!(state.to_string(), "(A, 0, 1)");
/// assert!(Value::Bottom.is_bottom());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// The undefined / initial value ⊥ (used for fresh registers and for the
    /// `winner = ⊥` component of the paper's type `T_n`).
    Bottom,
    /// The unit response `ack` returned by operations that carry no data.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A symbolic constant, e.g. `A`, `B`.
    Sym(String),
    /// A fixed-arity compound value (used for compound object states).
    Tuple(Vec<Value>),
    /// A variable-length sequence (used for stack / queue contents).
    List(Vec<Value>),
}

impl Value {
    /// Creates a symbolic constant.
    ///
    /// ```
    /// # use rc_spec::Value;
    /// assert_eq!(Value::sym("A").to_string(), "A");
    /// ```
    pub fn sym(name: impl Into<String>) -> Self {
        Value::Sym(name.into())
    }

    /// Creates a pair `(a, b)`.
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Tuple(vec![a, b])
    }

    /// Creates a triple `(a, b, c)`.
    pub fn triple(a: Value, b: Value, c: Value) -> Self {
        Value::Tuple(vec![a, b, c])
    }

    /// Creates an empty list (e.g. an empty stack).
    pub fn empty_list() -> Self {
        Value::List(Vec::new())
    }

    /// Returns `true` if this value is ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Value::Bottom)
    }

    /// Returns the integer payload, if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the symbol name, if this value is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the components, if this value is a [`Value::Tuple`].
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the elements, if this value is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// A rough size measure used by trace encoders and state-space budgets:
    /// the number of leaf values contained in `self`.
    pub fn weight(&self) -> usize {
        match self {
            Value::Tuple(items) | Value::List(items) => {
                1 + items.iter().map(Value::weight).sum::<usize>()
            }
            _ => 1,
        }
    }
}

impl Default for Value {
    /// The default value is ⊥, matching the paper's convention that
    /// registers are initialized to ⊥.
    fn default() -> Self {
        Value::Bottom
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bottom => write!(f, "⊥"),
            Value::Unit => write!(f, "ack"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bottom.to_string(), "⊥");
        assert_eq!(Value::Unit.to_string(), "ack");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(
            Value::pair(Value::sym("B"), Value::Int(0)).to_string(),
            "(B, 0)"
        );
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut set = BTreeSet::new();
        set.insert(Value::Bottom);
        set.insert(Value::Int(1));
        set.insert(Value::Int(0));
        set.insert(Value::sym("A"));
        set.insert(Value::pair(Value::Bottom, Value::Unit));
        assert_eq!(set.len(), 5);
        // Re-inserting identical values does not grow the set.
        set.insert(Value::Int(1));
        set.insert(Value::sym("A"));
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn default_is_bottom() {
        assert!(Value::default().is_bottom());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::sym("A").as_sym(), Some("A"));
        assert_eq!(Value::Bottom.as_int(), None);
        let t = Value::pair(Value::Int(1), Value::Int(2));
        assert_eq!(t.as_tuple().map(|s| s.len()), Some(2));
        let l = Value::List(vec![Value::Int(1)]);
        assert_eq!(l.as_list().map(|s| s.len()), Some(1));
    }

    #[test]
    fn weight_counts_leaves() {
        assert_eq!(Value::Int(1).weight(), 1);
        assert_eq!(
            Value::pair(Value::Int(1), Value::pair(Value::Int(2), Value::Int(3))).weight(),
            5
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("A"), Value::sym("A"));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::triple(Value::Bottom, Value::Int(3), Value::sym("B"));
        let json = serde_json_like(&v);
        // We only check that serialization is stable/deterministic via Debug,
        // since no JSON crate is available offline.
        assert!(json.contains("Tuple"));
    }

    fn serde_json_like(v: &Value) -> String {
        format!("{v:?}")
    }
}
