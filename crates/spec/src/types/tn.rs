//! The paper's type `T_n` (Fig. 5, Proposition 19): *n*-discerning but not
//! (*n*−1)-recording.

use crate::types::{TEAM_A, TEAM_B};
use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// The type `T_n` from Proposition 19 of the paper (behaviour in Fig. 5).
///
/// States are `(winner, row, col)` with `winner ∈ {⊥, A, B}`,
/// `0 ≤ row < ⌈n/2⌉`, `0 ≤ col < ⌊n/2⌋`, plus the forget state `(⊥, 0, 0)`.
/// The two update operations `opA` and `opB` execute the paper's lines
/// 53–80 atomically:
///
/// * on `winner = ⊥`, the operation installs its own team as the winner and
///   returns that team's name;
/// * otherwise it returns the current winner, advances its team's counter
///   (`col` for `opA`, `row` for `opB`), and if the counter wraps
///   (`⌊n/2⌋` `opA`s or `⌈n/2⌉` `opB`s past the first update) the object
///   **forgets** everything by returning to `(⊥, 0, 0)`.
///
/// `T_n` is *n*-discerning — one object solves *n*-process team consensus —
/// so `cons(T_n) = n`. But it is **not** (*n*−1)-recording: after a single
/// `opB`, the ⌊n/2⌋ processes of team A can drive the state back to
/// `(⊥, 0, 0)`, erasing the evidence a crashed process would need. Hence
/// `rcons(T_n) < cons(T_n)` (Corollary 20) — the paper's witness that
/// recoverable consensus is strictly harder than consensus.
///
/// # Example
///
/// ```
/// use rc_spec::{ObjectType, Value};
/// use rc_spec::types::Tn;
///
/// let t6 = Tn::new(6);
/// let q0 = Tn::forget_state();
/// let (state, resps) = t6.apply_all(&q0, &[Tn::op_b(), Tn::op_a(), Tn::op_a(), Tn::op_a()]);
/// // One opB then ⌊6/2⌋ = 3 opA's: the object has forgotten everything.
/// assert_eq!(state, q0);
/// assert_eq!(resps[0], Value::sym("B"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tn {
    n: usize,
}

impl Tn {
    /// Creates `T_n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`; the paper defines `T_n` for n ≥ 4
    /// (Proposition 19). Use [`Tn::try_new`] for a fallible constructor.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidParameter`] if `n < 4`.
    pub fn try_new(n: usize) -> Result<Self, SpecError> {
        if n < 4 {
            return Err(SpecError::InvalidParameter {
                type_name: "T_n".into(),
                message: format!("n must be at least 4, got {n}"),
            });
        }
        Ok(Tn { n })
    }

    /// The parameter `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `⌊n/2⌋`, the column modulus (team A's counter).
    pub fn cols(&self) -> i64 {
        (self.n / 2) as i64
    }

    /// `⌈n/2⌉`, the row modulus (team B's counter).
    pub fn rows(&self) -> i64 {
        self.n.div_ceil(2) as i64
    }

    /// The forget state `(⊥, 0, 0)` — the `q0` of all the paper's arguments.
    pub fn forget_state() -> Value {
        Value::triple(Value::Bottom, Value::Int(0), Value::Int(0))
    }

    /// The `opA` operation.
    pub fn op_a() -> Operation {
        Operation::nullary("opA")
    }

    /// The `opB` operation.
    pub fn op_b() -> Operation {
        Operation::nullary("opB")
    }

    fn decode(&self, state: &Value) -> Option<(Value, i64, i64)> {
        let parts = state.as_tuple()?;
        if parts.len() != 3 {
            return None;
        }
        let winner = parts[0].clone();
        let row = parts[1].as_int()?;
        let col = parts[2].as_int()?;
        let winner_ok = match &winner {
            Value::Bottom => row == 0 && col == 0,
            Value::Sym(s) => s == TEAM_A || s == TEAM_B,
            _ => false,
        };
        if !winner_ok || !(0..self.rows()).contains(&row) || !(0..self.cols()).contains(&col) {
            return None;
        }
        Some((winner, row, col))
    }
}

impl ObjectType for Tn {
    fn name(&self) -> String {
        format!("T_{}", self.n)
    }

    fn operations(&self) -> Vec<Operation> {
        vec![Tn::op_a(), Tn::op_b()]
    }

    fn initial_states(&self) -> Vec<Value> {
        // Full state space: (⊥,0,0) plus (winner, row, col).
        let mut states = vec![Tn::forget_state()];
        for winner in [TEAM_A, TEAM_B] {
            for row in 0..self.rows() {
                for col in 0..self.cols() {
                    states.push(Value::triple(
                        Value::sym(winner),
                        Value::Int(row),
                        Value::Int(col),
                    ));
                }
            }
        }
        states
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let (winner, row, col) = self.decode(state).ok_or_else(|| SpecError::InvalidState {
            type_name: self.name(),
            state: state.clone(),
        })?;
        match op.name.as_str() {
            // Lines 53–66 of the paper.
            "opA" => {
                if winner.is_bottom() {
                    Ok(Transition::new(
                        Value::triple(Value::sym(TEAM_A), Value::Int(row), Value::Int(col)),
                        Value::sym(TEAM_A),
                    ))
                } else {
                    let result = winner.clone();
                    let col = (col + 1).rem_euclid(self.cols());
                    let next = if col == 0 {
                        Tn::forget_state()
                    } else {
                        Value::triple(winner, Value::Int(row), Value::Int(col))
                    };
                    Ok(Transition::new(next, result))
                }
            }
            // Lines 67–80 of the paper.
            "opB" => {
                if winner.is_bottom() {
                    Ok(Transition::new(
                        Value::triple(Value::sym(TEAM_B), Value::Int(row), Value::Int(col)),
                        Value::sym(TEAM_B),
                    ))
                } else {
                    let result = winner.clone();
                    let row = (row + 1).rem_euclid(self.rows());
                    let next = if row == 0 {
                        Tn::forget_state()
                    } else {
                        Value::triple(winner, Value::Int(row), Value::Int(col))
                    };
                    Ok(Transition::new(next, result))
                }
            }
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_small_n() {
        assert!(Tn::try_new(3).is_err());
        assert!(Tn::try_new(4).is_ok());
    }

    #[test]
    fn first_update_installs_winner() {
        let t = Tn::new(6);
        let ta = t.apply(&Tn::forget_state(), &Tn::op_a());
        assert_eq!(ta.response, Value::sym("A"));
        assert_eq!(
            ta.next,
            Value::triple(Value::sym("A"), Value::Int(0), Value::Int(0))
        );
        let tb = t.apply(&Tn::forget_state(), &Tn::op_b());
        assert_eq!(tb.response, Value::sym("B"));
    }

    #[test]
    fn every_response_names_first_team_while_remembered() {
        // From q0, any sequence of ≤ min(⌊n/2⌋, ⌈n/2⌉) distinct-process
        // operations returns the name of the first team.
        let t = Tn::new(6);
        let (state, resps) = t.apply_all(
            &Tn::forget_state(),
            &[Tn::op_b(), Tn::op_a(), Tn::op_b(), Tn::op_a()],
        );
        assert!(resps.iter().all(|r| *r == Value::sym("B")));
        assert_ne!(state, Tn::forget_state());
    }

    #[test]
    fn forgets_after_floor_n_half_op_a() {
        // Fig. 5 / Proposition 19: one opB then ⌊n/2⌋ opA's return to q0.
        for n in 4..=9 {
            let t = Tn::new(n);
            let mut ops = vec![Tn::op_b()];
            ops.extend(std::iter::repeat(Tn::op_a()).take(n / 2));
            let (state, _) = t.apply_all(&Tn::forget_state(), &ops);
            assert_eq!(state, Tn::forget_state(), "n = {n}");
        }
    }

    #[test]
    fn forgets_after_ceil_n_half_op_b() {
        for n in 4..=9 {
            let t = Tn::new(n);
            let mut ops = vec![Tn::op_a()];
            ops.extend(std::iter::repeat(Tn::op_b()).take(n.div_ceil(2)));
            let (state, _) = t.apply_all(&Tn::forget_state(), &ops);
            assert_eq!(state, Tn::forget_state(), "n = {n}");
        }
    }

    #[test]
    fn does_not_forget_one_step_early() {
        let n = 6;
        let t = Tn::new(n);
        let mut ops = vec![Tn::op_b()];
        ops.extend(std::iter::repeat(Tn::op_a()).take(n / 2 - 1));
        let (state, _) = t.apply_all(&Tn::forget_state(), &ops);
        assert_ne!(state, Tn::forget_state());
    }

    #[test]
    fn state_space_size_matches_fig5() {
        // 2 · ⌈n/2⌉ · ⌊n/2⌋ + 1 states.
        let t = Tn::new(6);
        assert_eq!(t.initial_states().len(), 2 * 3 * 3 + 1);
        let reach = t.reachable_states(&Tn::forget_state());
        assert!(reach.len() <= t.initial_states().len());
        assert!(reach.contains(&Tn::forget_state()));
    }

    #[test]
    fn rejects_garbage() {
        let t = Tn::new(4);
        assert!(t.try_apply(&Value::Int(0), &Tn::op_a()).is_err());
        assert!(t
            .try_apply(
                &Value::triple(Value::sym("C"), Value::Int(0), Value::Int(0)),
                &Tn::op_a()
            )
            .is_err());
        assert!(t
            .try_apply(
                // (⊥, row, col) with nonzero counters is not a state.
                &Value::triple(Value::Bottom, Value::Int(1), Value::Int(0)),
                &Tn::op_a()
            )
            .is_err());
        assert!(t
            .try_apply(&Tn::forget_state(), &Operation::nullary("opC"))
            .is_err());
    }
}
