//! Bounded FIFO queue (Appendix H remark: `rcons(queue) = 1`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A FIFO queue bounded to `capacity` elements over `{0, …, values−1}` —
/// **not readable**, like the classic queue of the paper's Appendix H.
///
/// The state is a [`Value::List`] with the *front* of the queue first.
/// `Deq` on an empty queue returns ⊥; `Enq` on a full queue leaves the
/// state unchanged and returns `full` (a finiteness device, as for
/// [`Stack`](crate::types::Stack)).
///
/// `cons(queue) = 2` (Herlihy 1991). The final remark of Appendix H states
/// that an argument similar to the stack's shows `rcons(queue) = 1`.
/// As with the stack, the queue's transition structure satisfies the
/// discerning/recording definitions at every level (the *front* element of
/// an enq-only execution records the first team), but without a `Read`
/// operation the record can only be consumed destructively, so the paper's
/// positive theorems do not apply — see the readability discussion on
/// [`Stack`](crate::types::Stack).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Queue {
    capacity: usize,
    values: i64,
}

impl Queue {
    /// Creates a queue with the given capacity and value-domain size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `values == 0`.
    pub fn new(capacity: usize, values: u32) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(values > 0, "queue value domain must be non-empty");
        Queue {
            capacity,
            values: i64::from(values),
        }
    }

    fn all_states(&self) -> Vec<Value> {
        let mut states = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..self.capacity {
            let mut next = Vec::new();
            for st in &frontier {
                for v in 0..self.values {
                    let mut s = st.clone();
                    s.push(Value::Int(v));
                    next.push(s);
                }
            }
            states.extend(next.iter().cloned());
            frontier = next;
        }
        states.into_iter().map(Value::List).collect()
    }
}

impl ObjectType for Queue {
    fn name(&self) -> String {
        format!("queue(cap={}, vals={})", self.capacity, self.values)
    }

    fn operations(&self) -> Vec<Operation> {
        let mut ops: Vec<Operation> = (0..self.values)
            .map(|v| Operation::new("enq", Value::Int(v)))
            .collect();
        ops.push(Operation::nullary("deq"));
        ops
    }

    fn initial_states(&self) -> Vec<Value> {
        self.all_states()
    }

    fn is_readable(&self) -> bool {
        false
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let items = state.as_list().ok_or_else(|| SpecError::InvalidState {
            type_name: self.name(),
            state: state.clone(),
        })?;
        match op.name.as_str() {
            "enq" => {
                let v = op.arg.as_int().filter(|i| (0..self.values).contains(i));
                let v = v.ok_or_else(|| SpecError::UnknownOperation {
                    type_name: self.name(),
                    op: op.clone(),
                })?;
                if items.len() >= self.capacity {
                    return Ok(Transition::new(state.clone(), Value::sym("full")));
                }
                let mut next = items.to_vec();
                next.push(Value::Int(v));
                Ok(Transition::new(Value::List(next), Value::Unit))
            }
            "deq" => {
                if items.is_empty() {
                    Ok(Transition::new(state.clone(), Value::Bottom))
                } else {
                    let mut next = items.to_vec();
                    let front = next.remove(0);
                    Ok(Transition::new(Value::List(next), front))
                }
            }
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(v: i64) -> Operation {
        Operation::new("enq", Value::Int(v))
    }
    fn deq() -> Operation {
        Operation::nullary("deq")
    }

    #[test]
    fn fifo_order() {
        let q = Queue::new(4, 2);
        let (state, resps) =
            q.apply_all(&Value::empty_list(), &[enq(0), enq(1), deq(), deq(), deq()]);
        assert_eq!(state, Value::empty_list());
        assert_eq!(
            resps,
            vec![
                Value::Unit,
                Value::Unit,
                Value::Int(0),
                Value::Int(1),
                Value::Bottom
            ]
        );
    }

    #[test]
    fn deq_on_empty_is_identity() {
        let q = Queue::new(2, 2);
        let t = q.apply(&Value::empty_list(), &deq());
        assert_eq!(t.next, Value::empty_list());
        assert_eq!(t.response, Value::Bottom);
    }

    #[test]
    fn full_queue_rejects_enq() {
        let q = Queue::new(1, 2);
        let q0 = Value::List(vec![Value::Int(0)]);
        let t = q.apply(&q0, &enq(1));
        assert_eq!(t.next, q0);
        assert_eq!(t.response, Value::sym("full"));
    }

    #[test]
    fn enqueues_do_not_commute_on_state() {
        // [enq(0), enq(1)] vs [enq(1), enq(0)] differ — the 2-process
        // consensus protocol for queues relies on this.
        let q = Queue::new(4, 2);
        let (a, _) = q.apply_all(&Value::empty_list(), &[enq(0), enq(1)]);
        let (b, _) = q.apply_all(&Value::empty_list(), &[enq(1), enq(0)]);
        assert_ne!(a, b);
    }

    #[test]
    fn state_enumeration_counts() {
        let q = Queue::new(2, 2);
        assert_eq!(q.initial_states().len(), 7);
    }

    #[test]
    fn rejects_garbage() {
        let q = Queue::new(2, 2);
        assert!(q.try_apply(&Value::Bool(true), &deq()).is_err());
        assert!(q
            .try_apply(&Value::empty_list(), &Operation::nullary("peek"))
            .is_err());
    }
}
