//! Swap register (`cons = 2`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A swap register over `{⊥, 0, …, domain−1}`, initially ⊥.
///
/// `swap(v)` stores `v` and returns the previous value. Responses let two
/// processes order themselves (`cons(swap) = 2`), but the state remembers
/// only the *last* writer — a later swap overwrites all evidence of the
/// first — so swap is never 2-recording and `rcons(swap) ∈ {1, 2}` by the
/// paper's machinery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Swap {
    domain: i64,
}

impl Swap {
    /// Creates a swap register over `{⊥, 0, …, domain−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32) -> Self {
        assert!(domain > 0, "swap domain must be non-empty");
        Swap {
            domain: i64::from(domain),
        }
    }

    fn valid_state(&self, v: &Value) -> bool {
        v.is_bottom() || matches!(v.as_int(), Some(i) if (0..self.domain).contains(&i))
    }
}

impl ObjectType for Swap {
    fn name(&self) -> String {
        format!("swap(d={})", self.domain)
    }

    fn operations(&self) -> Vec<Operation> {
        (0..self.domain)
            .map(|v| Operation::new("swap", Value::Int(v)))
            .collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        let mut states = vec![Value::Bottom];
        states.extend((0..self.domain).map(Value::Int));
        states
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        if !self.valid_state(state) {
            return Err(SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            });
        }
        let v = op.arg.as_int().filter(|i| (0..self.domain).contains(i));
        match (op.name.as_str(), v) {
            ("swap", Some(v)) => Ok(Transition::new(Value::Int(v), state.clone())),
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swap(v: i64) -> Operation {
        Operation::new("swap", Value::Int(v))
    }

    #[test]
    fn returns_previous_value() {
        let s = Swap::new(3);
        let (state, resps) = s.apply_all(&Value::Bottom, &[swap(1), swap(2)]);
        assert_eq!(state, Value::Int(2));
        assert_eq!(resps, vec![Value::Bottom, Value::Int(1)]);
    }

    #[test]
    fn later_swap_overwrites() {
        // [swap(a), swap(b)] and [swap(b)] end in the same state.
        let s = Swap::new(3);
        let (a, _) = s.apply_all(&Value::Bottom, &[swap(1), swap(2)]);
        let (b, _) = s.apply_all(&Value::Bottom, &[swap(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        let s = Swap::new(2);
        assert!(s.try_apply(&Value::sym("x"), &swap(0)).is_err());
        assert!(s.try_apply(&Value::Bottom, &swap(9)).is_err());
    }
}
