//! Fetch-and-add over a bounded counter (`cons = 2`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A fetch-and-add register over `Z_modulus`, initially 0.
///
/// `add(k)` returns the old value and adds `k` (mod `modulus`). The responses
/// distinguish who went first among two processes (`cons(FAA) = 2`), but the
/// *state* is the order-independent sum, so no assignment of add operations
/// can make the final state depend on which team went first: FAA is never
/// 2-recording and the paper's machinery yields `rcons(FAA) ∈ {1, 2}`.
///
/// The modulus is a finiteness device for exact checking; for every analyzed
/// execution length `L` with increments from `increments`, choosing
/// `modulus > L · max(increments)` makes the bounded object behave exactly
/// like the unbounded one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchAdd {
    modulus: i64,
    increments: Vec<i64>,
}

impl FetchAdd {
    /// Creates a fetch-and-add object over `Z_modulus` with the given
    /// available increments.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0` or `increments` is empty.
    pub fn new(modulus: u32, increments: &[i64]) -> Self {
        assert!(modulus > 0, "modulus must be positive");
        assert!(!increments.is_empty(), "need at least one increment");
        FetchAdd {
            modulus: i64::from(modulus),
            increments: increments.to_vec(),
        }
    }
}

impl ObjectType for FetchAdd {
    fn name(&self) -> String {
        format!("fetch-add(m={}, incs={:?})", self.modulus, self.increments)
    }

    fn operations(&self) -> Vec<Operation> {
        self.increments
            .iter()
            .map(|k| Operation::new("add", Value::Int(*k)))
            .collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        (0..self.modulus).map(Value::Int).collect()
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let old = state
            .as_int()
            .filter(|i| (0..self.modulus).contains(i))
            .ok_or_else(|| SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            })?;
        if op.name != "add" {
            return Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            });
        }
        let k = op
            .arg
            .as_int()
            .filter(|k| self.increments.contains(k))
            .ok_or_else(|| SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            })?;
        let next = (old + k).rem_euclid(self.modulus);
        Ok(Transition::new(Value::Int(next), Value::Int(old)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(k: i64) -> Operation {
        Operation::new("add", Value::Int(k))
    }

    #[test]
    fn responses_reveal_order() {
        let f = FetchAdd::new(100, &[1, 2]);
        let (_, r1) = f.apply_all(&Value::Int(0), &[add(1), add(2)]);
        let (_, r2) = f.apply_all(&Value::Int(0), &[add(2), add(1)]);
        assert_eq!(r1, vec![Value::Int(0), Value::Int(1)]);
        assert_eq!(r2, vec![Value::Int(0), Value::Int(2)]);
    }

    #[test]
    fn state_is_order_independent() {
        // add(a); add(b) and add(b); add(a) commute on the state — the
        // structural reason FAA is never 2-recording.
        let f = FetchAdd::new(100, &[1, 2]);
        let (a, _) = f.apply_all(&Value::Int(0), &[add(1), add(2)]);
        let (b, _) = f.apply_all(&Value::Int(0), &[add(2), add(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn wraps_mod_m() {
        let f = FetchAdd::new(3, &[2]);
        let (state, _) = f.apply_all(&Value::Int(0), &[add(2), add(2)]);
        assert_eq!(state, Value::Int(1));
    }

    #[test]
    fn rejects_garbage() {
        let f = FetchAdd::new(3, &[1]);
        assert!(f.try_apply(&Value::Int(7), &add(1)).is_err());
        assert!(f.try_apply(&Value::Int(0), &add(9)).is_err());
        assert!(f
            .try_apply(&Value::Int(0), &Operation::nullary("sub"))
            .is_err());
    }
}
