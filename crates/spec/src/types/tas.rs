//! Test-and-set bit (`cons = 2`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A test-and-set bit: state is a [`Value::Bool`], initially `false`.
///
/// The single update operation `tas` sets the bit and returns the previous
/// value, so exactly one caller ever sees `false`. This solves 2-process
/// consensus (`cons(TAS) = 2`) but the *state* after any number of `tas`
/// operations is always `true`, so the object records nothing about *who*
/// set it first: `Q_A = Q_B = {true}` and the type is not 2-recording.
/// Consequently the paper's machinery bounds `rcons(TAS)` to `{1, 2}`
/// (the n = 2 gap is an open question in Section 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestAndSet;

impl TestAndSet {
    /// Creates a test-and-set bit.
    pub fn new() -> Self {
        TestAndSet
    }
}

impl ObjectType for TestAndSet {
    fn name(&self) -> String {
        "test-and-set".to_string()
    }

    fn operations(&self) -> Vec<Operation> {
        vec![Operation::nullary("tas")]
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::Bool(false), Value::Bool(true)]
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let old = state.as_bool().ok_or_else(|| SpecError::InvalidState {
            type_name: self.name(),
            state: state.clone(),
        })?;
        if op.name == "tas" {
            Ok(Transition::new(Value::Bool(true), Value::Bool(old)))
        } else {
            Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_first_caller_sees_false() {
        let tas = TestAndSet::new();
        let op = Operation::nullary("tas");
        let (state, resps) = tas.apply_all(&Value::Bool(false), &[op.clone(), op.clone(), op]);
        assert_eq!(state, Value::Bool(true));
        assert_eq!(
            resps,
            vec![Value::Bool(false), Value::Bool(true), Value::Bool(true)]
        );
    }

    #[test]
    fn state_forgets_the_winner() {
        // Both orders of two tas ops produce the same final state — the
        // structural reason TAS is not 2-recording.
        let tas = TestAndSet::new();
        let op = Operation::nullary("tas");
        let (a, _) = tas.apply_all(&Value::Bool(false), std::slice::from_ref(&op));
        let (b, _) = tas.apply_all(&Value::Bool(false), &[op.clone(), op]);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        let tas = TestAndSet::new();
        assert!(tas
            .try_apply(&Value::Int(0), &Operation::nullary("tas"))
            .is_err());
        assert!(tas
            .try_apply(&Value::Bool(false), &Operation::nullary("reset"))
            .is_err());
    }
}
