//! Compare-and-swap register (`cons = ∞`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A compare-and-swap register over `{⊥, 0, …, domain−1}`, initially ⊥.
///
/// `cas(exp, new)` atomically replaces the state with `new` iff it equals
/// `exp`, returning `true` on success. With `q0 = ⊥` and each process
/// assigned `cas(⊥, team)` the state permanently records which team updated
/// first, so CAS is *n*-recording for every *n* and `rcons(CAS) = ∞`
/// (matching `cons(CAS) = ∞`, Herlihy 1991). Section 5 of the paper notes
/// that recoverable CAS implementations make whole algorithm classes
/// recoverable — CAS is the "easy" end of the RC hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cas {
    domain: i64,
}

impl Cas {
    /// Creates a CAS register over `{⊥, 0, …, domain−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32) -> Self {
        assert!(domain > 0, "cas domain must be non-empty");
        Cas {
            domain: i64::from(domain),
        }
    }

    fn valid_state(&self, v: &Value) -> bool {
        v.is_bottom() || matches!(v.as_int(), Some(i) if (0..self.domain).contains(&i))
    }
}

impl ObjectType for Cas {
    fn name(&self) -> String {
        format!("cas(d={})", self.domain)
    }

    fn operations(&self) -> Vec<Operation> {
        // cas(exp, new) for exp ∈ {⊥} ∪ domain, new ∈ domain.
        let mut expected = vec![Value::Bottom];
        expected.extend((0..self.domain).map(Value::Int));
        let mut ops = Vec::new();
        for exp in &expected {
            for new in 0..self.domain {
                ops.push(Operation::new(
                    "cas",
                    Value::pair(exp.clone(), Value::Int(new)),
                ));
            }
        }
        ops
    }

    fn initial_states(&self) -> Vec<Value> {
        let mut states = vec![Value::Bottom];
        states.extend((0..self.domain).map(Value::Int));
        states
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        if !self.valid_state(state) {
            return Err(SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            });
        }
        if op.name != "cas" {
            return Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            });
        }
        let parts = op.arg.as_tuple().filter(|p| p.len() == 2);
        let parts = parts.ok_or_else(|| SpecError::UnknownOperation {
            type_name: self.name(),
            op: op.clone(),
        })?;
        let (exp, new) = (&parts[0], &parts[1]);
        if !self.valid_state(exp)
            || !matches!(new.as_int(), Some(i) if (0..self.domain).contains(&i))
        {
            return Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            });
        }
        if state == exp {
            Ok(Transition::new(new.clone(), Value::Bool(true)))
        } else {
            Ok(Transition::new(state.clone(), Value::Bool(false)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cas(exp: Value, new: i64) -> Operation {
        Operation::new("cas", Value::pair(exp, Value::Int(new)))
    }

    #[test]
    fn first_cas_from_bottom_wins() {
        let c = Cas::new(2);
        let (state, resps) = c.apply_all(
            &Value::Bottom,
            &[cas(Value::Bottom, 0), cas(Value::Bottom, 1)],
        );
        assert_eq!(state, Value::Int(0));
        assert_eq!(resps, vec![Value::Bool(true), Value::Bool(false)]);
    }

    #[test]
    fn state_records_winner_permanently() {
        let c = Cas::new(2);
        // No sequence of cas(⊥, ·) operations can move the state back to ⊥
        // or flip it between teams.
        let reach = c.reachable_states(&Value::Int(0));
        assert!(!reach.contains(&Value::Bottom));
    }

    #[test]
    fn successful_chain() {
        let c = Cas::new(3);
        let (state, resps) = c.apply_all(
            &Value::Bottom,
            &[cas(Value::Bottom, 1), cas(Value::Int(1), 2)],
        );
        assert_eq!(state, Value::Int(2));
        assert_eq!(resps, vec![Value::Bool(true), Value::Bool(true)]);
    }

    #[test]
    fn op_universe_size() {
        // (domain + 1) choices of expected × domain choices of new.
        assert_eq!(Cas::new(2).operations().len(), 6);
    }

    #[test]
    fn rejects_garbage() {
        let c = Cas::new(2);
        assert!(c
            .try_apply(&Value::sym("x"), &cas(Value::Bottom, 0))
            .is_err());
        assert!(c
            .try_apply(&Value::Bottom, &Operation::new("cas", Value::Int(0)))
            .is_err());
        assert!(c.try_apply(&Value::Bottom, &cas(Value::Int(5), 0)).is_err());
    }
}
