//! The catalog of concrete deterministic, readable object types.
//!
//! Every type the paper mentions (plus a few standard ones useful as
//! baselines) is implemented here as an [`ObjectType`](crate::ObjectType):
//!
//! | Type | Known `cons` | Paper reference |
//! |------|--------------|-----------------|
//! | [`Register`] | 1 | Section 1 (base objects) |
//! | [`Counter`] (inc-only) | 1 | baseline (commuting ops) |
//! | [`MaxRegister`] | 1 | baseline (overwriting/commuting ops) |
//! | [`TestAndSet`] | 2 | Section 5 (Attiya et al. discussion) |
//! | [`FetchAdd`] | 2 | baseline |
//! | [`Swap`] | 2 | baseline |
//! | [`Stack`] | 2 | Appendix H: `rcons(stack) = 1` |
//! | [`Queue`] | 2 | Appendix H remark: `rcons(queue) = 1` |
//! | [`Cas`] | ∞ | Section 5 (recoverable CAS discussion) |
//! | [`StickyRegister`] | ∞ | classic universal type |
//! | [`ConsensusObject`] | ∞ | used as the Fig. 4 base object |
//! | [`Tn`] | n | Fig. 5 / Proposition 19: n-discerning, not (n−1)-recording |
//! | [`Sn`] | n | Fig. 6 / Proposition 21: `rcons = cons = n` |

mod cas;
mod consensus_obj;
mod counter;
mod faa;
mod fetch_cons;
mod max_register;
mod queue;
mod readable_stack;
mod register;
mod sn;
mod stack;
mod sticky;
mod swap;
mod tas;
mod tn;

pub use cas::Cas;
pub use consensus_obj::ConsensusObject;
pub use counter::Counter;
pub use faa::FetchAdd;
pub use fetch_cons::FetchAndCons;
pub use max_register::MaxRegister;
pub use queue::Queue;
pub use readable_stack::ReadableStack;
pub use register::Register;
pub use sn::Sn;
pub use stack::Stack;
pub use sticky::StickyRegister;
pub use swap::Swap;
pub use tas::TestAndSet;
pub use tn::Tn;

/// The symbol used for team A in the paper's types.
pub const TEAM_A: &str = "A";
/// The symbol used for team B in the paper's types.
pub const TEAM_B: &str = "B";
