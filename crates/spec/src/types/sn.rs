//! The paper's type `S_n` (Fig. 6, Proposition 21): `rcons = cons = n`.

use crate::types::{TEAM_A, TEAM_B};
use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// The type `S_n` from Proposition 21 of the paper (behaviour in Fig. 6).
///
/// States are `(winner, row)` with `winner ∈ {A, B}` and `0 ≤ row < n`.
/// Both update operations return `ack`; all information flows through the
/// readable state. Executing the paper's lines 81–96 atomically:
///
/// * `opA` on `(B, 0)` installs `winner = A`; on any other state it resets
///   to `(B, 0)` — performing `opA` more than once destroys the record;
/// * `opB` increments `row` mod `n` and re-installs `winner = B` when the
///   row wraps — performing `opB` more than `n−1` times destroys the record.
///
/// With `q0 = (B, 0)`, team A = one process running `opA`, and team B =
/// `n−1` processes running `opB`, the `winner` component durably records
/// which team updated first for any execution by distinct processes, so
/// `S_n` is *n*-recording and `rcons(S_n) ≥ n` (Theorem 8). It is not
/// (*n*+1)-discerning, so `cons(S_n) ≤ n`, giving
/// `rcons(S_n) = cons(S_n) = n`: every level of the RC hierarchy is
/// populated.
///
/// # Example
///
/// ```
/// use rc_spec::{ObjectType, Value};
/// use rc_spec::types::Sn;
///
/// let s4 = Sn::new(4);
/// let t = s4.apply(&Sn::q0(), &Sn::op_a());
/// assert_eq!(t.next, Value::pair(Value::sym("A"), Value::Int(0)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sn {
    n: usize,
}

impl Sn {
    /// Creates `S_n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`; the paper defines the interesting `S_n` for n ≥ 2
    /// (for n = 1 it uses a read-only type). Use [`Sn::try_new`] for a
    /// fallible constructor.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidParameter`] if `n < 2`.
    pub fn try_new(n: usize) -> Result<Self, SpecError> {
        if n < 2 {
            return Err(SpecError::InvalidParameter {
                type_name: "S_n".into(),
                message: format!("n must be at least 2, got {n}"),
            });
        }
        Ok(Sn { n })
    }

    /// The parameter `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The canonical initial state `(B, 0)` used by Proposition 21.
    pub fn q0() -> Value {
        Value::pair(Value::sym(TEAM_B), Value::Int(0))
    }

    /// The `opA` operation.
    pub fn op_a() -> Operation {
        Operation::nullary("opA")
    }

    /// The `opB` operation.
    pub fn op_b() -> Operation {
        Operation::nullary("opB")
    }

    fn decode(&self, state: &Value) -> Option<(String, i64)> {
        let parts = state.as_tuple()?;
        if parts.len() != 2 {
            return None;
        }
        let winner = parts[0].as_sym()?.to_string();
        let row = parts[1].as_int()?;
        if (winner != TEAM_A && winner != TEAM_B) || !(0..self.n as i64).contains(&row) {
            return None;
        }
        Some((winner, row))
    }
}

impl ObjectType for Sn {
    fn name(&self) -> String {
        format!("S_{}", self.n)
    }

    fn operations(&self) -> Vec<Operation> {
        vec![Sn::op_a(), Sn::op_b()]
    }

    fn initial_states(&self) -> Vec<Value> {
        let mut states = Vec::new();
        for winner in [TEAM_A, TEAM_B] {
            for row in 0..self.n as i64 {
                states.push(Value::pair(Value::sym(winner), Value::Int(row)));
            }
        }
        states
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let (winner, row) = self.decode(state).ok_or_else(|| SpecError::InvalidState {
            type_name: self.name(),
            state: state.clone(),
        })?;
        match op.name.as_str() {
            // Lines 81–89 of the paper.
            "opA" => {
                let next = if winner == TEAM_B && row == 0 {
                    Value::pair(Value::sym(TEAM_A), Value::Int(0))
                } else {
                    Value::pair(Value::sym(TEAM_B), Value::Int(0))
                };
                Ok(Transition::new(next, Value::Unit))
            }
            // Lines 90–96 of the paper.
            "opB" => {
                let row = (row + 1).rem_euclid(self.n as i64);
                let winner = if row == 0 { TEAM_B.to_string() } else { winner };
                Ok(Transition::new(
                    Value::pair(Value::sym(winner), Value::Int(row)),
                    Value::Unit,
                ))
            }
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_small_n() {
        assert!(Sn::try_new(1).is_err());
        assert!(Sn::try_new(2).is_ok());
    }

    #[test]
    fn op_a_first_installs_a_durably() {
        let s = Sn::new(4);
        // opA then up to n−1 opB's: winner stays A.
        let (state, _) = s.apply_all(&Sn::q0(), &[Sn::op_a(), Sn::op_b(), Sn::op_b(), Sn::op_b()]);
        assert_eq!(
            state,
            Value::pair(Value::sym("A"), Value::Int(3)),
            "winner A survives n−1 opB's"
        );
    }

    #[test]
    fn op_b_first_keeps_b_winner() {
        let s = Sn::new(4);
        let (state, _) = s.apply_all(&Sn::q0(), &[Sn::op_b(), Sn::op_a()]);
        // opA applied to (B, 1) resets to (B, 0): winner stays B.
        assert_eq!(state, Sn::q0());
    }

    #[test]
    fn double_op_a_forgets() {
        // Proposition 21: opA performed more than once destroys the record:
        // [opA, opA, opB] and [opB] both reach (B, 1).
        let s = Sn::new(4);
        let (a, _) = s.apply_all(&Sn::q0(), &[Sn::op_a(), Sn::op_a(), Sn::op_b()]);
        let (b, _) = s.apply_all(&Sn::q0(), &[Sn::op_b()]);
        assert_eq!(a, b);
    }

    #[test]
    fn n_op_bs_then_op_a_looks_fresh() {
        // Proposition 21's (n+1)-discerning refutation: all of team B
        // (n processes) doing opB, then opA, reaches (A, 0) — exactly as if
        // opA ran alone.
        let n = 4;
        let s = Sn::new(n);
        let mut ops = vec![Sn::op_b(); n];
        ops.push(Sn::op_a());
        let (a, _) = s.apply_all(&Sn::q0(), &ops);
        let (b, _) = s.apply_all(&Sn::q0(), &[Sn::op_a()]);
        assert_eq!(a, b);
        assert_eq!(a, Value::pair(Value::sym("A"), Value::Int(0)));
    }

    #[test]
    fn state_space_size_matches_fig6() {
        let s = Sn::new(5);
        assert_eq!(s.initial_states().len(), 2 * 5);
    }

    #[test]
    fn all_responses_are_ack() {
        let s = Sn::new(3);
        for q in s.initial_states() {
            for op in s.operations() {
                assert_eq!(s.apply(&q, &op).response, Value::Unit);
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        let s = Sn::new(3);
        assert!(s.try_apply(&Value::Int(0), &Sn::op_a()).is_err());
        assert!(s
            .try_apply(&Value::pair(Value::sym("C"), Value::Int(0)), &Sn::op_a())
            .is_err());
        assert!(s
            .try_apply(&Value::pair(Value::sym("A"), Value::Int(9)), &Sn::op_a())
            .is_err());
        assert!(s.try_apply(&Sn::q0(), &Operation::nullary("opC")).is_err());
    }
}
