//! Read/write register over a finite value domain.

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A read/write register over the integer domain `{0, …, domain−1}`,
/// initialized to ⊥.
///
/// `Write(v)` overwrites any previous value, so any two writes overwrite
/// each other and the register has consensus number 1 (Herlihy 1991); it is
/// neither 2-discerning nor 2-recording, which the checkers in `rc-core`
/// verify.
///
/// # Example
///
/// ```
/// use rc_spec::{ObjectType, Operation, Value};
/// use rc_spec::types::Register;
///
/// let r = Register::new(3);
/// let t = r.apply(&Value::Bottom, &Operation::new("write", Value::Int(2)));
/// assert_eq!(t.next, Value::Int(2));
/// assert_eq!(t.response, Value::Unit);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Register {
    domain: i64,
}

impl Register {
    /// Creates a register over `{0, …, domain−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32) -> Self {
        assert!(domain > 0, "register domain must be non-empty");
        Register {
            domain: i64::from(domain),
        }
    }

    fn in_domain(&self, v: &Value) -> bool {
        matches!(v.as_int(), Some(i) if (0..self.domain).contains(&i))
    }
}

impl ObjectType for Register {
    fn name(&self) -> String {
        format!("register(d={})", self.domain)
    }

    fn operations(&self) -> Vec<Operation> {
        (0..self.domain)
            .map(|v| Operation::new("write", Value::Int(v)))
            .collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        let mut states = vec![Value::Bottom];
        states.extend((0..self.domain).map(Value::Int));
        states
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        if !state.is_bottom() && !self.in_domain(state) {
            return Err(SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            });
        }
        if op.name == "write" && self.in_domain(&op.arg) {
            Ok(Transition::new(op.arg.clone(), Value::Unit))
        } else {
            Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_overwrite() {
        let r = Register::new(2);
        let w0 = Operation::new("write", Value::Int(0));
        let w1 = Operation::new("write", Value::Int(1));
        let (s, _) = r.apply_all(&Value::Bottom, &[w0, w1.clone()]);
        let (s2, _) = r.apply_all(&Value::Bottom, &[w1]);
        assert_eq!(s, s2, "later write erases all evidence of earlier writes");
    }

    #[test]
    fn op_universe_size() {
        assert_eq!(Register::new(5).operations().len(), 5);
    }

    #[test]
    fn rejects_out_of_domain_write() {
        let r = Register::new(2);
        let bad = Operation::new("write", Value::Int(7));
        assert!(r.try_apply(&Value::Bottom, &bad).is_err());
    }

    #[test]
    fn rejects_invalid_state() {
        let r = Register::new(2);
        let w = Operation::new("write", Value::Int(0));
        assert!(r.try_apply(&Value::sym("junk"), &w).is_err());
    }

    #[test]
    fn reachable_space() {
        let r = Register::new(3);
        // ⊥ is not reachable again after a write, but from ⊥ we reach all 3.
        let reach = r.reachable_states(&Value::Bottom);
        assert_eq!(reach.len(), 4);
    }
}
