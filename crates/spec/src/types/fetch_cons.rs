//! Fetch-and-cons: atomically prepend and return the old list
//! (`cons = ∞`, Herlihy 1991).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A fetch-and-cons object over `{0, …, values−1}` with list length
/// bounded by `capacity` (a finiteness device; prepends beyond the bound
/// return `full` and leave the state unchanged).
///
/// `fetch_cons(v)` prepends `v` and returns the *old* list. Herlihy (1991)
/// showed `cons(fetch&cons) = ∞`: the returned list tells a process
/// everything that happened before its operation. The *state* equally
/// records the entire history (the last element is the first prepended
/// value), the state never returns to a previous value, and the type is
/// readable here — so it is *n*-recording for every `n` and
/// `rcons = cons = ∞`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchAndCons {
    capacity: usize,
    values: i64,
}

impl FetchAndCons {
    /// Creates a fetch-and-cons object.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `values == 0`.
    pub fn new(capacity: usize, values: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(values > 0, "value domain must be non-empty");
        FetchAndCons {
            capacity,
            values: i64::from(values),
        }
    }

    fn all_states(&self) -> Vec<Value> {
        let mut states = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..self.capacity {
            let mut next = Vec::new();
            for st in &frontier {
                for v in 0..self.values {
                    let mut s = vec![Value::Int(v)];
                    s.extend(st.iter().cloned());
                    next.push(s);
                }
            }
            states.extend(next.iter().cloned());
            frontier = next;
        }
        states.into_iter().map(Value::List).collect()
    }
}

impl ObjectType for FetchAndCons {
    fn name(&self) -> String {
        format!("fetch-cons(cap={}, vals={})", self.capacity, self.values)
    }

    fn operations(&self) -> Vec<Operation> {
        (0..self.values)
            .map(|v| Operation::new("fetch_cons", Value::Int(v)))
            .collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        self.all_states()
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let items = state.as_list().ok_or_else(|| SpecError::InvalidState {
            type_name: self.name(),
            state: state.clone(),
        })?;
        let v = op
            .arg
            .as_int()
            .filter(|i| (0..self.values).contains(i) && op.name == "fetch_cons")
            .ok_or_else(|| SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            })?;
        if items.len() >= self.capacity {
            return Ok(Transition::new(state.clone(), Value::sym("full")));
        }
        let mut next = vec![Value::Int(v)];
        next.extend(items.iter().cloned());
        Ok(Transition::new(Value::List(next), state.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fc(v: i64) -> Operation {
        Operation::new("fetch_cons", Value::Int(v))
    }

    #[test]
    fn prepends_and_returns_old_list() {
        let f = FetchAndCons::new(4, 2);
        let (state, resps) = f.apply_all(&Value::empty_list(), &[fc(0), fc(1)]);
        assert_eq!(state, Value::List(vec![Value::Int(1), Value::Int(0)]));
        assert_eq!(resps[0], Value::empty_list());
        assert_eq!(resps[1], Value::List(vec![Value::Int(0)]));
    }

    #[test]
    fn state_records_full_history() {
        // The LAST element is the first prepended value — a durable record
        // of who went first, never erased by later operations.
        let f = FetchAndCons::new(4, 2);
        let (a, _) = f.apply_all(&Value::empty_list(), &[fc(0), fc(1), fc(1)]);
        let (b, _) = f.apply_all(&Value::empty_list(), &[fc(1), fc(0), fc(1)]);
        assert_ne!(a, b);
        assert_eq!(a.as_list().and_then(|l| l.last()), Some(&Value::Int(0)));
        assert_eq!(b.as_list().and_then(|l| l.last()), Some(&Value::Int(1)));
    }

    #[test]
    fn full_is_a_no_op() {
        let f = FetchAndCons::new(1, 2);
        let q = Value::List(vec![Value::Int(0)]);
        let t = f.apply(&q, &fc(1));
        assert_eq!(t.next, q);
        assert_eq!(t.response, Value::sym("full"));
    }

    #[test]
    fn rejects_garbage() {
        let f = FetchAndCons::new(2, 2);
        assert!(f.try_apply(&Value::Int(0), &fc(0)).is_err());
        assert!(f.try_apply(&Value::empty_list(), &fc(9)).is_err());
        assert!(f
            .try_apply(&Value::empty_list(), &Operation::nullary("pop"))
            .is_err());
    }
}
