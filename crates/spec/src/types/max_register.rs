//! Max-register (`cons = 1`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A max-register over `{0, …, bound−1}`, initially 0.
///
/// `write_max(v)` replaces the state with `max(state, v)` and returns `ack`.
/// Any two `write_max` operations either commute or one overwrites the
/// other, so `cons(max-register) = rcons(max-register) = 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxRegister {
    bound: i64,
}

impl MaxRegister {
    /// Creates a max-register over `{0, …, bound−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn new(bound: u32) -> Self {
        assert!(bound > 0, "bound must be positive");
        MaxRegister {
            bound: i64::from(bound),
        }
    }
}

impl ObjectType for MaxRegister {
    fn name(&self) -> String {
        format!("max-register(b={})", self.bound)
    }

    fn operations(&self) -> Vec<Operation> {
        (0..self.bound)
            .map(|v| Operation::new("write_max", Value::Int(v)))
            .collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        (0..self.bound).map(Value::Int).collect()
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let cur = state
            .as_int()
            .filter(|i| (0..self.bound).contains(i))
            .ok_or_else(|| SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            })?;
        let v = op.arg.as_int().filter(|i| (0..self.bound).contains(i));
        match (op.name.as_str(), v) {
            ("write_max", Some(v)) => Ok(Transition::new(Value::Int(cur.max(v)), Value::Unit)),
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wmax(v: i64) -> Operation {
        Operation::new("write_max", Value::Int(v))
    }

    #[test]
    fn keeps_maximum() {
        let m = MaxRegister::new(5);
        let (state, _) = m.apply_all(&Value::Int(0), &[wmax(3), wmax(1), wmax(2)]);
        assert_eq!(state, Value::Int(3));
    }

    #[test]
    fn writes_commute() {
        let m = MaxRegister::new(5);
        let (a, _) = m.apply_all(&Value::Int(0), &[wmax(3), wmax(4)]);
        let (b, _) = m.apply_all(&Value::Int(0), &[wmax(4), wmax(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        let m = MaxRegister::new(2);
        assert!(m.try_apply(&Value::Int(9), &wmax(0)).is_err());
        assert!(m.try_apply(&Value::Int(0), &wmax(9)).is_err());
    }
}
