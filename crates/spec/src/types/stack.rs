//! Bounded stack (Appendix H: `cons(stack) = 2`, `rcons(stack) = 1`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A LIFO stack bounded to `capacity` elements over the value domain
/// `{0, …, values−1}` — **not readable**, like the classic stack of the
/// paper's Appendix H.
///
/// The state is a [`Value::List`] with the bottom of the stack first.
/// `Pop` on an empty stack returns ⊥ (the standard convention, used in the
/// paper's Fig. 8 case (e): "run p₂ until it Pops ⊥"). `Push` on a full
/// stack leaves the state unchanged and returns the symbol `full`; the
/// capacity is a *finiteness device* for the exact property checkers — all
/// experiments choose `capacity` at least as large as the number of
/// processes, so the bound is never hit on the analyzed executions and the
/// bounded type behaves exactly like the unbounded one.
///
/// Herlihy (1991) showed `cons(stack) = 2`; Appendix H of the paper shows
/// `rcons(stack) = 1`, i.e. a stack cannot solve even 2-process recoverable
/// consensus.
///
/// # Readability is the whole story here
///
/// Definitions 2 and 4 (discerning/recording) are statements about a
/// type's *transition structure* and do not mention reads; by their letter
/// the stack satisfies both at **every** level — in a push-only execution
/// the element at the *bottom* of the stack permanently records which team
/// pushed first. But the paper's positive results (Theorems 3 and 8) turn
/// those properties into consensus algorithms **only for readable types**,
/// and the classic stack has no `Read` operation: a process can learn the
/// recorded winner only by popping the stack down, which *destroys* the
/// record and cannot be retried after a crash. That destruction is exactly
/// what the Appendix H valency argument (Fig. 8) exploits. Accordingly
/// [`ObjectType::is_readable`] returns `false` for this type, and the
/// hierarchy harness refuses to derive `cons`/`rcons` bounds from the
/// property levels (it reports the literature values instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stack {
    capacity: usize,
    values: i64,
}

impl Stack {
    /// Creates a stack with the given capacity and value-domain size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `values == 0`.
    pub fn new(capacity: usize, values: u32) -> Self {
        assert!(capacity > 0, "stack capacity must be positive");
        assert!(values > 0, "stack value domain must be non-empty");
        Stack {
            capacity,
            values: i64::from(values),
        }
    }

    /// Enumerates every stack content of length ≤ capacity (used as the
    /// candidate `q0` set for exhaustive witness search).
    fn all_states(&self) -> Vec<Value> {
        let mut states = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..self.capacity {
            let mut next = Vec::new();
            for st in &frontier {
                for v in 0..self.values {
                    let mut s = st.clone();
                    s.push(Value::Int(v));
                    next.push(s);
                }
            }
            states.extend(next.iter().cloned());
            frontier = next;
        }
        states.into_iter().map(Value::List).collect()
    }
}

impl ObjectType for Stack {
    fn name(&self) -> String {
        format!("stack(cap={}, vals={})", self.capacity, self.values)
    }

    fn operations(&self) -> Vec<Operation> {
        let mut ops: Vec<Operation> = (0..self.values)
            .map(|v| Operation::new("push", Value::Int(v)))
            .collect();
        ops.push(Operation::nullary("pop"));
        ops
    }

    fn initial_states(&self) -> Vec<Value> {
        self.all_states()
    }

    fn is_readable(&self) -> bool {
        false
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let items = state.as_list().ok_or_else(|| SpecError::InvalidState {
            type_name: self.name(),
            state: state.clone(),
        })?;
        match op.name.as_str() {
            "push" => {
                let v = op.arg.as_int().filter(|i| (0..self.values).contains(i));
                let v = v.ok_or_else(|| SpecError::UnknownOperation {
                    type_name: self.name(),
                    op: op.clone(),
                })?;
                if items.len() >= self.capacity {
                    return Ok(Transition::new(state.clone(), Value::sym("full")));
                }
                let mut next = items.to_vec();
                next.push(Value::Int(v));
                Ok(Transition::new(Value::List(next), Value::Unit))
            }
            "pop" => {
                if items.is_empty() {
                    Ok(Transition::new(state.clone(), Value::Bottom))
                } else {
                    let mut next = items.to_vec();
                    let top = next.pop().expect("non-empty");
                    Ok(Transition::new(Value::List(next), top))
                }
            }
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(v: i64) -> Operation {
        Operation::new("push", Value::Int(v))
    }
    fn pop() -> Operation {
        Operation::nullary("pop")
    }

    #[test]
    fn lifo_order() {
        let s = Stack::new(4, 2);
        let (state, resps) = s.apply_all(
            &Value::empty_list(),
            &[push(0), push(1), pop(), pop(), pop()],
        );
        assert_eq!(state, Value::empty_list());
        assert_eq!(
            resps,
            vec![
                Value::Unit,
                Value::Unit,
                Value::Int(1),
                Value::Int(0),
                Value::Bottom
            ]
        );
    }

    #[test]
    fn pops_commute_fig8a() {
        // Fig. 8(a): two Pops commute (up to responses seen by a crashed
        // process) — here we check the *state* outcome is identical.
        let s = Stack::new(4, 2);
        let q0 = Value::List(vec![Value::Int(0), Value::Int(1)]);
        let (a, _) = s.apply_all(&q0, &[pop(), pop()]);
        let (b, _) = s.apply_all(&q0, &[pop(), pop()]);
        assert_eq!(a, b);
    }

    #[test]
    fn push_overwrites_pop_on_empty_fig8b() {
        // Fig. 8(b): on the empty stack, Push(v) overwrites Pop:
        // [Pop, Push(v)] and [Push(v)] leave the same state.
        let s = Stack::new(4, 2);
        let q0 = Value::empty_list();
        let (a, _) = s.apply_all(&q0, &[pop(), push(1)]);
        let (b, _) = s.apply_all(&q0, &[push(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn full_stack_rejects_push_without_state_change() {
        let s = Stack::new(1, 2);
        let q0 = Value::List(vec![Value::Int(0)]);
        let t = s.apply(&q0, &push(1));
        assert_eq!(t.next, q0);
        assert_eq!(t.response, Value::sym("full"));
    }

    #[test]
    fn state_enumeration_counts() {
        // capacity 2, 2 values: ε, 0, 1, 00, 01, 10, 11 → 7 states.
        let s = Stack::new(2, 2);
        assert_eq!(s.initial_states().len(), 7);
    }

    #[test]
    fn rejects_garbage() {
        let s = Stack::new(2, 2);
        assert!(s.try_apply(&Value::Int(3), &pop()).is_err());
        assert!(s
            .try_apply(&Value::empty_list(), &Operation::nullary("peek"))
            .is_err());
        assert!(s
            .try_apply(&Value::empty_list(), &Operation::new("push", Value::Int(9)))
            .is_err());
    }
}
