//! A stack **with** a `Read` operation — the foil to the classic stack.

use crate::types::Stack;
use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A bounded stack equipped with the `Read` operation of the paper's
/// readable types (footnote 3): the entire content can be read without
/// popping.
///
/// This type exists to demonstrate that **readability is the load-bearing
/// hypothesis** in the paper's stack results. The classic (non-readable)
/// stack has `cons = 2` and `rcons = 1` (Appendix H); but the moment a
/// `Read` operation is added, the stack's push-only recording structure —
/// the bottom element permanently records which team pushed first —
/// becomes *observable without destruction*, and Theorems 3 and 8 apply:
/// the readable stack is *n*-discerning and *n*-recording for every `n`
/// (up to its capacity), i.e. `rcons(readable stack) = cons(readable
/// stack) = ∞`. A readable stack is essentially a write-once log, the
/// classic universal object.
///
/// # Example
///
/// ```
/// use rc_spec::types::ReadableStack;
/// use rc_spec::ObjectType;
///
/// let s = ReadableStack::new(3, 2);
/// assert!(s.is_readable());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadableStack {
    inner: Stack,
}

impl ReadableStack {
    /// Creates a readable stack with the given capacity and value-domain
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `values == 0`.
    pub fn new(capacity: usize, values: u32) -> Self {
        ReadableStack {
            inner: Stack::new(capacity, values),
        }
    }
}

impl ObjectType for ReadableStack {
    fn name(&self) -> String {
        format!("readable-{}", self.inner.name())
    }

    fn operations(&self) -> Vec<Operation> {
        self.inner.operations()
    }

    fn initial_states(&self) -> Vec<Value> {
        self.inner.initial_states()
    }

    fn is_readable(&self) -> bool {
        true
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        self.inner.try_apply(state, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_transitions_as_the_classic_stack() {
        let readable = ReadableStack::new(3, 2);
        let classic = Stack::new(3, 2);
        for q in classic.initial_states() {
            for op in classic.operations() {
                assert_eq!(readable.apply(&q, &op), classic.apply(&q, &op));
            }
        }
    }

    #[test]
    fn readability_is_the_only_difference() {
        let readable = ReadableStack::new(3, 2);
        let classic = Stack::new(3, 2);
        assert!(readable.is_readable());
        assert!(!classic.is_readable());
        assert_eq!(readable.operations(), classic.operations());
    }
}
