//! Sticky register (`cons = ∞`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A sticky (write-once) register over `{⊥, 0, …, domain−1}`, initially ⊥.
///
/// The first `write(v)` sets the value permanently; later writes are
/// ignored. Since the state durably records the first update and can never
/// return to ⊥, the sticky register is *n*-recording for every *n*:
/// `rcons(sticky) = cons(sticky) = ∞`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StickyRegister {
    domain: i64,
}

impl StickyRegister {
    /// Creates a sticky register over `{⊥, 0, …, domain−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32) -> Self {
        assert!(domain > 0, "sticky domain must be non-empty");
        StickyRegister {
            domain: i64::from(domain),
        }
    }

    fn valid_state(&self, v: &Value) -> bool {
        v.is_bottom() || matches!(v.as_int(), Some(i) if (0..self.domain).contains(&i))
    }
}

impl ObjectType for StickyRegister {
    fn name(&self) -> String {
        format!("sticky(d={})", self.domain)
    }

    fn operations(&self) -> Vec<Operation> {
        (0..self.domain)
            .map(|v| Operation::new("write", Value::Int(v)))
            .collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        let mut states = vec![Value::Bottom];
        states.extend((0..self.domain).map(Value::Int));
        states
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        if !self.valid_state(state) {
            return Err(SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            });
        }
        let v = op.arg.as_int().filter(|i| (0..self.domain).contains(i));
        match (op.name.as_str(), v) {
            ("write", Some(v)) => {
                if state.is_bottom() {
                    Ok(Transition::new(Value::Int(v), Value::Unit))
                } else {
                    Ok(Transition::new(state.clone(), Value::Unit))
                }
            }
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(v: i64) -> Operation {
        Operation::new("write", Value::Int(v))
    }

    #[test]
    fn first_write_sticks() {
        let s = StickyRegister::new(3);
        let (state, _) = s.apply_all(&Value::Bottom, &[write(1), write(2), write(0)]);
        assert_eq!(state, Value::Int(1));
    }

    #[test]
    fn never_returns_to_bottom() {
        let s = StickyRegister::new(2);
        let reach = s.reachable_states(&Value::Int(0));
        assert_eq!(reach.len(), 1, "a stuck sticky register never changes");
    }

    #[test]
    fn rejects_garbage() {
        let s = StickyRegister::new(2);
        assert!(s.try_apply(&Value::Bool(true), &write(0)).is_err());
        assert!(s.try_apply(&Value::Bottom, &write(7)).is_err());
    }
}
