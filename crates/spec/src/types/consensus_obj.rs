//! Consensus object (`cons = ∞`), used as the Fig. 4 base object.

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// A consensus object over `{⊥, 0, …, domain−1}`, initially ⊥.
///
/// `propose(v)` sets the state to `v` if it is still ⊥ and returns the
/// decided value (the state after the operation). Like the sticky register,
/// the state durably records the first proposal, so the type is
/// *n*-recording for every *n* and `rcons = cons = ∞`. The Fig. 4
/// simultaneous-crash transformation uses instances of this type as its
/// black-box consensus base objects in tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusObject {
    domain: i64,
}

impl ConsensusObject {
    /// Creates a consensus object over `{⊥, 0, …, domain−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u32) -> Self {
        assert!(domain > 0, "consensus domain must be non-empty");
        ConsensusObject {
            domain: i64::from(domain),
        }
    }

    fn valid_state(&self, v: &Value) -> bool {
        v.is_bottom() || matches!(v.as_int(), Some(i) if (0..self.domain).contains(&i))
    }
}

impl ObjectType for ConsensusObject {
    fn name(&self) -> String {
        format!("consensus(d={})", self.domain)
    }

    fn operations(&self) -> Vec<Operation> {
        (0..self.domain)
            .map(|v| Operation::new("propose", Value::Int(v)))
            .collect()
    }

    fn initial_states(&self) -> Vec<Value> {
        let mut states = vec![Value::Bottom];
        states.extend((0..self.domain).map(Value::Int));
        states
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        if !self.valid_state(state) {
            return Err(SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            });
        }
        let v = op.arg.as_int().filter(|i| (0..self.domain).contains(i));
        match (op.name.as_str(), v) {
            ("propose", Some(v)) => {
                let decided = if state.is_bottom() {
                    Value::Int(v)
                } else {
                    state.clone()
                };
                Ok(Transition::new(decided.clone(), decided))
            }
            _ => Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn propose(v: i64) -> Operation {
        Operation::new("propose", Value::Int(v))
    }

    #[test]
    fn agreement_and_validity() {
        let c = ConsensusObject::new(3);
        let (state, resps) = c.apply_all(&Value::Bottom, &[propose(2), propose(0), propose(1)]);
        assert_eq!(state, Value::Int(2));
        assert!(resps.iter().all(|r| *r == Value::Int(2)));
    }

    #[test]
    fn first_proposal_decides() {
        let c = ConsensusObject::new(2);
        let t = c.apply(&Value::Bottom, &propose(1));
        assert_eq!(t.response, Value::Int(1));
    }

    #[test]
    fn rejects_garbage() {
        let c = ConsensusObject::new(2);
        assert!(c.try_apply(&Value::sym("?"), &propose(0)).is_err());
        assert!(c.try_apply(&Value::Bottom, &propose(5)).is_err());
    }
}
