//! Increment-only counter (`cons = 1`).

use crate::{ObjectType, Operation, SpecError, Transition, Value};

/// An increment-only counter over `Z_modulus`, initially 0.
///
/// `inc` adds one (mod `modulus`) and returns `ack`. All operations commute
/// and responses carry no information, so the counter cannot distinguish
/// orderings at all: `cons(counter) = rcons(counter) = 1`. A useful
/// weakest-level baseline for the hierarchy survey.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counter {
    modulus: i64,
}

impl Counter {
    /// Creates a counter over `Z_modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    pub fn new(modulus: u32) -> Self {
        assert!(modulus > 0, "modulus must be positive");
        Counter {
            modulus: i64::from(modulus),
        }
    }
}

impl ObjectType for Counter {
    fn name(&self) -> String {
        format!("counter(m={})", self.modulus)
    }

    fn operations(&self) -> Vec<Operation> {
        vec![Operation::nullary("inc")]
    }

    fn initial_states(&self) -> Vec<Value> {
        (0..self.modulus).map(Value::Int).collect()
    }

    fn try_apply(&self, state: &Value, op: &Operation) -> Result<Transition, SpecError> {
        let old = state
            .as_int()
            .filter(|i| (0..self.modulus).contains(i))
            .ok_or_else(|| SpecError::InvalidState {
                type_name: self.name(),
                state: state.clone(),
            })?;
        if op.name == "inc" {
            Ok(Transition::new(
                Value::Int((old + 1).rem_euclid(self.modulus)),
                Value::Unit,
            ))
        } else {
            Err(SpecError::UnknownOperation {
                type_name: self.name(),
                op: op.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_and_wraps() {
        let c = Counter::new(3);
        let inc = Operation::nullary("inc");
        let (state, resps) = c.apply_all(&Value::Int(0), &[inc.clone(), inc.clone(), inc]);
        assert_eq!(state, Value::Int(0));
        assert!(resps.iter().all(|r| *r == Value::Unit));
    }

    #[test]
    fn rejects_garbage() {
        let c = Counter::new(3);
        assert!(c
            .try_apply(&Value::Int(5), &Operation::nullary("inc"))
            .is_err());
        assert!(c
            .try_apply(&Value::Int(0), &Operation::nullary("dec"))
            .is_err());
    }
}
