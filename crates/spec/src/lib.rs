//! # rc-spec — deterministic sequential object-type specifications
//!
//! This crate is the *specification substrate* for the reproduction of
//! *“When Is Recoverable Consensus Harder Than Consensus?”*
//! (Delporte-Gallet, Fatourou, Fauconnier, Ruppert — PODC 2022).
//!
//! The paper studies **deterministic** shared object types: a sequential
//! specification gives, for each (state, operation) pair, a unique response
//! and successor state. A type is **readable** if it additionally supports a
//! `Read` operation returning the entire state without changing it.
//!
//! Everything in the paper — the [*n*-discerning] and [*n*-recording]
//! properties, the consensus and recoverable-consensus hierarchies — is a
//! statement about such specifications, so this crate makes them first-class
//! values:
//!
//! * [`Value`] — a small dynamic value algebra used for object states,
//!   operation arguments and responses.
//! * [`Operation`] — an operation name plus argument (e.g. `Write(42)`).
//! * [`ObjectType`] — the object-safe trait every type implements; it
//!   enumerates the (finite) update-operation universe and provides the
//!   deterministic transition function.
//! * [`types`] — the catalog: registers, stacks, queues, test-and-set,
//!   compare-and-swap, fetch-and-add, swap, sticky registers, counters,
//!   max-registers, consensus objects, and the paper's bespoke types
//!   [`types::Tn`] (Fig. 5, Proposition 19) and [`types::Sn`]
//!   (Fig. 6, Proposition 21).
//! * [`TableType`] — an explicit finite transition table, used to generate
//!   *random* deterministic types for property-based validation of the
//!   paper's implication diagram (Fig. 1).
//! * [`catalog`] — named catalog entries with the known consensus numbers
//!   from the literature, used by the experiment harness.
//!
//! The decision procedures for *n*-discerning / *n*-recording live in the
//! `rc-core` crate; the crash–recovery execution substrate lives in
//! `rc-runtime`.
//!
//! [*n*-discerning]: https://doi.org/10.1137/S0097539797329439
//! [*n*-recording]: https://arxiv.org/abs/2205.14213
//!
//! ## Example
//!
//! ```
//! use rc_spec::{ObjectType, Operation, Value};
//! use rc_spec::types::TestAndSet;
//!
//! let tas = TestAndSet::new();
//! let q0 = Value::Bool(false);
//! let op = Operation::nullary("tas");
//! let t = tas.apply(&q0, &op);
//! assert_eq!(t.response, Value::Bool(false)); // first caller wins
//! assert_eq!(t.next, Value::Bool(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod object;
mod table;
mod value;

pub mod catalog;
pub mod diagram;
pub mod random;
pub mod types;

pub use error::SpecError;
pub use object::{ObjectType, Operation, Transition};
pub use table::TableType;
pub use value::Value;

/// Convenient alias: a shared, dynamically-typed object specification.
pub type TypeHandle = std::sync::Arc<dyn ObjectType>;
