//! Random deterministic types for property-based validation.
//!
//! The paper's Figure 1 is a set of implications between properties of
//! *arbitrary* deterministic types. The strongest empirical validation we
//! can give (short of the proofs themselves) is to sample the space of
//! deterministic types uniformly and check every implication on each
//! sample. This module provides the sampler; `rc-core` provides the
//! checkers and the proptest suites.

use crate::{TableType, Value};
use rand::Rng;

/// Configuration for random type generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomTypeConfig {
    /// Number of states (≥ 1).
    pub num_states: usize,
    /// Number of update operations (≥ 1).
    pub num_ops: usize,
    /// Number of distinct response values; responses are drawn from
    /// `Int(0..num_responses)`. Use 1 to make responses carry no
    /// information (all `ack`-like).
    pub num_responses: usize,
}

impl Default for RandomTypeConfig {
    fn default() -> Self {
        RandomTypeConfig {
            num_states: 4,
            num_ops: 2,
            num_responses: 2,
        }
    }
}

/// Samples a uniformly random deterministic [`TableType`].
///
/// Every `(op, state)` entry independently draws a successor state and a
/// response uniformly at random.
///
/// # Panics
///
/// Panics if any configuration field is zero.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rc_spec::random::{random_table_type, RandomTypeConfig};
/// use rc_spec::ObjectType;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = random_table_type(&mut rng, RandomTypeConfig::default());
/// assert_eq!(t.operations().len(), 2);
/// ```
pub fn random_table_type<R: Rng + ?Sized>(rng: &mut R, config: RandomTypeConfig) -> TableType {
    assert!(config.num_states > 0, "need at least one state");
    assert!(config.num_ops > 0, "need at least one operation");
    assert!(config.num_responses > 0, "need at least one response");
    let mut table = Vec::with_capacity(config.num_ops);
    for _ in 0..config.num_ops {
        let mut row = Vec::with_capacity(config.num_states);
        for _ in 0..config.num_states {
            let next = rng.gen_range(0..config.num_states);
            let resp = Value::Int(rng.gen_range(0..config.num_responses) as i64);
            row.push((next, resp));
        }
        table.push(row);
    }
    TableType::new(
        format!(
            "random(s={}, o={}, r={})",
            config.num_states, config.num_ops, config.num_responses
        ),
        config.num_states,
        config.num_ops,
        table,
    )
    .expect("dimensions are correct by construction")
}

/// Samples a random type biased towards *recording-like* structure: the
/// first operation from state 0 always moves to state 1 and the second to
/// state 2 (when they exist), making it likelier that sampled types are
/// 2-recording — useful for exercising the positive branch of the checkers.
pub fn random_biased_type<R: Rng + ?Sized>(rng: &mut R, config: RandomTypeConfig) -> TableType {
    let mut t = random_table_type(rng, config);
    if config.num_states >= 3 && config.num_ops >= 2 {
        // Rebuild with pinned first transitions.
        let mut table: Vec<Vec<(usize, Value)>> = (0..config.num_ops)
            .map(|op| {
                (0..config.num_states)
                    .map(|s| {
                        let tr = t.apply(&t.state(s), &t.op(op));
                        (
                            tr.next.as_int().expect("table states are ints") as usize,
                            tr.response,
                        )
                    })
                    .collect()
            })
            .collect();
        table[0][0].0 = 1;
        table[1][0].0 = 2;
        t = TableType::new(
            format!("{}-biased", t.name()),
            config.num_states,
            config.num_ops,
            table,
        )
        .expect("dimensions preserved");
    }
    t
}

use crate::ObjectType;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = RandomTypeConfig::default();
        let a = random_table_type(&mut StdRng::seed_from_u64(42), config);
        let b = random_table_type(&mut StdRng::seed_from_u64(42), config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_eventually() {
        let config = RandomTypeConfig {
            num_states: 6,
            num_ops: 3,
            num_responses: 4,
        };
        let a = random_table_type(&mut StdRng::seed_from_u64(1), config);
        let b = random_table_type(&mut StdRng::seed_from_u64(2), config);
        assert_ne!(a, b);
    }

    #[test]
    fn biased_type_pins_first_transitions() {
        let config = RandomTypeConfig {
            num_states: 4,
            num_ops: 2,
            num_responses: 2,
        };
        let t = random_biased_type(&mut StdRng::seed_from_u64(3), config);
        assert_eq!(t.apply(&t.state(0), &t.op(0)).next, t.state(1));
        assert_eq!(t.apply(&t.state(0), &t.op(1)).next, t.state(2));
    }

    #[test]
    fn all_transitions_in_range() {
        let config = RandomTypeConfig {
            num_states: 5,
            num_ops: 3,
            num_responses: 2,
        };
        let t = random_table_type(&mut StdRng::seed_from_u64(9), config);
        for s in 0..5 {
            for o in 0..3 {
                let tr = t.apply(&t.state(s), &t.op(o));
                let next = tr.next.as_int().expect("int state");
                assert!((0..5).contains(&next));
            }
        }
    }
}
