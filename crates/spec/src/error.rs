//! Error types for the specification crate.

use crate::{Operation, Value};
use std::error::Error;
use std::fmt;

/// An error raised when a sequential specification is misused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The operation is not part of the type's operation universe.
    UnknownOperation {
        /// Name of the object type.
        type_name: String,
        /// The offending operation.
        op: Operation,
    },
    /// The state is not a valid state of the type.
    InvalidState {
        /// Name of the object type.
        type_name: String,
        /// The offending state.
        state: Value,
    },
    /// A construction parameter was out of range (e.g. `Tn::new(3)` — the
    /// paper defines `T_n` only for n ≥ 4).
    InvalidParameter {
        /// Name of the object type.
        type_name: String,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownOperation { type_name, op } => {
                write!(f, "unknown operation {op} for type {type_name}")
            }
            SpecError::InvalidState { type_name, state } => {
                write!(f, "invalid state {state} for type {type_name}")
            }
            SpecError::InvalidParameter { type_name, message } => {
                write!(f, "invalid parameter for type {type_name}: {message}")
            }
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpecError::UnknownOperation {
            type_name: "stack".into(),
            op: Operation::nullary("launch_missiles"),
        };
        let s = e.to_string();
        assert!(s.contains("launch_missiles"));
        assert!(s.contains("stack"));

        let e = SpecError::InvalidState {
            type_name: "tas".into(),
            state: Value::Int(7),
        };
        assert!(e.to_string().contains('7'));

        let e = SpecError::InvalidParameter {
            type_name: "T_n".into(),
            message: "n must be at least 4".into(),
        };
        assert!(e.to_string().contains("at least 4"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SpecError>();
    }
}
