//! Criterion bench: the E3 Fig. 4 transformation — execution cost versus
//! simultaneous-crash budget (each crash restarts every process and can
//! open a new round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::algorithms::{build_simultaneous_rc_system, ConsensusObjectFactory};
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig};
use rc_runtime::{run, CrashModel, RunOptions};
use rc_spec::Value;

fn bench_simultaneous(c: &mut Criterion) {
    let mut group = c.benchmark_group("simultaneous_rc");
    let factory = ConsensusObjectFactory { domain: 8 };
    let inputs: Vec<Value> = (0..4).map(Value::Int).collect();
    let opts = RunOptions {
        record_trace: false,
        ..RunOptions::default()
    };
    for crashes in [0usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("crash_budget", crashes),
            &crashes,
            |b, &crashes| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let (mut mem, mut programs) =
                        build_simultaneous_rc_system(&factory, &inputs, crashes + 4);
                    let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                        seed,
                        crash_prob: 0.05,
                        crash: CrashModel::simultaneous(crashes).after_decide(true),
                    });
                    let exec = run(&mut mem, &mut programs, &mut sched, opts);
                    assert!(exec.all_decided);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simultaneous);
criterion_main!(benches);
