//! Criterion bench: the E4/E5 decision procedures — witness search cost
//! for `T_n` and `S_n` as `n` grows (exponential in `n`, exact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::{find_discerning_witness, find_recording_witness};
use rc_spec::types::{Sn, Tn};

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    for n in [4usize, 5, 6, 7] {
        let tn = Tn::new(n);
        group.bench_with_input(BenchmarkId::new("tn_discerning", n), &n, |b, &n| {
            b.iter(|| {
                let w = find_discerning_witness(&tn, n);
                assert!(w.is_some());
            })
        });
        group.bench_with_input(
            BenchmarkId::new("tn_not_recording_n_minus_1", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let w = find_recording_witness(&tn, n - 1);
                    assert!(w.is_none());
                })
            },
        );
    }
    for n in [3usize, 5, 7] {
        let sn = Sn::new(n);
        group.bench_with_input(BenchmarkId::new("sn_recording", n), &n, |b, &n| {
            b.iter(|| {
                let w = find_recording_witness(&sn, n);
                assert!(w.is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
