//! Criterion bench: the bounded-exhaustive model checker — states/sec on
//! the Fig. 2 verification workload, versus crash budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::algorithms::build_team_rc_system;
use rc_core::{check_recording, Assignment};
use rc_runtime::{explore, CrashModel, ExploreConfig};
use rc_spec::types::Sn;
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

fn bench_explorer(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer");
    group.sample_size(10);
    let n = 3;
    let sn = Sn::new(n);
    let w = check_recording(
        &sn,
        &Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]),
    )
    .expect("S_3 witness");
    let ty: TypeHandle = Arc::new(sn);
    let mut inputs = vec![Value::Int(0)];
    inputs.extend(vec![Value::Int(1); n - 1]);
    for budget in [0usize, 1, 2] {
        group.bench_with_input(
            BenchmarkId::new("fig2_s3_crash_budget", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let outcome = explore(
                        &|| build_team_rc_system(ty.clone(), &w, &inputs),
                        &ExploreConfig {
                            crash: CrashModel::independent(budget).after_decide(true),
                            inputs: Some(inputs.clone()),
                            ..ExploreConfig::default()
                        },
                    );
                    assert!(outcome.is_verified());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_explorer);
criterion_main!(benches);
