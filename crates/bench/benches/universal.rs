//! Criterion bench: the E6 Fig. 7 universal construction — operations per
//! second on the deterministic simulator and on real threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rc_core::algorithms::ConsensusObjectFactory;
use rc_runtime::sched::RoundRobin;
use rc_runtime::threaded::{run_threaded, SharedMemory, ThreadedCrashPlan};
use rc_runtime::{run, Memory, Program, RunOptions};
use rc_spec::types::Counter;
use rc_spec::{Operation, Value};
use rc_universal::{RUniversalWorker, UniversalLayout};
use std::sync::Arc;

fn build(n: usize, ops_per: usize) -> (Memory, Arc<UniversalLayout>, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    let pool = 1 + n * ops_per;
    let layout = UniversalLayout::alloc(
        &mut mem,
        Arc::new(Counter::new(1 << 20)),
        Value::Int(0),
        n,
        ops_per,
        &ConsensusObjectFactory {
            domain: pool as u32,
        },
    );
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|pid| {
            Box::new(RUniversalWorker::new(
                layout.clone(),
                pid,
                vec![Operation::nullary("inc"); ops_per],
            )) as Box<dyn Program>
        })
        .collect();
    (mem, layout, programs)
}

fn bench_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("runiversal");
    let ops_per = 8;
    for n in [2usize, 4, 8] {
        group.throughput(Throughput::Elements((n * ops_per) as u64));
        group.bench_with_input(BenchmarkId::new("simulated", n), &n, |b, &n| {
            b.iter(|| {
                let (mut mem, _layout, mut programs) = build(n, ops_per);
                let exec = run(
                    &mut mem,
                    &mut programs,
                    &mut RoundRobin::new(),
                    RunOptions {
                        record_trace: false,
                        ..RunOptions::default()
                    },
                );
                assert!(exec.all_decided);
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |b, &n| {
            b.iter(|| {
                let (mem, _layout, programs) = build(n, ops_per);
                let shared = SharedMemory::from_memory(&mem);
                let reports =
                    run_threaded(&shared, programs, ThreadedCrashPlan::default(), 1_000_000);
                assert_eq!(reports.len(), n);
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded_with_crashes", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (mem, _layout, programs) = build(n, ops_per);
                let shared = SharedMemory::from_memory(&mem);
                let reports = run_threaded(
                    &shared,
                    programs,
                    ThreadedCrashPlan {
                        seed,
                        crash_prob: 0.01,
                        max_crashes_per_thread: 2,
                    },
                    1_000_000,
                );
                assert_eq!(reports.len(), n);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_universal);
criterion_main!(benches);
