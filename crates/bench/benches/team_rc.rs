//! Criterion bench: the E2 Fig. 2 algorithm — one full recoverable team
//! consensus execution (simulator), crash-free vs crashing schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::algorithms::build_team_rc_system;
use rc_core::{check_recording, Assignment, RecordingWitness};
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, RoundRobin};
use rc_runtime::{run, CrashModel, RunOptions};
use rc_spec::types::Sn;
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

fn witness(n: usize) -> (TypeHandle, RecordingWitness, Vec<Value>) {
    let sn = Sn::new(n);
    let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]);
    let w = check_recording(&sn, &a).expect("S_n witness");
    let mut inputs = vec![Value::Int(0)];
    inputs.extend(vec![Value::Int(1); n - 1]);
    (Arc::new(sn), w, inputs)
}

fn bench_team_rc(c: &mut Criterion) {
    let mut group = c.benchmark_group("team_rc");
    let opts = RunOptions {
        record_trace: false,
        ..RunOptions::default()
    };
    for n in [2usize, 4, 8] {
        let (ty, w, inputs) = witness(n);
        group.bench_with_input(BenchmarkId::new("crash_free", n), &n, |b, _| {
            b.iter(|| {
                let (mut mem, mut programs) = build_team_rc_system(ty.clone(), &w, &inputs);
                let exec = run(&mut mem, &mut programs, &mut RoundRobin::new(), opts);
                assert!(exec.all_decided);
            })
        });
        group.bench_with_input(BenchmarkId::new("with_crashes", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (mut mem, mut programs) = build_team_rc_system(ty.clone(), &w, &inputs);
                let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                    seed,
                    crash_prob: 0.2,
                    crash: CrashModel::independent(4),
                });
                let exec = run(&mut mem, &mut programs, &mut sched, opts);
                assert!(exec.all_decided);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_team_rc);
criterion_main!(benches);
