//! Criterion bench: the Appendix B tournament — full n-process RC cost
//! versus n, on CAS witnesses (rcons = ∞).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_core::algorithms::build_tournament_rc;
use rc_core::find_recording_witness;
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig};
use rc_runtime::{run, CrashModel, RunOptions};
use rc_spec::types::Cas;
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

fn bench_tournament(c: &mut Criterion) {
    let mut group = c.benchmark_group("tournament_rc");
    let opts = RunOptions {
        record_trace: false,
        ..RunOptions::default()
    };
    for n in [2usize, 4, 6, 8] {
        let cas: TypeHandle = Arc::new(Cas::new(2));
        let w = find_recording_witness(&cas, n).expect("CAS records at any level");
        let inputs: Vec<Value> = (0..n)
            .map(|i| Value::Int(i64::from(i as u32 % 2)))
            .collect();
        group.bench_with_input(BenchmarkId::new("cas_with_crashes", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (mut mem, mut programs) = build_tournament_rc(cas.clone(), &w, &inputs);
                let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                    seed,
                    crash_prob: 0.1,
                    crash: CrashModel::independent(4),
                });
                let exec = run(&mut mem, &mut programs, &mut sched, opts);
                assert!(exec.all_decided);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tournament);
criterion_main!(benches);
