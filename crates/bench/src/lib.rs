//! # rc-bench — the experiment harness
//!
//! One experiment per figure/claim of the paper (the experiment index
//! lives in `DESIGN.md` §5 and results are recorded in `EXPERIMENTS.md`):
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | E1 | Fig. 1 implication diagram | [`exp::e1_figure1`] |
//! | E2 | Fig. 2 recoverable team consensus | [`exp::e2_team_rc`] |
//! | E3 | Fig. 4 / Theorem 1 simultaneous transform | [`exp::e3_simultaneous`] |
//! | E4 | Fig. 5 / Prop. 19 `T_n` | [`exp::e4_tn`] |
//! | E5 | Fig. 6 / Prop. 21 `S_n` | [`exp::e5_sn`] |
//! | E6 | Fig. 7 RUniversal | [`exp::e6_universal`] |
//! | E7 | Fig. 8 / Appendix H stack | [`exp::e7_stack`] |
//! | E8 | Corollary 17 hierarchy survey | [`exp::e8_catalog`] |
//! | E9 | Theorem 22 multi-type bound | [`exp::e9_sets`] |
//! | E10 | headline: when is RC harder? | [`exp::e10_headline`] |
//! | E11 | model-checker engine scaling (states/sec, old vs new) | [`exp::e11_explore_scaling`] |
//! | E12 | process-symmetry reduction sweep | [`exp::e12_symmetry_reduction`] |
//! | E13 | full-state symmetry (`Program::rebind`) sweep | [`exp::e13_full_state_symmetry`] |
//! | E14 | catalog access-declaration + POR ample-set audit (`tables lint`) | [`exp::e14_catalog_lint`] |
//! | E15 | partial-order reduction sweep (POR / rebind / both) | [`exp::e15_por_reduction`] |
//! | E16 | tiered, bit-packed state-storage scaling sweep | [`exp::e16_storage_scaling`] |
//! | E17 | scalarset-symmetry sweep for Fig. 4 | [`exp::e17_scalarset_symmetry`] |
//! | E18 | swarm verification: seeded schedules past the exhaustive frontier | [`exp::e18_swarm`] |
//!
//! Run `cargo run -p rc-bench --release --bin tables` for all tables, or
//! `--bin tables -- e4 e5` for a subset (unknown ids exit non-zero with
//! the valid list). `--bin tables -- lint` runs the E14 audit as a CI
//! gate (exit non-zero if any catalog system fails). Criterion timing
//! benches live in `benches/`; the E11–E18 engine trajectory is
//! snapshotted in `BENCH_explore.json` via
//! `--bin tables -- e11 e12 e13 e15 e16 e17 e18 --snapshot`.
//!
//! The `swarm` binary is the randomized counterpart of `tables`: it
//! sweeps millions of deterministically seeded schedules over the
//! [`swarm_catalog`] systems, replays any reported seed and
//! delta-debugs failing schedules to minimal witnesses (see
//! `swarm list` / `swarm run` / `swarm replay` / `swarm shrink`, and
//! `swarm smoke` for the bounded CI tier).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod exp;
pub mod swarm_catalog;
pub mod swarm_cli;
pub mod table;
