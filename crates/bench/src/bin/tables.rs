//! Prints every experiment table (E1–E10); pass experiment ids to select
//! a subset, and `--fast` for smaller sample counts:
//!
//! ```sh
//! cargo run -p rc-bench --release --bin tables           # everything
//! cargo run -p rc-bench --release --bin tables -- e4 e5  # a subset
//! ```

use rc_bench::exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    let (samples, seeds) = if fast { (50, 50) } else { (400, 300) };

    println!("════════════════════════════════════════════════════════════════");
    println!(" When Is Recoverable Consensus Harder Than Consensus? (PODC 2022)");
    println!(" experiment tables — see EXPERIMENTS.md for the paper-vs-measured log");
    println!("════════════════════════════════════════════════════════════════\n");

    if want("e1") {
        println!("{}", exp::e1_figure1(samples));
    }
    if want("e2") {
        println!("{}", exp::e2_team_rc(seeds));
    }
    if want("e3") {
        println!("{}", exp::e3_simultaneous(seeds));
    }
    if want("e4") {
        println!("{}", exp::e4_tn(if fast { 7 } else { 10 }));
    }
    if want("e5") {
        println!("{}", exp::e5_sn(if fast { 6 } else { 9 }));
    }
    if want("e6") {
        println!("{}", exp::e6_universal(seeds));
    }
    if want("e7") {
        println!("{}", exp::e7_stack());
    }
    if want("e8") {
        println!("{}", exp::e8_catalog());
    }
    if want("e9") {
        println!("{}", exp::e9_sets());
    }
    if want("e10") {
        println!("{}", exp::e10_headline(seeds.min(100)));
    }
}
