//! Prints every experiment table (E1–E18); pass experiment ids to select
//! a subset, `--fast` for smaller sample counts, `--snapshot` (with e11,
//! e12, e13, e15, e16, e17 and e18) to refresh `BENCH_explore.json`, `--list` to print
//! the experiment ids one per line (CI diffs that against
//! EXPERIMENTS.md), and `lint` to run the E14 catalog audit — access
//! declarations plus the POR ample-set soundness lint — as a gate (exit
//! non-zero if any system fails):
//!
//! ```sh
//! cargo run -p rc-bench --release --bin tables           # everything
//! cargo run -p rc-bench --release --bin tables -- e4 e5  # a subset
//! cargo run -p rc-bench --release --bin tables -- e11 e12 e13 e15 e16 e17 e18 --fast --snapshot
//! cargo run -p rc-bench --release --bin tables -- --list
//! cargo run -p rc-bench --release --bin tables -- lint
//! ```
//!
//! Unknown experiment ids and flags exit non-zero with the list of valid
//! ids.

use rc_bench::{cli, exp};
use std::path::Path;

fn main() {
    let args = match cli::parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("tables: {message}");
            std::process::exit(2);
        }
    };
    let fast = args.fast;

    if args.list {
        for id in cli::EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }

    if args.lint {
        let (report, clean) = exp::e14_catalog_lint();
        println!("{report}");
        if !clean {
            eprintln!("tables: catalog lint failed (see errors above)");
            std::process::exit(1);
        }
        return;
    }

    let (samples, seeds) = if fast { (50, 50) } else { (400, 300) };

    println!("════════════════════════════════════════════════════════════════");
    println!(" When Is Recoverable Consensus Harder Than Consensus? (PODC 2022)");
    println!(" experiment tables — see EXPERIMENTS.md for the paper-vs-measured log");
    println!("════════════════════════════════════════════════════════════════\n");

    if args.wants("e1") {
        println!("{}", exp::e1_figure1(samples));
    }
    if args.wants("e2") {
        println!("{}", exp::e2_team_rc(seeds));
    }
    if args.wants("e3") {
        println!("{}", exp::e3_simultaneous(seeds));
    }
    if args.wants("e4") {
        println!("{}", exp::e4_tn(if fast { 7 } else { 10 }));
    }
    if args.wants("e5") {
        println!("{}", exp::e5_sn(if fast { 6 } else { 9 }));
    }
    if args.wants("e6") {
        println!("{}", exp::e6_universal(seeds));
    }
    if args.wants("e7") {
        println!("{}", exp::e7_stack());
    }
    if args.wants("e8") {
        println!("{}", exp::e8_catalog());
    }
    if args.wants("e9") {
        println!("{}", exp::e9_sets());
    }
    if args.wants("e10") {
        println!("{}", exp::e10_headline(seeds.min(100)));
    }
    let mut e11_rows = Vec::new();
    if args.wants("e11") {
        let (report, rows) = exp::e11_explore_scaling(fast);
        println!("{report}");
        e11_rows = rows;
    }
    let mut e12_rows = Vec::new();
    if args.wants("e12") {
        let (report, rows) = exp::e12_symmetry_reduction(fast);
        println!("{report}");
        e12_rows = rows;
    }
    let mut e13_rows = Vec::new();
    if args.wants("e13") {
        let (report, rows) = exp::e13_full_state_symmetry(fast);
        println!("{report}");
        e13_rows = rows;
    }
    if args.wants("e14") {
        let (report, clean) = exp::e14_catalog_lint();
        println!("{report}");
        if !clean {
            eprintln!("tables: catalog lint failed (see errors above)");
            std::process::exit(1);
        }
    }
    let mut e15_rows = Vec::new();
    if args.wants("e15") {
        let (report, rows) = exp::e15_por_reduction(fast);
        println!("{report}");
        e15_rows = rows;
    }
    let mut e16_rows = Vec::new();
    if args.wants("e16") {
        let (report, rows) = exp::e16_storage_scaling(fast);
        println!("{report}");
        e16_rows = rows;
    }
    let mut e17_rows = Vec::new();
    if args.wants("e17") {
        let (report, rows) = exp::e17_scalarset_symmetry(fast);
        println!("{report}");
        e17_rows = rows;
    }
    let mut e18_rows = Vec::new();
    if args.wants("e18") {
        let (report, rows) = exp::e18_swarm(fast);
        println!("{report}");
        e18_rows = rows;
    }
    if args.snapshot {
        // The CLI guarantees e11, e12, e13, e15, e16, e17 and e18 are
        // all selected. The path is the workspace root, resolved from
        // this crate's manifest so the snapshot lands in the same place
        // regardless of cwd.
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_explore.json");
        let json = exp::snapshot_json(
            &e11_rows, &e12_rows, &e13_rows, &e15_rows, &e16_rows, &e17_rows, &e18_rows,
        );
        match std::fs::write(&path, json) {
            Ok(()) => println!("snapshot written to {}", path.display()),
            Err(e) => {
                eprintln!("tables: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
