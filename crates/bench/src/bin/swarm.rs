//! The swarm verification service: millions of deterministically-seeded
//! schedules fanned across all cores, per-seed replay, and witness
//! shrinking.
//!
//! ```sh
//! cargo run -p rc-bench --release --bin swarm -- list
//! cargo run -p rc-bench --release --bin swarm -- run --system team-rc-s3 --seeds 1000000 --json swarm.json
//! cargo run -p rc-bench --release --bin swarm -- replay --system broken-team-rc --seed 3
//! cargo run -p rc-bench --release --bin swarm -- shrink --system broken-team-rc --seed 3
//! cargo run -p rc-bench --release --bin swarm -- smoke
//! ```
//!
//! `run` streams progress to stderr (`runs/sec`, violation count) and
//! the final aggregate to stdout; `--json` additionally writes the full
//! machine-readable report. Any reported seed replays and shrinks
//! deterministically — adversary overrides (`--crash`, `--crash-prob`)
//! change which execution a seed denotes, so replay/shrink must be
//! given the same overrides as the run that reported the seed (recorded
//! in the JSON artifact). `smoke` is the bounded CI tier: it must find
//! the seeded `broken-team-rc` agreement violation, shrink it to the
//! known 10-action minimal witness, and re-verify the witness through
//! the `WitnessLog` replay path — exit non-zero otherwise.

use rc_bench::swarm_catalog::{find_system, swarm_catalog, SwarmSystem};
use rc_bench::swarm_cli::{crash_spec, parse_args, SwarmArgs, SwarmCmd};
use rc_runtime::sched::Action;
use rc_runtime::swarm::swarm_with_progress;
use rc_runtime::verify::RcViolation;
use rc_runtime::{
    is_subsequence, replay_seed, shrink_schedule, SwarmConfig, SwarmProgress, SwarmReport,
};

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("swarm: {message}");
            std::process::exit(2);
        }
    };
    let systems = swarm_catalog();
    let code = match args.cmd {
        SwarmCmd::List => cmd_list(&systems),
        SwarmCmd::Run => cmd_run(&systems, &args),
        SwarmCmd::Replay => cmd_replay(&systems, &args),
        SwarmCmd::Shrink => cmd_shrink(&systems, &args),
        SwarmCmd::Smoke => cmd_smoke(&systems, &args),
    };
    std::process::exit(code);
}

fn resolve<'a>(systems: &'a [SwarmSystem], args: &SwarmArgs) -> Result<&'a SwarmSystem, String> {
    let id = args.system.as_deref().expect("parser enforces --system");
    find_system(systems, id)
        .map(|i| &systems[i])
        .ok_or_else(|| {
            format!(
                "unknown system `{id}`; valid ids: {}",
                systems.iter().map(|s| s.id).collect::<Vec<_>>().join(", ")
            )
        })
}

/// The sweep configuration a command line denotes: the system's
/// defaults with the CLI overrides applied.
fn config_for(system: &SwarmSystem, args: &SwarmArgs) -> SwarmConfig {
    let mut config = system.config(args.seed_start, args.seeds.unwrap_or(10_000), args.threads);
    if let Some(p) = args.crash_prob {
        config.crash_prob = p;
    }
    if let Some(model) = args.crash {
        config.crash = model;
    }
    config
}

fn cmd_list(systems: &[SwarmSystem]) -> i32 {
    println!(
        "{:<20} {:<28} {:>10} description",
        "id", "default adversary", "seeded bug"
    );
    for sys in systems {
        println!(
            "{:<20} {:<28} {:>10} {}",
            sys.id,
            format!("{} p={}", crash_spec(&sys.crash), sys.crash_prob),
            if sys.expect_violation { "yes" } else { "no" },
            sys.description,
        );
    }
    0
}

fn print_report(system: &SwarmSystem, config: &SwarmConfig, report: &SwarmReport) {
    println!(
        "swarm {}: {} runs ({} threads) in {:.1} ms — {:.0} runs/sec",
        system.id, report.runs, report.threads_used, report.elapsed_millis, report.runs_per_sec
    );
    println!(
        "  seeds [{}, {}), adversary {} p={}, {} steps, {} crashes",
        config.seed_start,
        config.seed_start + config.seeds,
        crash_spec(&config.crash),
        config.crash_prob,
        report.total_steps,
        report.total_crashes
    );
    println!(
        "  distinct final states: {}   violations: {}",
        report.distinct_final_states,
        report.violations.len()
    );
    for v in report.violations.iter().take(10) {
        println!("    seed {}: {}", v.seed, v.violation);
    }
    if report.violations.len() > 10 {
        println!("    … and {} more", report.violations.len() - 10);
    }
    if let Some(v) = report.violations.first() {
        println!(
            "  replay:  cargo run -p rc-bench --release --bin swarm -- replay --system {} --seed {}",
            system.id, v.seed
        );
        println!(
            "  shrink:  cargo run -p rc-bench --release --bin swarm -- shrink --system {} --seed {}",
            system.id, v.seed
        );
    }
}

/// Hand-rolled JSON artifact (same no-dependency idiom as the
/// `BENCH_explore.json` snapshot): the configuration a seed needs to
/// replay, plus every aggregate of the report.
fn report_json(system: &SwarmSystem, config: &SwarmConfig, report: &SwarmReport) -> String {
    let mut violations = String::new();
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            violations.push(',');
        }
        let kind = match &v.violation {
            RcViolation::Agreement { .. } => "agreement",
            RcViolation::Validity { .. } => "validity",
            RcViolation::Termination => "termination",
        };
        violations.push_str(&format!(
            "\n    {{\"seed\": {}, \"kind\": \"{kind}\", \"detail\": \"{}\"}}",
            v.seed, v.violation
        ));
    }
    format!(
        "{{\n  \"schema\": 1,\n  \"system\": \"{}\",\n  \"seed_start\": {},\n  \
         \"seeds\": {},\n  \"crash\": \"{}\",\n  \"crash_prob\": {},\n  \
         \"threads_used\": {},\n  \"runs\": {},\n  \"distinct_final_states\": {},\n  \
         \"total_steps\": {},\n  \"total_crashes\": {},\n  \"elapsed_millis\": {:.3},\n  \
         \"runs_per_sec\": {:.1},\n  \"violations\": [{}{}]\n}}\n",
        system.id,
        config.seed_start,
        config.seeds,
        crash_spec(&config.crash),
        config.crash_prob,
        report.threads_used,
        report.runs,
        report.distinct_final_states,
        report.total_steps,
        report.total_crashes,
        report.elapsed_millis,
        report.runs_per_sec,
        violations,
        if report.violations.is_empty() {
            ""
        } else {
            "\n  "
        },
    )
}

fn cmd_run(systems: &[SwarmSystem], args: &SwarmArgs) -> i32 {
    let system = match resolve(systems, args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swarm: {e}");
            return 2;
        }
    };
    let config = config_for(system, args);
    let report = swarm_with_progress(
        system.factory(),
        &config,
        Some(&|p: SwarmProgress| {
            eprintln!(
                "swarm {:>12}/{} runs  {:>8.0} runs/sec  {} violations",
                p.runs,
                p.total,
                p.runs as f64 / p.elapsed_secs.max(1e-9),
                p.violations
            );
        }),
    );
    print_report(system, &config, &report);
    if let Some(path) = &args.json {
        let json = report_json(system, &config, &report);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("swarm: cannot write {path}: {e}");
            return 1;
        }
        println!("  artifact written to {path}");
    }
    // Exit non-zero when a correct system violated (a real finding) —
    // but finding the seeded bug in a bug entry is the expected result.
    i32::from(!report.violations.is_empty() && !system.expect_violation)
}

fn cmd_replay(systems: &[SwarmSystem], args: &SwarmArgs) -> i32 {
    let system = match resolve(systems, args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swarm: {e}");
            return 2;
        }
    };
    let config = config_for(system, args);
    let seed = args.seed.expect("parser enforces --seed");
    let run = replay_seed(system.factory(), &config, seed);
    println!(
        "replay {} seed {} (adversary {} p={}): {} actions, {} crashes",
        system.id,
        seed,
        crash_spec(&config.crash),
        config.crash_prob,
        run.execution.trace.to_actions().len(),
        run.execution.crashes
    );
    print!("{}", run.execution.trace);
    match &run.verdict {
        Ok(Some(v)) => {
            println!("verdict: consensus on {v}");
            0
        }
        Ok(None) => {
            println!("verdict: no outputs");
            0
        }
        Err(violation) => {
            println!("verdict: VIOLATION — {violation}");
            i32::from(!system.expect_violation)
        }
    }
}

fn render_schedule(schedule: &[Action]) -> String {
    schedule
        .iter()
        .map(|a| match a {
            Action::Step(p) => format!("step p{}", p + 1),
            Action::Branch(p, c) => format!("branch p{}#{c}", p + 1),
            Action::Crash(p) => format!("crash p{}", p + 1),
            Action::CrashAll => "crash ALL".into(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn cmd_shrink(systems: &[SwarmSystem], args: &SwarmArgs) -> i32 {
    let system = match resolve(systems, args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swarm: {e}");
            return 2;
        }
    };
    let config = config_for(system, args);
    let seed = args.seed.expect("parser enforces --seed");
    let run = replay_seed(system.factory(), &config, seed);
    let schedule = run.execution.trace.to_actions();
    match &run.verdict {
        Err(v) => println!(
            "seed {} violates ({}); shrinking its {}-action schedule…",
            seed,
            v,
            schedule.len()
        ),
        Ok(_) => {
            eprintln!(
                "swarm: seed {seed} of `{}` does not violate — nothing to shrink",
                system.id
            );
            return 1;
        }
    }
    match shrink_schedule(system.factory(), &config, &schedule) {
        Ok(witness) => {
            assert!(is_subsequence(&witness.schedule, &schedule));
            println!(
                "minimal witness: {} actions (from {}; {} candidates tested)",
                witness.schedule.len(),
                witness.original_len,
                witness.candidates_tested
            );
            println!("  {}", render_schedule(&witness.schedule));
            println!("  violation: {}", witness.violation);
            println!(
                "  WitnessLog replay: {}",
                if witness.witness_verified {
                    "verified"
                } else {
                    "FAILED"
                }
            );
            i32::from(!witness.witness_verified)
        }
        Err(e) => {
            eprintln!("swarm: {e}");
            1
        }
    }
}

/// The bounded CI tier. Budget-friendly invariants, each fatal:
///
/// 1. a short sweep of the seeded `broken-team-rc` bug finds at least
///    one agreement violation;
/// 2. the first violating seed replays deterministically to the same
///    violation;
/// 3. its schedule shrinks to the known 10-action minimal witness — a
///    legal subsequence that still violates agreement and re-verifies
///    through the `WitnessLog` replay path;
/// 4. a correct control system (`team-rc-s3`) reports zero violations
///    over the same seed budget.
fn cmd_smoke(systems: &[SwarmSystem], args: &SwarmArgs) -> i32 {
    /// The minimal `broken-team-rc` agreement witness: 10 scheduler
    /// actions (all steps, zero crashes) driving two team-B rows through
    /// the unguarded branch against an early team-A decision — shorter
    /// than the 14-step schedule the exhaustive checker reports for the
    /// same system (E2), because delta-debugging minimizes where the
    /// DFS merely finds. Pinned so a regression that changes the
    /// witness fails the smoke tier loudly.
    const KNOWN_MINIMAL_WITNESS_LEN: usize = 10;
    let seeds = args.seeds.unwrap_or(400);

    let broken = &systems[find_system(systems, "broken-team-rc").expect("catalog has the bug")];
    let config = broken.config(0, seeds, 0);
    let report = swarm_with_progress(broken.factory(), &config, None);
    println!(
        "smoke: broken-team-rc swept {} seeds — {} violations, {} distinct final states",
        report.runs,
        report.violations.len(),
        report.distinct_final_states
    );
    let Some(first) = report.violations.first() else {
        eprintln!("swarm: smoke FAILED — the seeded bug was not found in {seeds} seeds");
        return 1;
    };
    if !matches!(first.violation, RcViolation::Agreement { .. }) {
        eprintln!(
            "swarm: smoke FAILED — expected an agreement violation, got: {}",
            first.violation
        );
        return 1;
    }

    let rerun = replay_seed(broken.factory(), &config, first.seed);
    if rerun.verdict != Err(first.violation.clone()) {
        eprintln!(
            "swarm: smoke FAILED — seed {} did not replay deterministically: {:?}",
            first.seed, rerun.verdict
        );
        return 1;
    }
    println!(
        "smoke: seed {} replayed deterministically ({})",
        first.seed, first.violation
    );

    let schedule = rerun.execution.trace.to_actions();
    let witness = match shrink_schedule(broken.factory(), &config, &schedule) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("swarm: smoke FAILED — shrink refused: {e}");
            return 1;
        }
    };
    let ok = witness.schedule.len() == KNOWN_MINIMAL_WITNESS_LEN
        && is_subsequence(&witness.schedule, &schedule)
        && witness.witness_verified
        && matches!(witness.violation, RcViolation::Agreement { .. });
    if !ok {
        eprintln!(
            "swarm: smoke FAILED — witness len {} (expected {KNOWN_MINIMAL_WITNESS_LEN}), \
             subsequence {}, log-verified {}, violation {}",
            witness.schedule.len(),
            is_subsequence(&witness.schedule, &schedule),
            witness.witness_verified,
            witness.violation
        );
        return 1;
    }
    println!(
        "smoke: shrunk {} → {} actions ({} candidates): {}",
        witness.original_len,
        witness.schedule.len(),
        witness.candidates_tested,
        render_schedule(&witness.schedule)
    );

    let control = &systems[find_system(systems, "team-rc-s3").expect("catalog has the control")];
    let control_report = swarm_with_progress(control.factory(), &control.config(0, seeds, 0), None);
    if !control_report.violations.is_empty() {
        eprintln!(
            "swarm: smoke FAILED — control system team-rc-s3 violated: {:?}",
            control_report.violations
        );
        return 1;
    }
    println!(
        "smoke: control team-rc-s3 clean over {} seeds ({} distinct final states)",
        control_report.runs, control_report.distinct_final_states
    );
    println!("smoke: OK");
    0
}
