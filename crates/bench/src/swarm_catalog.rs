//! The swarm system catalog: every system the `swarm` binary can sweep,
//! each with a thread-safe factory, its declared inputs, a per-system
//! default crash adversary and the expected verdict.
//!
//! The catalog reuses the same `rc-core` builders as the exhaustive
//! experiments (E2–E13), so a system id here denotes *exactly* the
//! construction those experiments verify — the swarm service extends
//! their coverage past the exhaustive frontier instead of testing
//! something subtly different. Entries whose `expect_violation` is
//! `true` (the Section 3.1 missing-guard counterexample) are the seeded
//! bugs the CI smoke tier must find and shrink.

use rc_core::algorithms::{
    build_broken_team_rc_system, build_masked_team_rc_system, build_simultaneous_rc_system,
    build_team_consensus_system, build_team_rc_system, build_tournament_rc, ConsensusObjectFactory,
};
use rc_core::{check_discerning, find_recording_witness, Assignment, RecordingWitness, Team};
use rc_runtime::{CrashModel, Memory, Program, SwarmConfig, SwarmFactory};
use rc_spec::types::{Cas, Tn};
use rc_spec::{TypeHandle, Value};
use std::sync::Arc;

use crate::exp::{sn_witness, team_inputs};

/// A thread-safe owned system builder (the [`SwarmFactory`] borrow the
/// engine consumes is produced by [`SwarmSystem::factory`]).
type BoxedFactory = Box<dyn Fn() -> (Memory, Vec<Box<dyn Program>>) + Send + Sync>;

/// One swarm-sweepable system: id, construction, inputs and the default
/// adversary under which its `expect_violation` verdict holds.
pub struct SwarmSystem {
    /// Stable catalog id (`swarm run --system <id>`).
    pub id: &'static str,
    /// One-line description for `swarm list`.
    pub description: &'static str,
    /// Declared inputs (the validity check's universe).
    pub inputs: Vec<Value>,
    /// Default crash adversary for this system.
    pub crash: CrashModel,
    /// Default per-decision crash probability.
    pub crash_prob: f64,
    /// Whether seeded sweeps are expected to find violations under the
    /// default adversary (`true` only for the seeded-bug entries).
    pub expect_violation: bool,
    factory: BoxedFactory,
}

impl SwarmSystem {
    /// The system factory, in the shape the swarm engine consumes.
    pub fn factory(&self) -> &SwarmFactory<'_> {
        &*self.factory
    }

    /// The swarm configuration this system's defaults produce, with the
    /// given seed range and thread count.
    pub fn config(&self, seed_start: u64, seeds: u64, threads: usize) -> SwarmConfig {
        SwarmConfig {
            seed_start,
            seeds,
            threads,
            crash_prob: self.crash_prob,
            crash: self.crash,
            max_actions: 100_000,
            inputs: Some(self.inputs.clone()),
        }
    }
}

/// The E2/E5 recording witness for the Section 3.1 *broken* team-RC
/// counterexample: CAS(2) with a 3-row witness, normalized so team B
/// has at least two rows (the shape whose missing |B| ≥ 2 guard the
/// broken variant exploits).
fn broken_witness() -> (TypeHandle, RecordingWitness) {
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let w = find_recording_witness(&cas, 3)
        .expect("CAS witness")
        .normalized();
    let w = if w.assignment.team_size(Team::B) >= 2 {
        w
    } else {
        RecordingWitness {
            assignment: w.assignment.swap_teams(),
            q_a: w.q_b.clone(),
            q_b: w.q_a.clone(),
        }
    };
    (cas, w)
}

/// Builds the full catalog. Witness search runs once per call; the
/// factories it returns are cheap per-invocation builders.
pub fn swarm_catalog() -> Vec<SwarmSystem> {
    let mut systems = Vec::new();

    // Fig. 2 team RC over S_n witnesses — correct under independent
    // crashes with post-decide re-runs (Theorem 8).
    for n in [3usize, 4] {
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(&w.assignment);
        let (id, description) = match n {
            3 => (
                "team-rc-s3",
                "Fig. 2 team RC over the 3-row S_3 witness (Theorem 8)",
            ),
            _ => (
                "team-rc-s4",
                "Fig. 2 team RC over the 4-row S_4 witness (Theorem 8)",
            ),
        };
        let f_inputs = inputs.clone();
        systems.push(SwarmSystem {
            id,
            description,
            inputs,
            crash: CrashModel::independent(3).after_decide(true),
            crash_prob: 0.15,
            expect_violation: false,
            factory: Box::new(move || build_team_rc_system(ty.clone(), &w, &f_inputs)),
        });
    }

    // Input-masked team RC: the Proposition 30 transformation removes
    // the stable-input assumption; still correct.
    {
        let (ty, w) = sn_witness(3);
        let inputs = team_inputs(&w.assignment);
        let f_inputs = inputs.clone();
        systems.push(SwarmSystem {
            id: "masked-team-rc-s3",
            description: "input-masked Fig. 2 team RC over S_3 (Prop. 30 transformation)",
            inputs,
            crash: CrashModel::independent(3).after_decide(true),
            crash_prob: 0.15,
            expect_violation: false,
            factory: Box::new(move || build_masked_team_rc_system(ty.clone(), &w, &f_inputs)),
        });
    }

    // The seeded bug: Section 3.1's missing |B| ≥ 2 guard. Violates
    // agreement on adversarial interleavings with *zero* crashes, so
    // the default adversary is crash-free — the bug is a pure
    // interleaving bug, and shrunken witnesses contain only steps.
    {
        let (ty, w) = broken_witness();
        let inputs = team_inputs(&w.assignment);
        let f_inputs = inputs.clone();
        systems.push(SwarmSystem {
            id: "broken-team-rc",
            description: "Section 3.1 missing-guard team RC (seeded agreement bug)",
            inputs,
            crash: CrashModel::none(),
            crash_prob: 0.0,
            expect_violation: true,
            factory: Box::new(move || build_broken_team_rc_system(ty.clone(), &w, &f_inputs)),
        });
    }

    // Theorem 3 team consensus over T_4 — correct *crash-free* (its
    // whole point: consensus is solvable where RC is not), so its
    // default adversary injects no crashes.
    {
        let tn = Tn::new(4);
        let ty: TypeHandle = Arc::new(Tn::new(4));
        let w = check_discerning(
            &tn,
            &Assignment::split(Tn::forget_state(), vec![Tn::op_a(); 2], vec![Tn::op_b(); 2]),
        )
        .expect("T_4 witness");
        let inputs = team_inputs(&w.assignment);
        let f_inputs = inputs.clone();
        systems.push(SwarmSystem {
            id: "team-consensus-t4",
            description: "Theorem 3 team consensus over T_4 (crash-free by design)",
            inputs,
            crash: CrashModel::none(),
            crash_prob: 0.0,
            expect_violation: false,
            factory: Box::new(move || build_team_consensus_system(ty.clone(), &w, &f_inputs)),
        });
    }

    // Theorem 16 tournament RC: 4 processes over the 4-recording T_6
    // witness, the E4 construction — correct under independent crashes.
    {
        let ty: TypeHandle = Arc::new(Tn::new(6));
        let w = find_recording_witness(&ty, 4).expect("Theorem 16 witness");
        let inputs: Vec<Value> = (0..4).map(Value::Int).collect();
        let f_inputs = inputs.clone();
        systems.push(SwarmSystem {
            id: "tournament-rc-t6",
            description: "Theorem 16 tournament RC: 4 processes over the T_6 witness",
            inputs,
            crash: CrashModel::independent(4).after_decide(true),
            crash_prob: 0.15,
            expect_violation: false,
            factory: Box::new(move || build_tournament_rc(ty.clone(), &w, &f_inputs)),
        });
    }

    // Fig. 4 / Theorem 1 simultaneous-crash RC, 3 processes — correct
    // under simultaneous crashes (its model).
    {
        let factory = ConsensusObjectFactory { domain: 4 };
        let inputs: Vec<Value> = (0..3).map(Value::Int).collect();
        let f_inputs = inputs.clone();
        systems.push(SwarmSystem {
            id: "simultaneous-rc-n3",
            description: "Fig. 4 simultaneous-crash RC, 3 processes (Theorem 1)",
            inputs,
            crash: CrashModel::simultaneous(2).after_decide(true),
            crash_prob: 0.05,
            expect_violation: false,
            factory: Box::new(move || build_simultaneous_rc_system(&factory, &f_inputs, 6)),
        });
    }

    systems
}

/// Looks up a catalog system by id.
pub fn find_system(systems: &[SwarmSystem], id: &str) -> Option<usize> {
    systems.iter().position(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_runtime::swarm::swarm;

    #[test]
    fn catalog_ids_are_unique_and_factories_build() {
        let systems = swarm_catalog();
        let mut ids: Vec<&str> = systems.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate catalog id");
        for sys in &systems {
            let (_, programs) = (sys.factory())();
            assert_eq!(
                programs.len(),
                sys.inputs.len(),
                "{}: one input per process",
                sys.id
            );
        }
        assert!(find_system(&systems, "broken-team-rc").is_some());
        assert!(find_system(&systems, "no-such-system").is_none());
    }

    /// A small sweep over every entry: correct systems report zero
    /// violations under their default adversary; the seeded bug is
    /// found. This is the catalog-level form of the swarm engine's
    /// contract, kept small enough for the tier-1 suite.
    #[test]
    fn default_adversary_matches_expected_verdict() {
        for sys in swarm_catalog() {
            let config = sys.config(0, 60, 0);
            let report = swarm(sys.factory(), &config);
            assert_eq!(report.runs, 60, "{}", sys.id);
            if sys.expect_violation {
                assert!(
                    !report.violations.is_empty(),
                    "{}: the seeded bug must surface within 60 seeds",
                    sys.id
                );
            } else {
                assert!(
                    report.violations.is_empty(),
                    "{}: unexpected violations: {:?}",
                    sys.id,
                    report.violations
                );
            }
        }
    }
}
