//! Argument parsing for the `swarm` binary.
//!
//! Split out of the binary for the same reason as [`cli`](crate::cli):
//! the parsing rules are unit-testable, and unknown ids/flags are
//! errors, never silent no-ops. The grammar:
//!
//! ```text
//! swarm list
//! swarm run    --system <id> [--seeds N] [--seed-start N] [--threads N]
//!              [--crash-prob P] [--crash SPEC] [--json PATH]
//! swarm replay --system <id> --seed N [adversary overrides]
//! swarm shrink --system <id> --seed N [adversary overrides]
//! swarm smoke  [--seeds N]
//! ```
//!
//! `SPEC` is `none`, `independent:<budget>[:after-decide]` or
//! `simultaneous:<budget>[:after-decide]` — the textual form of
//! [`CrashModel`], so the command line can reproduce any adversary the
//! experiments use. Overriding the adversary changes which execution a
//! seed denotes; replay/shrink must be given the same overrides as the
//! run that reported the seed (the JSON artifact records them).

use rc_runtime::CrashModel;

/// The subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwarmCmd {
    /// Print the catalog and exit.
    List,
    /// Sweep a seed range.
    Run,
    /// Deterministically replay one seed.
    Replay,
    /// Replay one seed and delta-debug its schedule to a minimal witness.
    Shrink,
    /// The bounded CI tier: find the seeded bug and shrink it.
    Smoke,
}

/// Parsed `swarm` arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct SwarmArgs {
    /// The subcommand.
    pub cmd: SwarmCmd,
    /// Catalog system id (required for run/replay/shrink).
    pub system: Option<String>,
    /// Seed count (`--seeds`).
    pub seeds: Option<u64>,
    /// First seed (`--seed-start`), default 0.
    pub seed_start: u64,
    /// The single seed for replay/shrink (`--seed`).
    pub seed: Option<u64>,
    /// Worker threads (`--threads`), 0 = all cores.
    pub threads: usize,
    /// Crash probability override (`--crash-prob`).
    pub crash_prob: Option<f64>,
    /// Crash adversary override (`--crash`).
    pub crash: Option<CrashModel>,
    /// JSON artifact path (`--json`).
    pub json: Option<String>,
}

/// Parses a [`CrashModel`] spec: `none`,
/// `independent:<budget>[:after-decide]`,
/// `simultaneous:<budget>[:after-decide]`.
///
/// # Errors
///
/// Returns a message naming the offending spec.
pub fn parse_crash_spec(spec: &str) -> Result<CrashModel, String> {
    if spec == "none" {
        return Ok(CrashModel::none());
    }
    let mut parts = spec.split(':');
    let mode = parts.next().unwrap_or_default();
    let budget: usize = parts
        .next()
        .ok_or_else(|| format!("crash spec `{spec}` is missing a budget"))?
        .parse()
        .map_err(|_| format!("crash spec `{spec}` has a non-numeric budget"))?;
    let model = match mode {
        "independent" => CrashModel::independent(budget),
        "simultaneous" => CrashModel::simultaneous(budget),
        other => {
            return Err(format!(
                "unknown crash mode `{other}`; valid: none, independent:<budget>[:after-decide], \
                 simultaneous:<budget>[:after-decide]"
            ));
        }
    };
    match parts.next() {
        None => Ok(model),
        Some("after-decide") => {
            if parts.next().is_some() {
                return Err(format!("crash spec `{spec}` has trailing components"));
            }
            Ok(model.after_decide(true))
        }
        Some(other) => Err(format!(
            "unknown crash spec component `{other}` in `{spec}` (expected `after-decide`)"
        )),
    }
}

/// Renders a [`CrashModel`] back into the spec grammar (inverse of
/// [`parse_crash_spec`]; recorded in the JSON artifact so a reported
/// seed carries its adversary).
pub fn crash_spec(model: &CrashModel) -> String {
    if model.budget == 0 {
        return "none".into();
    }
    let mode = match model.mode {
        rc_runtime::CrashMode::Independent => "independent",
        rc_runtime::CrashMode::Simultaneous => "simultaneous",
    };
    let mut spec = format!("{mode}:{}", model.budget);
    if model.crash_after_decide {
        spec.push_str(":after-decide");
    }
    spec
}

/// Parses the `swarm` command line (everything after the binary name).
///
/// # Errors
///
/// Returns a usage message; unknown subcommands, flags, and malformed
/// values are all errors.
pub fn parse_args<I, S>(args: I) -> Result<SwarmArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut iter = args.into_iter();
    let cmd = match iter.next().as_ref().map(AsRef::as_ref) {
        Some("list") => SwarmCmd::List,
        Some("run") => SwarmCmd::Run,
        Some("replay") => SwarmCmd::Replay,
        Some("shrink") => SwarmCmd::Shrink,
        Some("smoke") => SwarmCmd::Smoke,
        Some(other) => {
            return Err(format!(
                "unknown subcommand `{other}`; valid: list, run, replay, shrink, smoke"
            ));
        }
        None => return Err("missing subcommand; valid: list, run, replay, shrink, smoke".into()),
    };
    let mut parsed = SwarmArgs {
        cmd,
        system: None,
        seeds: None,
        seed_start: 0,
        seed: None,
        threads: 0,
        crash_prob: None,
        crash: None,
        json: None,
    };
    let value_of = |flag: &str, iter: &mut dyn Iterator<Item = S>| -> Result<String, String> {
        iter.next()
            .map(|v| v.as_ref().to_string())
            .ok_or_else(|| format!("flag `{flag}` needs a value"))
    };
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref().to_string();
        match arg.as_str() {
            "--system" => parsed.system = Some(value_of("--system", &mut iter)?),
            "--seeds" => {
                let v = value_of("--seeds", &mut iter)?;
                parsed.seeds = Some(
                    v.parse()
                        .map_err(|_| format!("--seeds `{v}` is not a count"))?,
                );
            }
            "--seed-start" => {
                let v = value_of("--seed-start", &mut iter)?;
                parsed.seed_start = v
                    .parse()
                    .map_err(|_| format!("--seed-start `{v}` is not a seed"))?;
            }
            "--seed" => {
                let v = value_of("--seed", &mut iter)?;
                parsed.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed `{v}` is not a seed"))?,
                );
            }
            "--threads" => {
                let v = value_of("--threads", &mut iter)?;
                parsed.threads = v
                    .parse()
                    .map_err(|_| format!("--threads `{v}` is not a thread count"))?;
            }
            "--crash-prob" => {
                let v = value_of("--crash-prob", &mut iter)?;
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("--crash-prob `{v}` is not a probability"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("--crash-prob `{v}` is outside [0, 1]"));
                }
                parsed.crash_prob = Some(p);
            }
            "--crash" => {
                let v = value_of("--crash", &mut iter)?;
                parsed.crash = Some(parse_crash_spec(&v)?);
            }
            "--json" => parsed.json = Some(value_of("--json", &mut iter)?),
            other => {
                return Err(format!(
                    "unknown argument `{other}`; see `swarm <subcommand> --help` in README.md"
                ));
            }
        }
    }
    // Required-argument checks, so a forgotten --seed is an error up
    // front instead of a confusing default replay of seed 0.
    match parsed.cmd {
        SwarmCmd::Run | SwarmCmd::Replay | SwarmCmd::Shrink => {
            if parsed.system.is_none() {
                return Err("this subcommand requires --system <id> (see `swarm list`)".into());
            }
        }
        SwarmCmd::List | SwarmCmd::Smoke => {}
    }
    if matches!(parsed.cmd, SwarmCmd::Replay | SwarmCmd::Shrink) && parsed.seed.is_none() {
        return Err("replay/shrink require --seed <N> (a seed reported by `swarm run`)".into());
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_with_all_flags() {
        let args = parse_args([
            "run",
            "--system",
            "team-rc-s3",
            "--seeds",
            "1000000",
            "--seed-start",
            "5",
            "--threads",
            "8",
            "--crash-prob",
            "0.2",
            "--crash",
            "independent:3:after-decide",
            "--json",
            "out.json",
        ])
        .expect("valid");
        assert_eq!(args.cmd, SwarmCmd::Run);
        assert_eq!(args.system.as_deref(), Some("team-rc-s3"));
        assert_eq!(args.seeds, Some(1_000_000));
        assert_eq!(args.seed_start, 5);
        assert_eq!(args.threads, 8);
        assert_eq!(args.crash_prob, Some(0.2));
        assert_eq!(
            args.crash,
            Some(CrashModel::independent(3).after_decide(true))
        );
        assert_eq!(args.json.as_deref(), Some("out.json"));
    }

    #[test]
    fn crash_specs_round_trip() {
        for spec in [
            "none",
            "independent:2",
            "independent:3:after-decide",
            "simultaneous:1",
            "simultaneous:4:after-decide",
        ] {
            let model = parse_crash_spec(spec).expect(spec);
            assert_eq!(crash_spec(&model), spec, "round trip");
        }
        assert!(parse_crash_spec("independent").is_err(), "missing budget");
        assert!(parse_crash_spec("independent:x").is_err());
        assert!(parse_crash_spec("sometimes:2").is_err());
        assert!(parse_crash_spec("independent:2:late").is_err());
        assert!(parse_crash_spec("independent:2:after-decide:more").is_err());
    }

    #[test]
    fn required_arguments_are_enforced() {
        assert!(parse_args(Vec::<&str>::new()).is_err(), "no subcommand");
        assert!(parse_args(["frobnicate"]).is_err(), "unknown subcommand");
        let err = parse_args(["run"]).expect_err("run needs --system");
        assert!(err.contains("--system"), "{err}");
        let err = parse_args(["replay", "--system", "x"]).expect_err("replay needs --seed");
        assert!(err.contains("--seed"), "{err}");
        let err = parse_args(["shrink", "--system", "x"]).expect_err("shrink needs --seed");
        assert!(err.contains("--seed"), "{err}");
        assert!(parse_args(["list"]).is_ok());
        assert!(parse_args(["smoke"]).is_ok());
        assert!(parse_args(["smoke", "--seeds", "500"]).is_ok());
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(parse_args(["run", "--system", "x", "--seeds", "lots"]).is_err());
        assert!(parse_args(["run", "--system", "x", "--crash-prob", "1.5"]).is_err());
        assert!(parse_args(["run", "--system", "x", "--crash-prob", "-0.1"]).is_err());
        assert!(parse_args(["run", "--system", "x", "--crash", "maybe:1"]).is_err());
        assert!(parse_args(["run", "--system"]).is_err(), "dangling flag");
        assert!(parse_args(["run", "--system", "x", "--frobnicate"]).is_err());
    }
}
