//! Minimal fixed-width table printing for the experiment harness.

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "value"]);
        t.row(&["4".into(), "long-cell".into()]);
        t.row(&["10".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("n   value"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
