//! Argument parsing for the `tables` binary.
//!
//! Split out of the binary so the parsing rules are unit-testable — in
//! particular the rejection of unknown experiment ids: `tables` with a
//! typo'd id used to exit 0 having silently printed nothing, which made
//! typos look like passing runs. (`e12` was the canonical example until
//! the symmetry sweep claimed the id; CI now probes with `e99`.)

/// Every valid experiment id, in printing order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

/// Parsed `tables` arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TablesArgs {
    /// Smaller sample counts (`--fast`).
    pub fast: bool,
    /// Write the `BENCH_explore.json` snapshot after E11 (`--snapshot`).
    pub snapshot: bool,
    /// Print the experiment ids, one per line, and exit (`--list`) — CI
    /// diffs this against the experiments indexed in EXPERIMENTS.md so
    /// the two can never drift apart.
    pub list: bool,
    /// Run the catalog access-declaration audit (`tables lint`) and exit
    /// non-zero if any system fails it — the CI gate form of E14.
    pub lint: bool,
    /// Lower-cased experiment ids to print; empty means all.
    pub selected: Vec<String>,
}

impl TablesArgs {
    /// Whether experiment `id` should be printed.
    pub fn wants(&self, id: &str) -> bool {
        self.selected.is_empty() || self.selected.iter().any(|s| s == id)
    }
}

/// Parses the `tables` command line (everything after the binary name).
///
/// # Errors
///
/// Returns a usage message naming the offending argument and listing the
/// valid experiment ids — unknown ids and unknown flags are errors, not
/// silent no-ops.
pub fn parse_args<I, S>(args: I) -> Result<TablesArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut parsed = TablesArgs::default();
    for arg in args {
        let arg = arg.as_ref();
        match arg {
            "--fast" => parsed.fast = true,
            "--snapshot" => parsed.snapshot = true,
            "--list" => parsed.list = true,
            "lint" => parsed.lint = true,
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag `{flag}`; valid flags: --fast, --snapshot, --list"
                ));
            }
            id => {
                let id = id.to_lowercase();
                if !EXPERIMENT_IDS.contains(&id.as_str()) {
                    return Err(format!(
                        "unknown experiment id `{id}`; valid ids: {}",
                        EXPERIMENT_IDS.join(", ")
                    ));
                }
                parsed.selected.push(id);
            }
        }
    }
    if parsed.list && parsed.snapshot {
        // `--list` exits before any experiment runs, so honouring both
        // flags would silently skip the requested snapshot write — the
        // same silent-no-op shape as a typo'd experiment id.
        return Err(
            "--list prints the experiment ids and exits; it cannot be combined \
             with --snapshot"
                .into(),
        );
    }
    if parsed.lint && (parsed.list || parsed.snapshot || !parsed.selected.is_empty()) {
        // `lint` is the CI gate: it runs the audit, sets the exit code
        // and prints nothing else. Combining it with experiment
        // selection, `--list` or `--snapshot` would silently skip one of
        // the two requests — same silent-no-op shape as a typo'd id.
        return Err(
            "`lint` runs the catalog audit and exits; it cannot be combined \
             with experiment ids, --list or --snapshot"
                .into(),
        );
    }
    if parsed.snapshot
        && !(parsed.wants("e11")
            && parsed.wants("e12")
            && parsed.wants("e13")
            && parsed.wants("e15")
            && parsed.wants("e16")
            && parsed.wants("e17")
            && parsed.wants("e18"))
    {
        return Err(
            "--snapshot records the E11 engine sweep, the E12 symmetry sweep, the E13 \
             full-state sweep, the E15 partial-order-reduction sweep, the E16 \
             storage-tier sweep, the E17 scalarset-symmetry sweep and the E18 swarm \
             sweep, but e11, e12, e13, e15, e16, e17 and e18 are not all among the \
             selected experiment ids"
                .into(),
        );
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_selects_everything() {
        let args = parse_args(Vec::<&str>::new()).expect("valid");
        assert!(!args.fast);
        assert!(!args.snapshot);
        for id in EXPERIMENT_IDS {
            assert!(args.wants(id));
        }
    }

    #[test]
    fn subset_and_flags() {
        let args = parse_args([
            "E4",
            "e11",
            "e12",
            "e13",
            "e15",
            "e16",
            "e17",
            "e18",
            "--fast",
            "--snapshot",
        ])
        .expect("valid");
        assert!(args.fast && args.snapshot);
        assert!(args.wants("e4") && args.wants("e11") && args.wants("e12") && args.wants("e13"));
        assert!(args.wants("e15") && args.wants("e16") && args.wants("e17") && args.wants("e18"));
        assert!(!args.wants("e1"));
    }

    /// `--list` is how CI syncs the id list with EXPERIMENTS.md; it must
    /// parse alone and alongside a selection — but never with
    /// `--snapshot`, whose write the list early-exit would silently
    /// skip.
    #[test]
    fn list_flag_parses_but_refuses_snapshot() {
        assert!(parse_args(["--list"]).expect("valid").list);
        assert!(!parse_args(Vec::<&str>::new()).expect("valid").list);
        assert!(parse_args(["e4", "--list"]).expect("valid").list);
        let err = parse_args([
            "e11",
            "e12",
            "e13",
            "e15",
            "e16",
            "e17",
            "e18",
            "--snapshot",
            "--list",
        ])
        .expect_err("must reject the silent snapshot skip");
        assert!(err.contains("--snapshot"), "{err}");
    }

    /// Regression: an unknown id must be an error carrying the full list
    /// of valid ids, not a silent empty run. (`e12` was the canonical
    /// unknown id until the symmetry sweep claimed it; `e99` stays
    /// unknown.)
    #[test]
    fn unknown_id_is_rejected_with_the_valid_list() {
        let err = parse_args(["e99"]).expect_err("must reject");
        assert!(err.contains("e99"), "{err}");
        for id in EXPERIMENT_IDS {
            assert!(err.contains(id), "{err} should list {id}");
        }
    }

    /// `e12` goes through the same known-id path as every other
    /// experiment — no special-cased acceptance.
    #[test]
    fn e12_is_a_known_experiment_id() {
        let args = parse_args(["E12"]).expect("e12 is valid");
        assert!(args.wants("e12"));
        assert!(!args.wants("e11"));
    }

    /// `--snapshot` without every snapshot experiment in the selection
    /// would silently skip part of the snapshot write — the same
    /// silent-no-op shape as the unknown-id bug, so it is rejected too.
    /// (E15 joined the snapshot set with the schema-2 `e15_rows`; E16
    /// joined with the schema-3 `e16_rows`; E17 with the schema-4
    /// `e17_rows`; E18 with the schema-5 `e18_rows`.)
    #[test]
    fn snapshot_requires_e11_through_e18_in_the_selection() {
        let err = parse_args(["e4", "--snapshot"]).expect_err("must reject");
        assert!(err.contains("e11"), "{err}");
        assert!(err.contains("e12"), "{err}");
        assert!(err.contains("e13"), "{err}");
        assert!(err.contains("e15"), "{err}");
        assert!(err.contains("e16"), "{err}");
        assert!(err.contains("e17"), "{err}");
        assert!(err.contains("e18"), "{err}");
        let err = parse_args(["e11", "--snapshot"]).expect_err("e12..e18 missing");
        assert!(err.contains("e12"), "{err}");
        let err = parse_args(["e11", "e12", "--snapshot"]).expect_err("e13..e18 missing");
        assert!(err.contains("e13"), "{err}");
        let err = parse_args(["e11", "e12", "e13", "--snapshot"]).expect_err("e15..e18 missing");
        assert!(err.contains("e15"), "{err}");
        let err =
            parse_args(["e11", "e12", "e13", "e15", "--snapshot"]).expect_err("e16..e18 missing");
        assert!(err.contains("e16"), "{err}");
        let err = parse_args(["e11", "e12", "e13", "e15", "e16", "--snapshot"])
            .expect_err("e17/e18 missing");
        assert!(err.contains("e17"), "{err}");
        let err = parse_args(["e11", "e12", "e13", "e15", "e16", "e17", "--snapshot"])
            .expect_err("e18 missing");
        assert!(err.contains("e18"), "{err}");
        assert!(parse_args([
            "e4",
            "e11",
            "e12",
            "e13",
            "e15",
            "e16",
            "e17",
            "e18",
            "--snapshot"
        ])
        .is_ok());
        assert!(
            parse_args(["--snapshot"]).is_ok(),
            "empty selection runs everything"
        );
    }

    /// `tables lint` is the CI gate form of E14: it parses alone (with
    /// `--fast` allowed) and refuses experiment selection, `--list` and
    /// `--snapshot` — each combination would silently drop a request.
    #[test]
    fn lint_parses_alone_and_refuses_combinations() {
        assert!(parse_args(["lint"]).expect("valid").lint);
        assert!(!parse_args(Vec::<&str>::new()).expect("valid").lint);
        let fast = parse_args(["lint", "--fast"]).expect("valid");
        assert!(fast.lint && fast.fast);
        for combo in [
            vec!["lint", "e4"],
            vec!["lint", "--list"],
            vec![
                "lint",
                "e11",
                "e12",
                "e13",
                "e15",
                "e16",
                "e17",
                "e18",
                "--snapshot",
            ],
        ] {
            let err = parse_args(combo.clone()).expect_err("must reject");
            assert!(err.contains("lint"), "{combo:?}: {err}");
        }
    }

    /// `e14` is a known experiment id (the table form of the audit).
    #[test]
    fn e14_is_a_known_experiment_id() {
        let args = parse_args(["E14"]).expect("e14 is valid");
        assert!(args.wants("e14"));
        assert!(!args.wants("e13"));
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_args(["--frobnicate"]).expect_err("must reject");
        assert!(err.contains("--frobnicate"), "{err}");
    }
}
