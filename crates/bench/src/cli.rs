//! Argument parsing for the `tables` binary.
//!
//! Split out of the binary so the parsing rules are unit-testable — in
//! particular the rejection of unknown experiment ids: `tables -- e12`
//! used to exit 0 having silently printed nothing, which made typos look
//! like passing runs.

/// Every valid experiment id, in printing order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
];

/// Parsed `tables` arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TablesArgs {
    /// Smaller sample counts (`--fast`).
    pub fast: bool,
    /// Write the `BENCH_explore.json` snapshot after E11 (`--snapshot`).
    pub snapshot: bool,
    /// Lower-cased experiment ids to print; empty means all.
    pub selected: Vec<String>,
}

impl TablesArgs {
    /// Whether experiment `id` should be printed.
    pub fn wants(&self, id: &str) -> bool {
        self.selected.is_empty() || self.selected.iter().any(|s| s == id)
    }
}

/// Parses the `tables` command line (everything after the binary name).
///
/// # Errors
///
/// Returns a usage message naming the offending argument and listing the
/// valid experiment ids — unknown ids and unknown flags are errors, not
/// silent no-ops.
pub fn parse_args<I, S>(args: I) -> Result<TablesArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut parsed = TablesArgs::default();
    for arg in args {
        let arg = arg.as_ref();
        match arg {
            "--fast" => parsed.fast = true,
            "--snapshot" => parsed.snapshot = true,
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag `{flag}`; valid flags: --fast, --snapshot"
                ));
            }
            id => {
                let id = id.to_lowercase();
                if !EXPERIMENT_IDS.contains(&id.as_str()) {
                    return Err(format!(
                        "unknown experiment id `{id}`; valid ids: {}",
                        EXPERIMENT_IDS.join(", ")
                    ));
                }
                parsed.selected.push(id);
            }
        }
    }
    if parsed.snapshot && !parsed.wants("e11") {
        return Err(
            "--snapshot records the E11 engine sweep, but e11 is not among the selected \
             experiment ids"
                .into(),
        );
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_selects_everything() {
        let args = parse_args(Vec::<&str>::new()).expect("valid");
        assert!(!args.fast);
        assert!(!args.snapshot);
        for id in EXPERIMENT_IDS {
            assert!(args.wants(id));
        }
    }

    #[test]
    fn subset_and_flags() {
        let args = parse_args(["E4", "e11", "--fast", "--snapshot"]).expect("valid");
        assert!(args.fast && args.snapshot);
        assert!(args.wants("e4") && args.wants("e11"));
        assert!(!args.wants("e1"));
    }

    /// Regression: an unknown id must be an error carrying the full list
    /// of valid ids, not a silent empty run.
    #[test]
    fn unknown_id_is_rejected_with_the_valid_list() {
        let err = parse_args(["e12"]).expect_err("must reject");
        assert!(err.contains("e12"), "{err}");
        for id in EXPERIMENT_IDS {
            assert!(err.contains(id), "{err} should list {id}");
        }
    }

    /// `--snapshot` without e11 in the selection would silently skip the
    /// snapshot write — the same silent-no-op shape as the unknown-id
    /// bug, so it is rejected too.
    #[test]
    fn snapshot_requires_e11_in_the_selection() {
        let err = parse_args(["e4", "--snapshot"]).expect_err("must reject");
        assert!(err.contains("e11"), "{err}");
        assert!(parse_args(["e4", "e11", "--snapshot"]).is_ok());
        assert!(
            parse_args(["--snapshot"]).is_ok(),
            "empty selection runs e11"
        );
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_args(["--frobnicate"]).expect_err("must reject");
        assert!(err.contains("--frobnicate"), "{err}");
    }
}
