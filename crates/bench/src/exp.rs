//! The experiments (E1–E18); each returns a rendered report.

use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rc_core::algorithms::{
    build_broken_team_rc_system, build_broken_team_rc_system_sym,
    build_masked_broken_team_rc_system_sym, build_masked_team_consensus_system_sym,
    build_masked_team_rc_system, build_masked_team_rc_system_sym, build_simultaneous_rc_system,
    build_simultaneous_rc_system_sym, build_team_consensus_system, build_team_consensus_system_sym,
    build_team_rc_system, build_team_rc_system_sym, build_tournament_consensus,
    build_tournament_rc, ConsensusObjectFactory,
};
use rc_core::{
    check_discerning, check_recording, compute_hierarchy, find_recording_witness, is_discerning,
    is_recording, set_rcons_bounds, Assignment, RecordingWitness, Team,
};
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, RoundRobin};
use rc_runtime::verify::check_consensus_execution;
use rc_runtime::{
    explore, explore_with_stats, run, CrashModel, ExploreConfig, Memory, Program, RunOptions,
    StorageTier,
};
use rc_spec::catalog::{catalog, ConsensusNumber};
use rc_spec::random::{random_table_type, RandomTypeConfig};
use rc_spec::types::{Cas, Sn, Stack, Tn};
use rc_spec::{Operation, TypeHandle, Value};
use std::sync::Arc;

pub(crate) fn sn_witness(n: usize) -> (TypeHandle, RecordingWitness) {
    let sn = Sn::new(n);
    let a = Assignment::split(Sn::q0(), vec![Sn::op_a()], vec![Sn::op_b(); n - 1]);
    let w = check_recording(&sn, &a).expect("S_n witness");
    (Arc::new(sn), w)
}

pub(crate) fn team_inputs(w: &Assignment) -> Vec<Value> {
    w.teams
        .iter()
        .map(|t| match t {
            Team::A => Value::Int(0),
            Team::B => Value::Int(1),
        })
        .collect()
}

/// E1 (Fig. 1): check every implication of the diagram on the catalog and
/// on a pile of random deterministic types.
pub fn e1_figure1(random_samples: usize) -> String {
    let mut checked = 0usize;
    let mut rec_implies_disc = 0usize;
    let mut disc_implies_rec2 = 0usize;
    let mut downward = 0usize;
    for seed in 0..random_samples as u64 {
        let ty = random_table_type(
            &mut StdRng::seed_from_u64(seed),
            RandomTypeConfig {
                num_states: 2 + (seed % 3) as usize,
                num_ops: 1 + (seed % 2) as usize,
                num_responses: 2,
            },
        );
        checked += 1;
        for n in 2..=4usize {
            if is_recording(&ty, n) {
                assert!(is_discerning(&ty, n), "Obs. 5 failed on {ty:?}");
                rec_implies_disc += 1;
                if n >= 3 {
                    assert!(is_recording(&ty, n - 1), "Obs. 6 failed on {ty:?}");
                    downward += 1;
                }
            }
        }
        if is_discerning(&ty, 4) {
            assert!(is_recording(&ty, 2), "Thm. 16 failed on {ty:?}");
            disc_implies_rec2 += 1;
        }
        if is_discerning(&ty, 3) {
            assert!(is_recording(&ty, 2), "Prop. 18 failed on {ty:?}");
        }
    }
    let mut t = Table::new(&["implication", "instances verified", "violations"]);
    t.row(&[
        "n-recording ⇒ n-discerning (Obs. 5)".into(),
        rec_implies_disc.to_string(),
        "0".into(),
    ]);
    t.row(&[
        "n-recording ⇒ (n−1)-recording (Obs. 6)".into(),
        downward.to_string(),
        "0".into(),
    ]);
    t.row(&[
        "4-discerning ⇒ 2-recording (Thm. 16/Prop. 18)".into(),
        disc_implies_rec2.to_string(),
        "0".into(),
    ]);
    format!(
        "E1 — Figure 1 implications on {checked} random deterministic types \
         (plus the proptest suite in tests/):\n{}",
        t.render()
    )
}

/// E2 (Fig. 2): the recoverable team consensus algorithm — exhaustive and
/// randomized verification, plus the Section 3.1 broken-guard scenario.
pub fn e2_team_rc(seeds: u64) -> String {
    let mut t = Table::new(&[
        "type",
        "n",
        "model-checked states",
        "random schedules",
        "crashes injected",
        "violations",
    ]);
    for n in [2usize, 3] {
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(&w.assignment);
        let outcome = explore(
            &|| build_team_rc_system(ty.clone(), &w, &inputs),
            &ExploreConfig {
                crash: CrashModel::independent(2).after_decide(true),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            },
        );
        let states = match outcome {
            rc_runtime::ExploreOutcome::Verified { states, .. } => states.to_string(),
            other => panic!("Fig. 2 must verify: {other:?}"),
        };
        let mut crashes = 0usize;
        let mut violations = 0usize;
        for seed in 0..seeds {
            let (mut mem, mut programs) = build_team_rc_system(ty.clone(), &w, &inputs);
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.25,
                crash: CrashModel::independent(5).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            crashes += exec.crashes;
            if check_consensus_execution(&exec, &inputs).is_err() {
                violations += 1;
            }
        }
        t.row(&[
            format!("S_{n}"),
            n.to_string(),
            states,
            seeds.to_string(),
            crashes.to_string(),
            violations.to_string(),
        ]);
    }
    // The broken variant (guard removed) must violate agreement.
    let cas: TypeHandle = Arc::new(Cas::new(2));
    let w = find_recording_witness(&cas, 3)
        .expect("CAS witness")
        .normalized();
    let w = if w.assignment.team_size(Team::B) >= 2 {
        w
    } else {
        RecordingWitness {
            assignment: w.assignment.swap_teams(),
            q_a: w.q_b.clone(),
            q_b: w.q_a.clone(),
        }
    };
    let inputs = team_inputs(&w.assignment);
    let outcome = explore(
        &|| build_broken_team_rc_system(cas.clone(), &w, &inputs),
        &ExploreConfig {
            crash: CrashModel::independent(0),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        },
    );
    let broken = match outcome {
        rc_runtime::ExploreOutcome::Violation { schedule, .. } => format!(
            "violation found in {} scheduler steps (no crashes needed)",
            schedule.len()
        ),
        other => panic!("the broken guard must fail: {other:?}"),
    };
    format!(
        "E2 — Fig. 2 recoverable team consensus:\n{}\nbroken |B|=1 guard \
         (Section 3.1 scenario): {broken}\n",
        t.render()
    )
}

/// E3 (Fig. 4 / Theorem 1): the simultaneous-crash transformation — and
/// the two-part independent-crash ablation (safety survives, liveness
/// does not).
pub fn e3_simultaneous(seeds: u64) -> String {
    // Part 1: rounds used vs simultaneous crash count.
    let mut t = Table::new(&[
        "crash budget",
        "schedules",
        "violations",
        "max rounds used",
        "avg steps",
    ]);
    use rc_core::algorithms::{alloc_simultaneous_rc, SimultaneousRc};
    let factory = ConsensusObjectFactory { domain: 8 };
    let inputs: Vec<Value> = (0..4).map(Value::Int).collect();
    for budget in [0usize, 2, 4, 6] {
        let mut violations = 0usize;
        let mut max_rounds = 0usize;
        let mut steps = 0usize;
        for seed in 0..seeds {
            let horizon = budget + 4;
            let mut mem = Memory::new();
            let shared = alloc_simultaneous_rc(&mut mem, &factory, inputs.len(), horizon);
            let mut programs: Vec<Box<dyn Program>> = inputs
                .iter()
                .enumerate()
                .map(|(pid, input)| {
                    Box::new(SimultaneousRc::new(
                        shared.clone(),
                        pid,
                        inputs.len(),
                        input.clone(),
                    )) as Box<dyn Program>
                })
                .collect();
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.05,
                crash: CrashModel::simultaneous(budget).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            steps += exec.steps;
            if check_consensus_execution(&exec, &inputs).is_err() {
                violations += 1;
            }
            // Rounds actually used = highest non-⊥ D register.
            let rounds_used = shared
                .d_regs
                .iter()
                .rposition(|a| !mem.peek(*a).is_bottom())
                .map_or(0, |r| r + 1);
            max_rounds = max_rounds.max(rounds_used);
        }
        t.row(&[
            budget.to_string(),
            seeds.to_string(),
            violations.to_string(),
            max_rounds.to_string(),
            (steps / seeds as usize).to_string(),
        ]);
    }
    // Part 2: the independent-crash chase (liveness failure).
    let mut chase = Table::new(&["p0 crashes (independent)", "rounds forced on crash-free p1"]);
    for budget in [4usize, 8, 16, 32] {
        let dragged = starvation_rounds(budget);
        chase.row(&[budget.to_string(), dragged.to_string()]);
    }
    format!(
        "E3 — Fig. 4 under simultaneous crashes (safety + termination):\n{}\n\
         E3b — the same transform under INDEPENDENT crashes: safety still \
         holds (0 violations in the randomized hunt; the Round-guard makes \
         every consensus instance once-per-process), but a never-crashing \
         process is dragged through unboundedly many rounds — recoverable \
         wait-freedom fails, which is exactly why Theorem 1 needs the \
         simultaneous model:\n{}",
        t.render(),
        chase.render()
    )
}

fn starvation_rounds(crash_budget: usize) -> usize {
    use rc_core::algorithms::{alloc_simultaneous_rc, SimultaneousRc};
    use rc_runtime::Step;
    let factory = ConsensusObjectFactory { domain: 4 };
    let mut mem = Memory::new();
    let shared = alloc_simultaneous_rc(&mut mem, &factory, 2, crash_budget + 4);
    let round_reg_p0 = shared.round_regs[0];
    let mut p0 = SimultaneousRc::new(shared.clone(), 0, 2, Value::Int(0));
    let mut p1 = SimultaneousRc::new(shared, 1, 2, Value::Int(1));
    let mut crashes = 0usize;
    while crashes < crash_budget {
        while mem.peek(round_reg_p0).as_int().expect("int") <= p1.current_round() as i64 {
            if let Step::Decided(_) = p0.step(&mut mem) {
                p0.on_crash();
                crashes += 1;
                if crashes >= crash_budget {
                    break;
                }
            }
        }
        if crashes >= crash_budget {
            break;
        }
        let target = p1.current_round() + 1;
        while p1.current_round() < target {
            if let Step::Decided(_) = p1.step(&mut mem) {
                unreachable!("p1 cannot decide while p0 is ahead");
            }
        }
    }
    p1.current_round()
}

/// E4 (Fig. 5 / Prop. 19): the `T_n` family — the gap between the two
/// hierarchies.
pub fn e4_tn(max_n: usize) -> String {
    let mut t = Table::new(&[
        "n",
        "discerning (= cons)",
        "max recording",
        "rcons interval",
        "gap cons − rcons_hi",
    ]);
    for n in 4..=max_n {
        let report = compute_hierarchy(&Tn::new(n), n + 1);
        let hi = report.rcons_upper().expect("finite");
        t.row(&[
            n.to_string(),
            report.max_discerning.to_string(),
            report.max_recording.to_string(),
            format!("[{}, {}]", report.rcons_lower(), hi),
            (n - hi).to_string(),
        ]);
    }
    format!(
        "E4 — T_n (Fig. 5): n-discerning but not (n−1)-recording; \
         rcons(T_n) < cons(T_n) = n (Corollary 20):\n{}\n{}",
        t.render(),
        rc_spec::diagram::render_transitions(&Tn::new(4), &Tn::forget_state())
    )
}

/// E5 (Fig. 6 / Prop. 21): the `S_n` family — every RC level is populated.
pub fn e5_sn(max_n: usize) -> String {
    let mut t = Table::new(&["n", "discerning (= cons)", "max recording", "rcons"]);
    for n in 2..=max_n {
        let report = compute_hierarchy(&Sn::new(n), n + 1);
        let hi = report.rcons_upper().expect("finite");
        let lo = report.rcons_lower();
        assert_eq!(lo, hi, "Prop. 21: rcons(S_n) is exact");
        t.row(&[
            n.to_string(),
            report.max_discerning.to_string(),
            report.max_recording.to_string(),
            lo.to_string(),
        ]);
    }
    format!(
        "E5 — S_n (Fig. 6): rcons(S_n) = cons(S_n) = n (Proposition 21):\n{}\n{}",
        t.render(),
        rc_spec::diagram::render_transitions(&Sn::new(3), &Sn::q0())
    )
}

/// E6 (Fig. 7): RUniversal exactly-once vs the recovery-less baseline.
pub fn e6_universal(seeds: u64) -> String {
    use rc_universal::{audit_history, RUniversalWorker, UniversalLayout};
    let mut t = Table::new(&[
        "crash prob",
        "schedules",
        "crashes",
        "audit failures",
        "duplicate/lost ops",
    ]);
    let n = 3;
    let ops_per = 3;
    for crash_prob in [0.0, 0.02, 0.05] {
        let mut crashes = 0usize;
        let mut audit_failures = 0usize;
        let mut wrong_counts = 0usize;
        for seed in 0..seeds {
            let mut mem = Memory::new();
            let pool = 1 + n * ops_per;
            let layout = UniversalLayout::alloc(
                &mut mem,
                Arc::new(rc_spec::types::Counter::new(4096)),
                Value::Int(0),
                n,
                ops_per,
                &ConsensusObjectFactory {
                    domain: pool as u32,
                },
            );
            let mut programs: Vec<Box<dyn Program>> = (0..n)
                .map(|pid| {
                    Box::new(RUniversalWorker::new(
                        layout.clone(),
                        pid,
                        vec![Operation::nullary("inc"); ops_per],
                    )) as Box<dyn Program>
                })
                .collect();
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob,
                crash: CrashModel::independent(5),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            crashes += exec.crashes;
            match audit_history(&mem, &layout) {
                Ok(report) => {
                    if report.order.len() != n * ops_per {
                        wrong_counts += 1;
                    }
                }
                Err(_) => audit_failures += 1,
            }
        }
        t.row(&[
            format!("{crash_prob:.2}"),
            seeds.to_string(),
            crashes.to_string(),
            audit_failures.to_string(),
            wrong_counts.to_string(),
        ]);
    }
    // Ablation 1: the recovery-less baseline's duplicate rate under the
    // same random crash regime (at-least-once semantics).
    let mut herlihy = Table::new(&["crash prob", "schedules", "runs with duplicated ops"]);
    for crash_prob in [0.02, 0.05] {
        let mut duplicated = 0usize;
        for seed in 0..seeds {
            let mut mem = Memory::new();
            let slots = ops_per + 6; // room for retries
            let pool = 1 + n * slots;
            let layout = rc_universal::UniversalLayout::alloc(
                &mut mem,
                Arc::new(rc_spec::types::Counter::new(4096)),
                Value::Int(0),
                n,
                slots,
                &ConsensusObjectFactory {
                    domain: pool as u32,
                },
            );
            let mut programs: Vec<Box<dyn Program>> = (0..n)
                .map(|pid| {
                    Box::new(rc_universal::HerlihyWorker::new(
                        layout.clone(),
                        pid,
                        vec![Operation::nullary("inc"); ops_per],
                    )) as Box<dyn Program>
                })
                .collect();
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob,
                crash: CrashModel::independent(5),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            if !exec.all_decided {
                continue;
            }
            if let Ok(report) = rc_universal::audit_history(&mem, &layout) {
                if report.order.len() > n * ops_per {
                    duplicated += 1;
                }
            }
        }
        herlihy.row(&[
            format!("{crash_prob:.2}"),
            seeds.to_string(),
            duplicated.to_string(),
        ]);
    }

    // Ablation 2: the per-node RC instances implemented by Fig. 2
    // tournaments over the WEAK type S_3 (with Appendix F input masking) —
    // end-to-end universality from a recording type.
    let weak = {
        let sn: TypeHandle = Arc::new(Sn::new(3));
        let witness = find_recording_witness(&sn, 3).expect("S_3 records");
        let factory = rc_core::algorithms::tournament_rc_factory(sn, witness);
        let workload = rc_universal::Workload::uniform(3, vec![Operation::nullary("inc"); 2]);
        let mut ok = 0usize;
        let runs = seeds.min(25);
        for seed in 0..runs {
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.01,
                crash: CrashModel::independent(3),
            });
            let outcome = rc_universal::run_workload(
                Arc::new(rc_spec::types::Counter::new(256)),
                Value::Int(0),
                &workload,
                &factory,
                &mut sched,
            );
            if outcome.is_exactly_once() {
                ok += 1;
            }
        }
        format!("{ok}/{runs} schedules exactly-once (must be {runs}/{runs})")
    };

    format!(
        "E6 — RUniversal (Fig. 7), recoverable counter, {n} processes × \
         {ops_per} ops, per-node RC = consensus objects:\n{}\n\
         E6b — recovery-less Herlihy baseline under the same crashes \
         (at-least-once: duplicates appear):\n{}\n\
         E6c — per-node RC = Fig. 2 tournaments over S_3 with Appendix F \
         input masking: {weak}\n",
        t.render(),
        herlihy.render()
    )
}

/// E7 (Fig. 8 / Appendix H): the stack.
pub fn e7_stack() -> String {
    use rc_core::analysis::{analyze_pairs, PairConflict};
    let stack = Stack::new(3, 2);
    let rows = analyze_pairs(&stack);
    let mut commute = 0usize;
    let mut overwrite = 0usize;
    let mut same = 0usize;
    let mut clean = 0usize;
    for r in &rows {
        if r.conflicts.is_empty() {
            clean += 1;
        }
        for c in &r.conflicts {
            match c {
                PairConflict::Commute => commute += 1,
                PairConflict::FirstOverwritesSecond | PairConflict::SecondOverwritesFirst => {
                    overwrite += 1
                }
                PairConflict::SameEffect => same += 1,
            }
        }
    }
    let mut t = Table::new(&["pair classification (all q0 × op × op)", "count"]);
    t.row(&["commute (Fig. 8a)".into(), commute.to_string()]);
    t.row(&["overwrite (Fig. 8b)".into(), overwrite.to_string()]);
    t.row(&["identical effect".into(), same.to_string()]);
    t.row(&[
        "conflict-free (recording witnesses)".into(),
        clean.to_string(),
    ]);
    format!(
        "E7 — the stack (Appendix H): cons(stack) = 2, rcons(stack) = 1.\n{}\
         The conflict-free pairs are push-only witnesses: the stack IS \
         structurally n-recording, but it is NOT readable, so Theorem 8 \
         yields no algorithm — and the crash adversary defeats both \
         recoverable extensions of the classic 2-process protocol \
         (model-checked in tests/stack_impossibility.rs: ⊥-means-lost \
         breaks with 1 crash, ⊥-means-won with 2).\n{}",
        t.render(),
        e7_valency_summary()
    )
}

/// The Fig. 8 valency mechanics, summarized for the E7 table (full
/// walkthrough in tests/fig8_mechanics.rs).
fn e7_valency_summary() -> String {
    use rc_core::valency::{find_critical, replay, System};
    use rc_runtime::{MemOps, Program, Step};

    #[derive(Clone, Debug)]
    struct StackConsensus {
        stack: rc_runtime::Addr,
        my_reg: rc_runtime::Addr,
        other_reg: rc_runtime::Addr,
        input: Value,
        pc: u8,
    }
    impl Program for StackConsensus {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    mem.write_register(self.my_reg, self.input.clone());
                    self.pc = 1;
                    Step::Running
                }
                1 => {
                    let popped = mem.apply(self.stack, &Operation::nullary("pop"));
                    self.pc = if popped == Value::Int(1) { 2 } else { 3 };
                    Step::Running
                }
                2 => Step::Decided(self.input.clone()),
                _ => Step::Decided(mem.read_register(self.other_reg)),
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    let factory = || {
        let mut mem = Memory::new();
        let stack = mem.alloc_object(
            Arc::new(Stack::new(4, 2)),
            Value::List(vec![Value::Int(0), Value::Int(1)]),
        );
        let regs = [
            mem.alloc_register(Value::Bottom),
            mem.alloc_register(Value::Bottom),
        ];
        let programs: Vec<Box<dyn Program>> = (0..2)
            .map(|i| {
                Box::new(StackConsensus {
                    stack,
                    my_reg: regs[i],
                    other_reg: regs[1 - i],
                    input: Value::Int(i as i64 + 10),
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        System::new(mem, programs)
    };
    let critical = find_critical(&factory).expect("critical execution exists");
    let mut branch_a = replay(&factory, &critical.schedule);
    branch_a.step(0);
    branch_a.step(1);
    let mut branch_b = replay(&factory, &critical.schedule);
    branch_b.step(1);
    branch_b.step(0);
    let commute = branch_a.mem.state_key() == branch_b.mem.state_key();
    branch_a.crash(0);
    branch_b.crash(0);
    let x_a = branch_a.run_solo(0, 100);
    let x_b = branch_b.run_solo(0, 100);
    format!(
        "Fig. 8 valency mechanics: critical execution after {} steps; the two \
         poised pops commute ({}); after a crash of p1 its recovery run decides \
         {} in both branches — contradicting the distinct committed valencies \
         {:?} (the paper's Lemma-15 move, executed).\n",
        critical.schedule.len(),
        commute,
        x_a,
        critical
            .commitments
            .iter()
            .map(|(p, v)| format!("p{}→{}", p + 1, v))
            .collect::<Vec<_>>()
    )
    .replace("decides Int(", "decides (")
        + if x_a == x_b {
            ""
        } else {
            "(branches distinguishable?!)"
        }
}

/// E8 (Corollary 17): the full catalog survey.
pub fn e8_catalog() -> String {
    let mut t = Table::new(&[
        "type",
        "readable",
        "discerning",
        "recording",
        "computed rcons",
        "published cons",
        "published rcons",
    ]);
    for entry in catalog() {
        let cap = match entry.known_cons {
            ConsensusNumber::Finite(n) => (n + 2).min(8),
            ConsensusNumber::Infinite => 5,
        };
        let report = compute_hierarchy(&entry.object, cap);
        assert!(report.satisfies_corollary_17(), "{}", entry.id);
        let rcons = match (report.rcons_lower(), report.rcons_upper()) {
            (lo, Some(hi)) if lo == hi => lo.to_string(),
            (lo, Some(hi)) => format!("[{lo}, {hi}]"),
            (lo, None) => format!("≥{lo}"),
        };
        t.row(&[
            entry.id.to_string(),
            if report.readable { "yes" } else { "no" }.into(),
            report.max_discerning.to_string(),
            report.max_recording.to_string(),
            rcons,
            entry.known_cons.to_string(),
            entry.known_rcons.to_string(),
        ]);
    }
    format!(
        "E8 — hierarchy survey (Corollary 17: cons − 2 ≤ rcons ≤ cons for \
         readable types):\n{}",
        t.render()
    )
}

/// E9 (Theorem 22): RC power of *sets* of types.
pub fn e9_sets() -> String {
    let mut t = Table::new(&["type set", "max individual rcons (lo)", "set rcons bounds"]);
    let pairs: Vec<(&str, Vec<TypeHandle>)> = vec![
        (
            "{S_2, S_3}",
            vec![Arc::new(Sn::new(2)), Arc::new(Sn::new(3))],
        ),
        (
            "{S_3, test-and-set}",
            vec![
                Arc::new(Sn::new(3)),
                Arc::new(rc_spec::types::TestAndSet::new()),
            ],
        ),
        (
            "{T_4, S_4}",
            vec![Arc::new(Tn::new(4)), Arc::new(Sn::new(4))],
        ),
    ];
    for (name, types) in pairs {
        let reports: Vec<_> = types.iter().map(|ty| compute_hierarchy(ty, 6)).collect();
        let max_lo = reports
            .iter()
            .map(|r| r.rcons_lower())
            .max()
            .expect("nonempty");
        let (lo, hi) = set_rcons_bounds(&reports);
        let hi = hi.map_or("∞?".into(), |h| h.to_string());
        t.row(&[name.into(), max_lo.to_string(), format!("[{lo}, {hi}]")]);
    }
    format!(
        "E9 — Theorem 22: a set of readable types is at most one level \
         stronger than its strongest member:\n{}",
        t.render()
    )
}

/// E10: the headline table — per type, the largest n where ordinary
/// consensus is *executably* solvable vs the recoverable bounds.
pub fn e10_headline(seeds: u64) -> String {
    let mut t = Table::new(&[
        "type",
        "consensus solvable at n (verified crash-free)",
        "RC solvable at n (verified under crashes)",
        "RC impossible at n (theory)",
        "crash counterexample",
    ]);
    for n in [4usize, 6] {
        let tn = Tn::new(n);
        let ty: TypeHandle = Arc::new(Tn::new(n));
        let w = check_discerning(
            &tn,
            &Assignment::split(
                Tn::forget_state(),
                vec![Tn::op_a(); n / 2],
                vec![Tn::op_b(); n.div_ceil(2)],
            ),
        )
        .expect("T_n witness");
        // Consensus at n: crash-free execution check.
        let inputs = team_inputs(&w.assignment);
        let (mut mem, mut programs) = build_team_consensus_system(ty.clone(), &w, &inputs);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        check_consensus_execution(&exec, &inputs).expect("Theorem 3 crash-free");
        // RC at n−2: tournament over the (n−2)-recording witness.
        let rw = find_recording_witness(&ty, n - 2).expect("Theorem 16");
        let rc_inputs: Vec<Value> = (0..(n - 2) as i64).map(Value::Int).collect();
        let mut violations = 0usize;
        for seed in 0..seeds {
            let (mut mem, mut programs) = build_tournament_rc(ty.clone(), &rw, &rc_inputs);
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.2,
                crash: CrashModel::independent(4).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            if check_consensus_execution(&exec, &rc_inputs).is_err() {
                violations += 1;
            }
        }
        assert_eq!(violations, 0);
        t.row(&[
            format!("T_{n}"),
            format!("{n} ✓"),
            format!("{} ✓ ({seeds} crash schedules)", n - 2),
            format!("{n} (not (n−1)-recording + Thm 14)"),
            "1 crash breaks Thm-3 consensus (E2/adversary)".into(),
        ]);
    }
    for n in [3usize, 5] {
        let (ty, w) = sn_witness(n);
        let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
        let mut violations = 0usize;
        for seed in 0..seeds {
            let (mut mem, mut programs) = build_tournament_rc(ty.clone(), &w, &inputs);
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.2,
                crash: CrashModel::independent(4).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            if check_consensus_execution(&exec, &inputs).is_err() {
                violations += 1;
            }
        }
        assert_eq!(violations, 0);
        t.row(&[
            format!("S_{n}"),
            format!("{n} ✓"),
            format!("{n} ✓ ({seeds} crash schedules)"),
            format!("{} (not ({n}+1)-recording…)", n + 1),
            "none: rcons = cons".into(),
        ]);
    }
    format!(
        "E10 — when is recoverable consensus harder than consensus?\n\
         For T_n: strictly harder (gap ≥ 1 level); for S_n: not harder.\n{}",
        t.render()
    )
}

/// One measured configuration of the E11 engine sweep.
#[derive(Clone, Debug)]
pub struct E11Row {
    /// System under check, e.g. `"S_3"` (the Fig. 2 team-RC algorithm
    /// over that type, as in E2).
    pub system: String,
    /// Crash budget of the (independent, post-decide) adversary.
    pub crash_budget: usize,
    /// Engine: `"iterative"` (the serial worklist DFS) or `"parallel"`
    /// (the sharded frontier engine).
    pub engine: &'static str,
    /// `Verified` / `Truncated` (any violation would panic the sweep).
    pub verdict: String,
    /// Distinct states visited — the peak state count of the search.
    pub states: usize,
    /// Complete executions enumerated (memoized suffixes counted once).
    pub leaves: usize,
    /// Wall-clock milliseconds (machine-dependent).
    pub millis: f64,
    /// `states / seconds` (machine-dependent).
    pub states_per_sec: f64,
    /// This row's states/sec over the iterative row of the same
    /// configuration — the iterative-vs-sharded column (1.0 for the
    /// iterative rows themselves).
    pub vs_serial: f64,
}

fn e11_measure(
    engine: &'static str,
    system: &str,
    budget: usize,
    factory: &rc_runtime::SystemFactory<'_>,
    config: &ExploreConfig,
) -> E11Row {
    use rc_runtime::ExploreOutcome;
    use std::time::{Duration, Instant};
    let run_once = || match engine {
        "iterative" => explore(factory, config),
        "parallel" => rc_runtime::explore_parallel(factory, config),
        other => panic!("unknown engine {other}"),
    };
    // Single runs of small instances are milliseconds — far below timer
    // noise. Repeat until a time floor is reached (minimum three runs,
    // first discarded as warm-up) and report the best run, the standard
    // throughput methodology.
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut outcome = run_once(); // warm-up, also the reported verdict
    let mut runs = 0u32;
    while runs < 3 || (total < Duration::from_millis(200) && runs < 50) {
        let start = Instant::now();
        outcome = run_once();
        let elapsed = start.elapsed();
        total += elapsed;
        best = best.min(elapsed);
        runs += 1;
    }
    let (verdict, states, leaves) = match outcome {
        ExploreOutcome::Verified { states, leaves } => ("Verified".to_string(), states, leaves),
        ExploreOutcome::Truncated { states } => ("Truncated".to_string(), states, 0),
        ExploreOutcome::Violation { schedule, .. } => {
            panic!(
                "E11 systems are correct; violation after {} actions",
                schedule.len()
            )
        }
    };
    E11Row {
        system: system.to_string(),
        crash_budget: budget,
        engine,
        verdict,
        states,
        leaves,
        millis: best.as_secs_f64() * 1e3,
        states_per_sec: states as f64 / best.as_secs_f64().max(1e-9),
        vs_serial: 1.0,
    }
}

/// E11: model-checker engine scaling — states/sec and peak state counts
/// on the Fig. 2 team-RC workload (the E2 systems), `S_2..S_5` × crash
/// budgets, the iterative serial DFS vs the sharded parallel frontier
/// engine (the `vs serial` column is their states/sec ratio per
/// configuration).
///
/// The adversary matches E2: independent crashes, post-decide crashes
/// enabled, validity inputs declared. State and leaf counts are
/// deterministic and must agree across both engines; wall-clock figures
/// are machine-dependent (`BENCH_explore.json` tracks them across PRs
/// on the reference machine — the seed recursive engine's last recorded
/// baseline lives in EXPERIMENTS.md §E11 and the git history of that
/// file, the engine itself is deleted).
pub fn e11_explore_scaling(fast: bool) -> (String, Vec<E11Row>) {
    // (n, crash budgets): bigger systems get smaller budgets to keep the
    // exact search inside the default state cap.
    let sweep: &[(usize, &[usize])] = if fast {
        &[(2, &[0, 1, 2]), (3, &[0, 1, 2]), (4, &[0, 1])]
    } else {
        &[
            (2, &[0, 1, 2]),
            (3, &[0, 1, 2]),
            (4, &[0, 1, 2]),
            (5, &[0, 1]),
        ]
    };
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let mut rows = Vec::new();
    for &(n, budgets) in sweep {
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(&w.assignment);
        let system = format!("S_{n}");
        let factory = || build_team_rc_system(ty.clone(), &w, &inputs);
        for &budget in budgets {
            let config = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            };
            let serial = e11_measure("iterative", &system, budget, &factory, &config);
            let mut parallel = e11_measure(
                "parallel",
                &system,
                budget,
                &factory,
                &ExploreConfig {
                    threads,
                    ..config.clone()
                },
            );
            assert_eq!(serial.verdict, parallel.verdict, "engines must agree");
            assert_eq!(serial.states, parallel.states, "engines must agree");
            assert_eq!(serial.leaves, parallel.leaves, "engines must agree");
            parallel.vs_serial = parallel.states_per_sec / serial.states_per_sec.max(1e-9);
            rows.push(serial);
            rows.push(parallel);
        }
    }
    let mut t = Table::new(&[
        "system",
        "crash budget",
        "engine",
        "verdict",
        "states",
        "leaves",
        "ms",
        "states/sec",
        "vs serial",
    ]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.crash_budget.to_string(),
            r.engine.to_string(),
            r.verdict.clone(),
            r.states.to_string(),
            r.leaves.to_string(),
            format!("{:.1}", r.millis),
            format!("{:.0}", r.states_per_sec),
            format!("{:.2}×", r.vs_serial),
        ]);
    }
    // The headline ratio: sharded vs serial on the largest instance of
    // the sweep — the configuration the ROADMAP item names (S_5, crash
    // budget ≥ 1) when the full sweep runs.
    let speedup = {
        let pick = |system: &str, budget: usize| {
            rows.iter()
                .find(|r| r.system == system && r.crash_budget == budget && r.engine == "parallel")
                .map(|r| r.vs_serial)
        };
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        match pick("S_5", 1).or_else(|| pick("S_4", 1)) {
            Some(ratio) => format!(
                "sharded-dedup frontier at {ratio:.2}× the serial engine's states/sec on \
                 the largest swept instance ({threads} threads, {cores} hardware core(s); \
                 on a single core the engine runs its fused single-worker configuration, \
                 so this ratio is the coordination-free BFS-vs-DFS floor — the \
                 pre-sharding frontier recorded 0.17× on S_5/budget-1, see the \
                 BENCH_explore.json history)"
            ),
            None => "n/a (no parallel rows in sweep)".to_string(),
        }
    };
    let report = format!(
        "E11 — model-checker engine scaling (Fig. 2 team-RC workload, \
         independent crashes, post-decide enabled):\n{}\n{speedup}; \
         states/leaves are deterministic and identical across engines \
         (asserted), wall-clock is machine-dependent.\n",
        t.render()
    );
    (report, rows)
}

/// One measured configuration of the E12 symmetry sweep.
#[derive(Clone, Debug)]
pub struct E12Row {
    /// System under check (Fig. 2 team-RC over `S_n`, as in E2/E11).
    pub system: String,
    /// Crash budget of the (independent, post-decide) adversary.
    pub crash_budget: usize,
    /// The `max_states` cap this row ran under (the default cap unless
    /// the row demonstrates cap-exceed behaviour).
    pub max_states: usize,
    /// `"off"` (plain serial DFS) or `"on"` (process-symmetry reduction).
    pub symmetry: &'static str,
    /// `Verified` / `Truncated` (a violation would panic the sweep).
    pub verdict: String,
    /// Distinct states visited — canonical representatives when
    /// symmetry is on.
    pub states: usize,
    /// Complete executions enumerated; symmetry-on rows weight each
    /// canonical leaf by its permutation-class size, so Verified rows
    /// match the off rows exactly (asserted).
    pub leaves: usize,
    /// Wall-clock milliseconds of the best run (machine-dependent).
    pub millis: f64,
    /// `states / seconds` (machine-dependent).
    pub states_per_sec: f64,
    /// `states(off) / states(on)` for the on rows (1.0 for off rows);
    /// for the cap-exceed demonstration the off side is a lower bound.
    pub reduction: f64,
}

/// The E12/E13 sweeps' shared measurement policy — lighter repetition
/// than E11 (min one run, 200 ms floor, 30-run cap): their headline
/// figures are the deterministic state counts; the throughput columns
/// are secondary. Returns the verdict string, state and leaf counts and
/// the best run's wall clock. Panics on a violation (both sweeps check
/// correct systems only), naming `experiment`.
fn measure_sweep_run(
    experiment: &str,
    run_once: &dyn Fn() -> rc_runtime::ExploreOutcome,
) -> (String, usize, usize, std::time::Duration) {
    use rc_runtime::ExploreOutcome;
    use std::time::{Duration, Instant};
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut outcome;
    let mut runs = 0u32;
    loop {
        let start = Instant::now();
        outcome = Some(run_once());
        let elapsed = start.elapsed();
        total += elapsed;
        best = best.min(elapsed);
        runs += 1;
        if runs >= 30 || total >= Duration::from_millis(200) {
            break;
        }
    }
    match outcome.expect("at least one run") {
        ExploreOutcome::Verified { states, leaves } => {
            ("Verified".to_string(), states, leaves, best)
        }
        ExploreOutcome::Truncated { states } => ("Truncated".to_string(), states, 0, best),
        ExploreOutcome::Violation { schedule, .. } => panic!(
            "{experiment} systems are correct; violation after {} actions",
            schedule.len()
        ),
    }
}

fn e12_measure(
    system: &str,
    budget: usize,
    symmetry: &'static str,
    config: &ExploreConfig,
    run_once: &dyn Fn() -> rc_runtime::ExploreOutcome,
) -> E12Row {
    let (verdict, states, leaves, best) = measure_sweep_run("E12", run_once);
    E12Row {
        system: system.to_string(),
        crash_budget: budget,
        max_states: config.max_states,
        symmetry,
        verdict,
        states,
        leaves,
        millis: best.as_secs_f64() * 1e3,
        states_per_sec: states as f64 / best.as_secs_f64().max(1e-9),
        reduction: 1.0,
    }
}

/// E12: process-symmetry reduction — states visited and states/sec with
/// symmetry off vs on on the Fig. 2 team-RC workload, `S_3..S_6` ×
/// crash budgets, plus the cap-exceed demonstration: `S_8`/budget-0
/// exceeds the default 5M-state cap without symmetry (`Truncated`) and
/// reaches an exact `Verified` verdict with it.
///
/// The `S_n` witness has one team-A row and `n − 1` identical team-B
/// rows, so the symmetric search collapses the team-B orbit — up to
/// `(n−1)!` states per class. Verdicts and (weighted) leaf counts are
/// asserted identical between the off and on rows of every
/// both-verifying configuration.
pub fn e12_symmetry_reduction(fast: bool) -> (String, Vec<E12Row>) {
    let sweep: &[(usize, &[usize])] = if fast {
        &[(3, &[1, 2]), (4, &[1])]
    } else {
        &[(3, &[1, 2]), (4, &[1, 2]), (5, &[0, 1]), (6, &[0, 1])]
    };
    let mut rows = Vec::new();
    let sweep_one = |n: usize, budget: usize, config: &ExploreConfig| -> (E12Row, E12Row) {
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(&w.assignment);
        let system = format!("S_{n}");
        let config = ExploreConfig {
            crash: CrashModel::independent(budget).after_decide(true),
            inputs: Some(inputs.clone()),
            ..config.clone()
        };
        let off = e12_measure(&system, budget, "off", &config, &|| {
            explore(&|| build_team_rc_system(ty.clone(), &w, &inputs), &config)
        });
        let mut on = e12_measure(&system, budget, "on", &config, &|| {
            rc_runtime::explore_symmetric(
                &|| build_team_rc_system_sym(ty.clone(), &w, &inputs),
                &config,
            )
        });
        on.reduction = off.states as f64 / on.states as f64;
        (off, on)
    };
    for &(n, budgets) in sweep {
        for &budget in budgets {
            let (off, on) = sweep_one(n, budget, &ExploreConfig::default());
            assert_eq!(
                off.verdict, on.verdict,
                "S_{n}/{budget}: verdicts must agree"
            );
            assert_eq!(
                off.leaves, on.leaves,
                "S_{n}/{budget}: weighted leaf counts must agree"
            );
            assert!(
                on.states < off.states,
                "S_{n}/{budget}: symmetry must reduce states"
            );
            rows.push(off);
            rows.push(on);
        }
    }
    // The cap-exceed demonstration (full sweep only — the off side costs
    // a cap-length run): S_8/budget-0 truncates at the default cap
    // without symmetry and verifies exactly with it.
    if !fast {
        let (off, on) = sweep_one(8, 0, &ExploreConfig::default());
        assert_eq!(
            off.verdict, "Truncated",
            "S_8/0 must exceed the default cap"
        );
        assert_eq!(on.verdict, "Verified", "S_8/0 must verify under symmetry");
        rows.push(off);
        rows.push(on);
    }
    let mut t = Table::new(&[
        "system",
        "crash budget",
        "cap",
        "symmetry",
        "verdict",
        "states",
        "leaves",
        "ms",
        "states/sec",
        "reduction",
    ]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.crash_budget.to_string(),
            r.max_states.to_string(),
            r.symmetry.to_string(),
            r.verdict.clone(),
            r.states.to_string(),
            r.leaves.to_string(),
            format!("{:.1}", r.millis),
            format!("{:.0}", r.states_per_sec),
            if r.symmetry == "on" {
                format!("{:.1}×", r.reduction)
            } else {
                "1.0×".into()
            },
        ]);
    }
    let headline = rows
        .iter()
        .filter(|r| r.symmetry == "on" && r.verdict == "Verified")
        .map(|r| (r.reduction, r.system.clone(), r.crash_budget))
        .fold((0.0f64, String::new(), 0usize), |acc, x| {
            if x.0 > acc.0 {
                x
            } else {
                acc
            }
        });
    let cap_note = if fast {
        "(the S_8 cap-exceed demonstration runs in the full sweep only)"
    } else {
        "the S_8/budget-0 rows show an instance the plain engine cannot finish \
         within the default cap that the symmetric engine verifies exactly"
    };
    let report = format!(
        "E12 — process-symmetry reduction (Fig. 2 team-RC workload; the team-B \
         orbit of the S_n witness collapses, up to (n−1)! states per class):\n{}\n\
         largest recorded reduction: {:.1}× on {}/budget-{}; verdicts and weighted \
         leaf counts are identical with symmetry off and on (asserted), witness \
         schedules stay in original process ids, and {cap_note}.\n",
        t.render(),
        headline.0,
        headline.1,
        headline.2,
    );
    (report, rows)
}

/// One measured configuration of the E13 full-state symmetry sweep.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// System under check: `"masked S_n"` (the input-masked Fig. 2
    /// team-RC system — per-process mask registers, the introduction's
    /// transformation) or `"SimultaneousRc n=k"` (Fig. 4 over atomic
    /// consensus objects).
    pub system: String,
    /// Crash budget (independent + post-decide for the masked systems,
    /// simultaneous + post-decide for Fig. 4).
    pub crash_budget: usize,
    /// The `max_states` cap the row ran under.
    pub max_states: usize,
    /// `"off"` (plain engine), `"slots"` (the strongest *slots-only*
    /// declaration PR 4 allowed — singleton orbits on these systems, so
    /// byte-identical to off; asserted) or `"rebind"` (owned-cell orbits
    /// with `Program::rebind`).
    pub mode: &'static str,
    /// `Verified` / `Truncated` (a violation would panic the sweep).
    pub verdict: String,
    /// Distinct states visited — canonical representatives under
    /// `rebind`.
    pub states: usize,
    /// Weighted executions enumerated; Verified `rebind` rows must match
    /// the off rows exactly (asserted).
    pub leaves: usize,
    /// Wall-clock milliseconds of the best run (machine-dependent).
    pub millis: f64,
    /// `states / seconds` (machine-dependent).
    pub states_per_sec: f64,
    /// `states(off) / states(this row)`; a **lower bound** when the off
    /// side truncated at the cap (see `reduction_is_lower_bound`).
    pub reduction: f64,
    /// Whether `reduction` is a lower bound (off side hit the cap).
    pub reduction_is_lower_bound: bool,
}

fn e13_measure(
    system: &str,
    budget: usize,
    mode: &'static str,
    config: &ExploreConfig,
    run_once: &dyn Fn() -> rc_runtime::ExploreOutcome,
) -> E13Row {
    let (verdict, states, leaves, best) = measure_sweep_run("E13", run_once);
    E13Row {
        system: system.to_string(),
        crash_budget: budget,
        max_states: config.max_states,
        mode,
        verdict,
        states,
        leaves,
        millis: best.as_secs_f64() * 1e3,
        states_per_sec: states as f64 / best.as_secs_f64().max(1e-9),
        reduction: 1.0,
        reduction_is_lower_bound: false,
    }
}

/// E13: **full-state** symmetry via `Program::rebind` — the systems
/// PR 4's slots-only reduction had to keep asymmetric because each
/// process owns distinguishing shared cells. Three modes per instance:
///
/// * `off` — the plain engine;
/// * `slots` — the strongest slots-only declaration that is *sound* on
///   these systems. For masked programs that is the singleton-orbit
///   (trivial) spec: a non-singleton slots declaration is rejected by
///   the orbit reference-consistency validation (the mask registers are
///   per-process distinguishing state), so `slots` is byte-identical to
///   `off` — which is precisely the point of the column;
/// * `rebind` — the mask registers are declared *owned*
///   (`SymmetrySpec::with_owned_cells`), permute together with their
///   owners, and relocated wrappers are rebound (`Program::rebind`).
///
/// The masked `S_7`/`S_8` budget-0 instances exceed the default 5M-state
/// cap without rebind (`Truncated`) and verify exactly with it —
/// reductions are then reported as lower bounds. Fig. 4
/// (`SimultaneousRc`) rows run `off`/`slots` only: its per-process round
/// registers are read by *every* process (the line-44 termination scan),
/// so no owned-cell declaration is sound — the validator rejects it
/// (tested in `rc-core`). The registers reduce under the certified
/// *scalarset* kind instead (E17); here the all-distinct inputs leave
/// every orbit a singleton, so the family is inert and the sym row is
/// byte-identical to `off`.
pub fn e13_full_state_symmetry(fast: bool) -> (String, Vec<E13Row>) {
    // (n, budgets, slots_row, off_row) per masked S_n instance: the off
    // search of S_7/S_8 at budget 0 is a cap-length run (~5M states), so
    // the fast sweep skips those sizes entirely and the full sweep
    // measures the (identical-by-construction) slots rows only where the
    // off side verifies quickly.
    let masked_sweep: &[(usize, &[usize], bool)] = if fast {
        &[(4, &[0, 1], true), (5, &[0], false)]
    } else {
        &[
            (5, &[0, 1], true),
            (6, &[0], true),
            (7, &[0], false),
            (8, &[0], false),
        ]
    };
    let mut rows: Vec<E13Row> = Vec::new();
    for &(n, budgets, measure_slots) in masked_sweep {
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(&w.assignment);
        let system = format!("masked S_{n}");
        for &budget in budgets {
            let config = ExploreConfig {
                crash: CrashModel::independent(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            };
            let off = e13_measure(&system, budget, "off", &config, &|| {
                explore(
                    &|| build_masked_team_rc_system(ty.clone(), &w, &inputs),
                    &config,
                )
            });
            if measure_slots {
                let slots = e13_measure(&system, budget, "slots", &config, &|| {
                    rc_runtime::explore_symmetric(
                        &|| {
                            let (mem, programs) =
                                build_masked_team_rc_system(ty.clone(), &w, &inputs);
                            let n = programs.len();
                            (mem, programs, rc_runtime::SymmetrySpec::trivial(n))
                        },
                        &config,
                    )
                });
                assert_eq!(
                    (&slots.verdict, slots.states, slots.leaves),
                    (&off.verdict, off.states, off.leaves),
                    "{system}/{budget}: slots-only is the identity on masked systems"
                );
                rows.push(slots);
            }
            let mut on = e13_measure(&system, budget, "rebind", &config, &|| {
                rc_runtime::explore_symmetric(
                    &|| build_masked_team_rc_system_sym(ty.clone(), &w, &inputs),
                    &config,
                )
            });
            assert_eq!(
                on.verdict, "Verified",
                "{system}/{budget} must verify under rebind"
            );
            if off.verdict == "Verified" {
                assert_eq!(
                    on.leaves, off.leaves,
                    "{system}/{budget}: weighted leaf counts must agree"
                );
                assert!(
                    on.states < off.states,
                    "{system}/{budget}: rebind must reduce states"
                );
            } else {
                on.reduction_is_lower_bound = true;
            }
            on.reduction = off.states as f64 / on.states as f64;
            rows.push(off);
            rows.push(on);
        }
    }
    // Fig. 4 rows: off and the certified scalarset declaration under
    // all-distinct inputs — every orbit is a singleton, so the family
    // is inert here and the quotient is the identity (the E14 audit
    // warns exactly this); E17 measures the acting-orbit instances,
    // where the same declaration reduces.
    {
        let n = 3;
        let budget = 1;
        let factory = ConsensusObjectFactory { domain: 4 };
        let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
        let horizon = 4;
        let system = format!("SimultaneousRc n={n}");
        let config = ExploreConfig {
            crash: CrashModel::simultaneous(budget).after_decide(true),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        };
        let off = e13_measure(&system, budget, "off", &config, &|| {
            explore(
                &|| build_simultaneous_rc_system(&factory, &inputs, horizon),
                &config,
            )
        });
        let slots = e13_measure(&system, budget, "slots", &config, &|| {
            rc_runtime::explore_symmetric(
                &|| build_simultaneous_rc_system_sym(&factory, &inputs, horizon),
                &config,
            )
        });
        assert_eq!(
            (&slots.verdict, slots.states, slots.leaves),
            (&off.verdict, off.states, off.leaves),
            "distinct inputs leave the scalarset family inert, so outcomes \
             are identical"
        );
        rows.push(off);
        rows.push(slots);
    }
    let mut t = Table::new(&[
        "system",
        "crash budget",
        "cap",
        "mode",
        "verdict",
        "states",
        "leaves",
        "ms",
        "states/sec",
        "reduction",
    ]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.crash_budget.to_string(),
            r.max_states.to_string(),
            r.mode.to_string(),
            r.verdict.clone(),
            r.states.to_string(),
            r.leaves.to_string(),
            format!("{:.1}", r.millis),
            format!("{:.0}", r.states_per_sec),
            match (r.mode, r.reduction_is_lower_bound) {
                ("rebind", true) => format!("≥{:.1}×", r.reduction),
                ("rebind", false) => format!("{:.1}×", r.reduction),
                _ => "1.0×".into(),
            },
        ]);
    }
    let headline = rows
        .iter()
        .filter(|r| r.mode == "rebind")
        .map(|r| {
            (
                r.reduction,
                r.reduction_is_lower_bound,
                r.system.clone(),
                r.crash_budget,
            )
        })
        .fold((0.0f64, false, String::new(), 0usize), |acc, x| {
            if x.0 > acc.0 {
                x
            } else {
                acc
            }
        });
    let cap_note = if fast {
        "(the Truncated-without-rebind demonstrations on masked S_7/S_8 run \
         in the full sweep only)"
    } else {
        "the masked S_7/S_8 budget-0 rows exceed the default cap without \
         rebind and verify exactly with it — their reductions are lower \
         bounds"
    };
    let report = format!(
        "E13 — full-state symmetry via Program::rebind (input-masked Fig. 2 \
         team-RC: per-process mask registers permute with their owners; \
         slots-only must keep masked processes in singleton orbits, so it \
         equals off — asserted):\n{}\n\
         largest recorded reduction: {}{:.1}× on {}/budget-{}; Verified \
         rebind rows match off verdicts and weighted leaf counts exactly \
         (asserted), witnesses replay in original pids (tested), and \
         {cap_note}. Fig. 4 (SimultaneousRc) rows stay slots-only here: \
         every process scans every round register (line 44), so \
         owned-cell round-register orbits are *rejected* by the \
         owner-only soundness validation (tested in rc-core) — the \
         registers reduce under the certified *scalarset* fragment \
         instead (E17).\n",
        t.render(),
        if headline.1 { "≥" } else { "" },
        headline.0,
        headline.2,
        headline.3,
    );
    (report, rows)
}

/// One measured configuration of the E15 partial-order-reduction sweep.
#[derive(Clone, Debug)]
pub struct E15Row {
    /// System under check: `"masked S_n"` (the input-masked Fig. 2
    /// team-RC system, as in E13) or `"SimultaneousRc n=k"` (Fig. 4 over
    /// atomic consensus objects — the system no owned-cell orbit is
    /// sound for, so symmetry cannot reduce it and POR is the only
    /// reducer that applies).
    pub system: String,
    /// Crash budget (independent + post-decide for the masked systems,
    /// simultaneous + post-decide for Fig. 4).
    pub crash_budget: usize,
    /// The `max_states` cap the row ran under.
    pub max_states: usize,
    /// `"off"` (plain engine), `"por"` (persistent + sleep sets,
    /// `ExploreConfig::por`), `"rebind"` (full-state symmetry, as in
    /// E13) or `"por+rebind"` (both reducers composed).
    pub mode: &'static str,
    /// `Verified` / `Truncated` (a violation would panic the sweep).
    pub verdict: String,
    /// Distinct states visited — sleep-annotated under `por`, canonical
    /// representatives under `rebind`, both under `por+rebind`.
    pub states: usize,
    /// Weighted executions enumerated; Verified reduced rows must match
    /// the off rows exactly (asserted).
    pub leaves: usize,
    /// Wall-clock milliseconds of the best run (machine-dependent).
    pub millis: f64,
    /// `states / seconds` (machine-dependent).
    pub states_per_sec: f64,
    /// `states(off) / states(this row)`; a **lower bound** when the off
    /// side truncated at the cap (see `reduction_is_lower_bound`).
    pub reduction: f64,
    /// Whether `reduction` is a lower bound (off side hit the cap).
    pub reduction_is_lower_bound: bool,
}

fn e15_measure(
    system: &str,
    budget: usize,
    mode: &'static str,
    config: &ExploreConfig,
    run_once: &dyn Fn() -> rc_runtime::ExploreOutcome,
) -> E15Row {
    let (verdict, states, leaves, best) = measure_sweep_run("E15", run_once);
    E15Row {
        system: system.to_string(),
        crash_budget: budget,
        max_states: config.max_states,
        mode,
        verdict,
        states,
        leaves,
        millis: best.as_secs_f64() * 1e3,
        states_per_sec: states as f64 / best.as_secs_f64().max(1e-9),
        reduction: 1.0,
        reduction_is_lower_bound: false,
    }
}

/// Finishes one E15 instance: computes reductions against the off row
/// and asserts the invariants every reduced mode must satisfy — when
/// the off side verified, every reduced row verifies with the same
/// weighted leaf count. State counts are *not* monotone under POR: the
/// sleep mask is part of node identity (that is what keeps the engines
/// deterministic), so a state re-reached along paths with incomparable
/// sleep sets splits into several entries, and the sweep honestly
/// records the configurations where that cost outweighs the pruning
/// (reduction below 1.0×).
fn e15_finish(off: E15Row, mut reduced: Vec<E15Row>) -> Vec<E15Row> {
    for r in &mut reduced {
        if off.verdict == "Verified" {
            assert_eq!(
                r.verdict, "Verified",
                "{}/{} {}: must verify when off verifies",
                off.system, off.crash_budget, r.mode
            );
            assert_eq!(
                r.leaves, off.leaves,
                "{}/{} {}: weighted leaf counts must agree",
                off.system, off.crash_budget, r.mode
            );
        } else {
            r.reduction_is_lower_bound = true;
        }
        r.reduction = off.states as f64 / r.states as f64;
    }
    let mut rows = vec![off];
    rows.append(&mut reduced);
    rows
}

/// E15: footprint-driven **partial-order reduction** (persistent +
/// sleep sets over the per-local-state access maps of
/// [`rc_runtime::analyze_system_states`], enabled by
/// `ExploreConfig::por`) — alone, against full-state symmetry, and
/// composed with it. Four modes per masked instance
/// (off / por / rebind / por+rebind); Fig. 4 (`SimultaneousRc`) runs
/// off / por only here: E13 showed no *owned-cell* orbit is sound there
/// (every process scans every round register), so within this sweep POR
/// is the reducer that still applies — E17 adds the certified
/// *scalarset* reduction and composes it with POR.
///
/// Where the reduction lives: crash transitions are dependent with
/// everything (the `CrashModel` adversary must stay complete), so a
/// node whose crash budget is not exhausted expands fully and the
/// pruning happens in **crash-free regions** — all of a budget-0 run,
/// and the post-crash layers of budget-≥1 runs. Budget-0 rows therefore
/// show POR's interleaving reduction cleanly and compose
/// multiplicatively with rebind (asserted), and so do the CrashAll
/// budget-1 rows, whose single all-reset crash child per pre-crash
/// state keeps the post-crash entry points few. The *independent*
/// budget-1 rows are recorded as the honest negative: sleep masks are
/// part of node identity (what keeps the engines deterministic), so the
/// many single-process crash children re-reach post-crash states along
/// paths with incomparable sleep sets and the splitting outweighs the
/// pruning. Verified reduced rows are asserted to match the off rows'
/// verdicts and weighted leaf counts exactly in every mode.
pub fn e15_por_reduction(fast: bool) -> (String, Vec<E15Row>) {
    // Masked team-RC instances, `(n, crash model, budget)` per row
    // group. Budget-0 rows show POR's crash-free interleaving reduction
    // cleanly and compose multiplicatively with rebind. The independent
    // budget-1 rows are the honest negative datapoint: each of the many
    // single-process crash children seeds the post-crash layer along
    // paths with incomparable sleep sets, and the resulting node
    // splitting outweighs the pruning (reduction below 1.0×). The
    // CrashAll (simultaneous) budget-1 rows restore the payoff — one
    // all-reset child per pre-crash state keeps the entry points few —
    // and carry the ISSUE's masked S_7/S_8 budget-1 composition
    // demonstration: off and por alone exceed the default 5M-state cap,
    // rebind and por+rebind verify exactly, por+rebind strictly below
    // rebind (asserted).
    struct MaskedInstance {
        n: usize,
        crash: CrashModel,
        budget: usize,
        simultaneous: bool,
    }
    let masked = |n: usize, budget: usize, simultaneous: bool| MaskedInstance {
        n,
        crash: if simultaneous {
            CrashModel::simultaneous(budget).after_decide(true)
        } else {
            CrashModel::independent(budget).after_decide(true)
        },
        budget,
        simultaneous,
    };
    let masked_sweep: Vec<MaskedInstance> = if fast {
        vec![masked(4, 0, false), masked(4, 1, false), masked(4, 1, true)]
    } else {
        vec![
            masked(5, 0, false),
            masked(5, 1, false),
            masked(5, 1, true),
            masked(7, 1, true),
            masked(8, 1, true),
        ]
    };
    let mut rows: Vec<E15Row> = Vec::new();
    for inst in &masked_sweep {
        let n = inst.n;
        let budget = inst.budget;
        let (ty, w) = sn_witness(n);
        let inputs = team_inputs(&w.assignment);
        let system = if inst.simultaneous {
            format!("masked S_{n} (CrashAll)")
        } else {
            format!("masked S_{n}")
        };
        let base = ExploreConfig {
            crash: inst.crash,
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        };
        let por_cfg = ExploreConfig {
            por: true,
            analysis_id: Some(format!("bench/e15/masked-S_{n}")),
            ..base.clone()
        };
        let off = e15_measure(&system, budget, "off", &base, &|| {
            explore(
                &|| build_masked_team_rc_system(ty.clone(), &w, &inputs),
                &base,
            )
        });
        let por = e15_measure(&system, budget, "por", &por_cfg, &|| {
            explore(
                &|| build_masked_team_rc_system(ty.clone(), &w, &inputs),
                &por_cfg,
            )
        });
        let rebind = e15_measure(&system, budget, "rebind", &base, &|| {
            rc_runtime::explore_symmetric(
                &|| build_masked_team_rc_system_sym(ty.clone(), &w, &inputs),
                &base,
            )
        });
        let both = e15_measure(&system, budget, "por+rebind", &por_cfg, &|| {
            rc_runtime::explore_symmetric(
                &|| build_masked_team_rc_system_sym(ty.clone(), &w, &inputs),
                &por_cfg,
            )
        });
        if budget == 0 {
            // Purely crash-free: POR must prune interleavings, and the
            // composition must beat symmetry alone.
            assert!(
                por.states < off.states,
                "{system}/0: POR must reduce the crash-free search"
            );
            assert!(
                both.states < rebind.states,
                "{system}/0: por+rebind must beat rebind alone"
            );
        }
        if inst.simultaneous {
            // The multiplicative composition demonstration: the CrashAll
            // post-crash layer prunes like a crash-free search, so POR
            // stacks on top of the rebind orbit collapse.
            assert_eq!(
                rebind.verdict, "Verified",
                "{system}/{budget} must verify under rebind"
            );
            assert_eq!(
                both.verdict, "Verified",
                "{system}/{budget} must verify under por+rebind"
            );
            assert!(
                both.states < rebind.states,
                "{system}/{budget}: por+rebind must beat rebind alone"
            );
            if off.verdict == "Verified" {
                assert!(
                    por.states < off.states,
                    "{system}/{budget}: POR must reduce the CrashAll search"
                );
            }
        }
        rows.extend(e15_finish(off, vec![por, rebind, both]));
    }
    // Fig. 4: owned-cell symmetry cannot touch it (the scalarset
    // fragment can — E17). POR's headroom comes from laggards — a
    // process still proposing to an already-settled round's consensus
    // object commutes with every process ahead of it (their crash-free
    // futures never revisit settled rounds).
    {
        let n = 3;
        let factory = ConsensusObjectFactory { domain: 4 };
        let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
        let horizon = 4;
        let system = format!("SimultaneousRc n={n}");
        let budgets: &[usize] = if fast { &[1] } else { &[0, 1] };
        for &budget in budgets {
            let base = ExploreConfig {
                crash: CrashModel::simultaneous(budget).after_decide(true),
                inputs: Some(inputs.clone()),
                ..ExploreConfig::default()
            };
            let por_cfg = ExploreConfig {
                por: true,
                analysis_id: Some(format!("bench/e15/simultaneous-rc-n{n}-h{horizon}")),
                ..base.clone()
            };
            let off = e15_measure(&system, budget, "off", &base, &|| {
                explore(
                    &|| build_simultaneous_rc_system(&factory, &inputs, horizon),
                    &base,
                )
            });
            let por = e15_measure(&system, budget, "por", &por_cfg, &|| {
                explore(
                    &|| build_simultaneous_rc_system(&factory, &inputs, horizon),
                    &por_cfg,
                )
            });
            assert!(
                por.states < off.states,
                "{system}/{budget}: POR must reduce the system symmetry cannot touch"
            );
            rows.extend(e15_finish(off, vec![por]));
        }
    }
    let mut t = Table::new(&[
        "system",
        "crash budget",
        "cap",
        "mode",
        "verdict",
        "states",
        "leaves",
        "ms",
        "states/sec",
        "reduction",
    ]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.crash_budget.to_string(),
            r.max_states.to_string(),
            r.mode.to_string(),
            r.verdict.clone(),
            r.states.to_string(),
            r.leaves.to_string(),
            format!("{:.1}", r.millis),
            format!("{:.0}", r.states_per_sec),
            match (r.mode, r.reduction_is_lower_bound) {
                ("off", _) => "1.0×".into(),
                (_, true) => format!("≥{:.1}×", r.reduction),
                (_, false) => format!("{:.1}×", r.reduction),
            },
        ]);
    }
    let headline = rows
        .iter()
        .filter(|r| r.mode == "por" && r.verdict == "Verified")
        .map(|r| (r.reduction, r.system.clone(), r.crash_budget))
        .fold((0.0f64, String::new(), 0usize), |acc, x| {
            if x.0 > acc.0 {
                x
            } else {
                acc
            }
        });
    let cap_note = if fast {
        "(the masked S_7/S_8 CrashAll budget-1 composition rows run in \
         the full sweep only)"
    } else {
        "the masked S_7/S_8 CrashAll budget-1 rows exceed the default \
         cap both plain and under POR alone and verify exactly under \
         rebind and por+rebind, por+rebind strictly below rebind — the \
         composition verifies instances neither reducer alone can \
         finish, and its reductions are lower bounds"
    };
    let report = format!(
        "E15 — footprint-driven partial-order reduction (persistent + \
         sleep sets over the per-local-state access maps; crash \
         transitions and decisions stay dependent with everything, so \
         the CrashModel adversary is complete and the pruning lives in \
         crash-free regions):\n{}\n\
         largest recorded POR-alone reduction: {:.1}× on {}/budget-{}; \
         Verified reduced rows match off verdicts and weighted leaf \
         counts exactly (asserted). SimultaneousRc — which no sound \
         *owned-cell* declaration can touch (E13; the certified \
         scalarset fragment reduces it in E17) — reduces under POR, and \
         on budget-0 and CrashAll instances por+rebind beats rebind \
         alone (asserted): the reducers compose. The independent \
         budget-1 rows are the honest cost datapoint — many \
         single-process crash children re-reach post-crash states with \
         incomparable sleep sets, and the node splitting outweighs the \
         pruning (below 1.0×). Also {cap_note}.\n",
        t.render(),
        headline.0,
        headline.1,
        headline.2,
    );
    (report, rows)
}

/// One row of the E16 storage-tier scaling sweep.
#[derive(Clone, Debug)]
pub struct E16Row {
    /// System under check: `"S_n"` (Fig. 2 team-RC, as in E11/E12) or
    /// `"masked S_n"` (the input-masked variant, as in E13/E15).
    pub system: String,
    /// Independent crash budget (post-decide crashes enabled).
    pub crash_budget: usize,
    /// Visited-set backend: `flat`, `packed`, `packed+filter` or
    /// `packed+spill` ([`rc_runtime::StorageTier`]). The `flat`
    /// baseline row runs at the catalog's historical cap and re-records
    /// its `Truncated` verdict.
    pub tier: String,
    /// `"unreduced"` (the plain engines, the tier-parity grid) or
    /// `"por+rebind"` (both reducers composed on the masked instance —
    /// the storage tiers must stay exact under the reduced search too).
    pub mode: &'static str,
    /// `ExploreConfig::threads` (1 = serial DFS, >1 = frontier BFS).
    pub threads: usize,
    /// The `max_states` cap the row ran under.
    pub max_states: usize,
    /// The `max_bytes` cap (0 = uncapped). Byte-capped rows route
    /// through the frontier engine's deterministic byte budget.
    pub max_bytes: usize,
    /// `Verified` / `Truncated` (a violation would panic the sweep).
    pub verdict: String,
    /// Distinct states visited — asserted identical across every tier
    /// and thread count of an instance's lifted-cap rows.
    pub states: usize,
    /// Weighted executions enumerated — asserted identical across the
    /// lifted-cap rows *and* against the catalog's reduced-engine
    /// record of the same instance, where one exists.
    pub leaves: usize,
    /// Wall-clock milliseconds of the (single) run — cap-scale searches
    /// are too long for a best-of loop (machine-dependent).
    pub millis: f64,
    /// `states / seconds` (machine-dependent).
    pub states_per_sec: f64,
    /// Peak resident visited-set MiB ([`rc_runtime::ExploreStats::peak_table_bytes`]).
    pub peak_table_mb: f64,
    /// MiB frozen into on-disk spill runs (0 without the spill tier).
    pub spilled_mb: f64,
    /// Bloom prefilter bits set (0 without the filter tier).
    pub filter_bits: usize,
    /// MiB held by the compacted witness log.
    pub witness_mb: f64,
}

fn e16_measure(
    system: &str,
    budget: usize,
    config: &ExploreConfig,
    run_once: &dyn Fn() -> (rc_runtime::ExploreOutcome, rc_runtime::ExploreStats),
) -> E16Row {
    use rc_runtime::ExploreOutcome;
    let start = std::time::Instant::now();
    let (outcome, stats) = run_once();
    let elapsed = start.elapsed();
    let (verdict, states, leaves) = match outcome {
        ExploreOutcome::Verified { states, leaves } => ("Verified".to_string(), states, leaves),
        ExploreOutcome::Truncated { states } => ("Truncated".to_string(), states, 0),
        ExploreOutcome::Violation { schedule, .. } => panic!(
            "E16 systems are correct; violation after {} actions",
            schedule.len()
        ),
    };
    const MB: f64 = (1 << 20) as f64;
    E16Row {
        system: system.to_string(),
        crash_budget: budget,
        tier: config.storage.to_string(),
        mode: "unreduced",
        threads: config.threads,
        max_states: config.max_states,
        max_bytes: config.max_bytes.unwrap_or(0),
        verdict,
        states,
        leaves,
        millis: elapsed.as_secs_f64() * 1e3,
        states_per_sec: states as f64 / elapsed.as_secs_f64().max(1e-9),
        peak_table_mb: stats.peak_table_bytes as f64 / MB,
        spilled_mb: stats.spilled_bytes as f64 / MB,
        filter_bits: stats.filter_occupancy,
        witness_mb: stats.witness_bytes as f64 / MB,
    }
}

/// E16: tiered, bit-packed state storage — the catalog instances the
/// default cap recorded as `Truncated` (E12's `S_8`/budget-0 off row,
/// E13's masked `S_7`/budget-0 off row), re-run **unreduced** with the
/// cap lifted under every storage tier
/// ([`ExploreConfig::storage`](rc_runtime::ExploreConfig)) at threads
/// 1/2/8. Each instance records:
///
/// * a `flat` **baseline** row at the historical 5M cap, re-recording
///   the catalog's `Truncated` verdict (asserted);
/// * a **lifted-cap grid** — 4 tiers × threads {1, 2, 8} — every row
///   asserted `Verified` with byte-identical state and weighted-leaf
///   counts, and the leaf count asserted equal to what the catalog's
///   *reduced* engines (rebind / symmetry-on) computed for the same
///   instance: the full unreduced search independently confirms the
///   reduction machinery's answer;
/// * one **byte-capped** row (`ExploreConfig::max_bytes` generous
///   enough to verify) exercising the frontier engine's deterministic
///   byte budget at scale, asserted identical to the grid.
///
/// Exactness is the point: the filter tier can only *skip* probes that
/// would have found nothing and the spill tier compares full key bytes
/// on disk, so — unlike bitstate/supertrace hashing — every tier
/// returns the same exact verdict (see DESIGN §3).
pub fn e16_storage_scaling(fast: bool) -> (String, Vec<E16Row>) {
    struct Instance {
        n: usize,
        masked: bool,
        budget: usize,
        /// The cap the catalog row truncated at (shrunk in fast mode so
        /// the sweep still demonstrates Truncated → Verified cheaply).
        baseline_cap: usize,
        lifted_cap: usize,
        /// The instance's weighted leaf count as previously computed by
        /// a *reduced* catalog run (E12 symmetry-on / E13 rebind).
        expected_leaves: Option<usize>,
    }
    let sweep: Vec<Instance> = if fast {
        vec![
            Instance {
                n: 4,
                masked: true,
                budget: 0,
                baseline_cap: 1_000,
                lifted_cap: 5_000_000,
                expected_leaves: None,
            },
            Instance {
                n: 4,
                masked: false,
                budget: 2,
                baseline_cap: 1_000,
                lifted_cap: 5_000_000,
                expected_leaves: Some(12),
            },
        ]
    } else {
        vec![
            Instance {
                n: 7,
                masked: true,
                budget: 0,
                baseline_cap: 5_000_000,
                lifted_cap: 20_000_000,
                expected_leaves: Some(20),
            },
            Instance {
                n: 8,
                masked: false,
                budget: 0,
                baseline_cap: 5_000_000,
                lifted_cap: 20_000_000,
                expected_leaves: Some(23),
            },
        ]
    };
    // Small enough that every lifted-cap spill row freezes runs even
    // split across 8 shards; run probes stay cheap behind the per-run
    // Blooms.
    let spill_threshold: usize = if fast { 4 << 10 } else { 8 << 20 };
    let byte_cap: usize = if fast { 256 << 20 } else { 8 << 30 };
    let mut rows: Vec<E16Row> = Vec::new();
    for inst in &sweep {
        let (ty, w) = sn_witness(inst.n);
        let inputs = team_inputs(&w.assignment);
        let system = if inst.masked {
            format!("masked S_{}", inst.n)
        } else {
            format!("S_{}", inst.n)
        };
        let factory = || {
            if inst.masked {
                build_masked_team_rc_system(ty.clone(), &w, &inputs)
            } else {
                build_team_rc_system(ty.clone(), &w, &inputs)
            }
        };
        let base = ExploreConfig {
            crash: CrashModel::independent(inst.budget).after_decide(true),
            inputs: Some(inputs.clone()),
            ..ExploreConfig::default()
        };
        let baseline_cfg = ExploreConfig {
            max_states: inst.baseline_cap,
            // The historical baseline ran on the flat table; it is the
            // opt-out now that `ExploreConfig::storage` defaults to
            // packed, so the row pins it explicitly.
            storage: StorageTier::Flat,
            ..base.clone()
        };
        let baseline = e16_measure(&system, inst.budget, &baseline_cfg, &|| {
            explore_with_stats(&factory, &baseline_cfg)
        });
        assert_eq!(
            baseline.verdict, "Truncated",
            "{system}/{}: the baseline cap must truncate",
            inst.budget
        );
        assert_eq!(
            baseline.states, inst.baseline_cap,
            "{system}/{}: Truncated reports exactly the cap",
            inst.budget
        );
        rows.push(baseline);
        let mut reference: Option<(usize, usize)> = None;
        for tier in StorageTier::ALL {
            for threads in [1usize, 2, 8] {
                let cfg = ExploreConfig {
                    max_states: inst.lifted_cap,
                    storage: tier,
                    threads,
                    spill_threshold: (tier == StorageTier::PackedSpill).then_some(spill_threshold),
                    ..base.clone()
                };
                let row = e16_measure(&system, inst.budget, &cfg, &|| {
                    explore_with_stats(&factory, &cfg)
                });
                assert_eq!(
                    row.verdict, "Verified",
                    "{system}/{}: the lifted cap must verify exactly under {tier}/t{threads}",
                    inst.budget
                );
                assert!(
                    row.states > inst.baseline_cap,
                    "{system}/{}: the instance must really exceed the baseline cap",
                    inst.budget
                );
                if let Some(expected) = inst.expected_leaves {
                    assert_eq!(
                        row.leaves, expected,
                        "{system}/{}: the unreduced search must reproduce the catalog's \
                         reduced-engine weighted leaf count",
                        inst.budget
                    );
                }
                match reference {
                    None => reference = Some((row.states, row.leaves)),
                    Some(r) => assert_eq!(
                        (row.states, row.leaves),
                        r,
                        "{system}/{}: byte-identical outcomes across tiers and threads \
                         ({tier}/t{threads})",
                        inst.budget
                    ),
                }
                if tier == StorageTier::PackedSpill {
                    assert!(
                        row.spilled_mb > 0.0,
                        "{system}/{}: the spill row at t{threads} must freeze runs",
                        inst.budget
                    );
                }
                if tier == StorageTier::PackedFilter {
                    assert!(
                        row.filter_bits > 0,
                        "{system}/{}: the filter row at t{threads} must populate the Bloom",
                        inst.budget
                    );
                }
                rows.push(row);
            }
        }
        let byte_cfg = ExploreConfig {
            max_states: inst.lifted_cap,
            storage: StorageTier::PackedSpill,
            threads: 1,
            spill_threshold: Some(spill_threshold),
            max_bytes: Some(byte_cap),
            ..base.clone()
        };
        let byte_row = e16_measure(&system, inst.budget, &byte_cfg, &|| {
            explore_with_stats(&factory, &byte_cfg)
        });
        assert_eq!(
            (byte_row.verdict.as_str(), byte_row.states, byte_row.leaves),
            (
                "Verified",
                reference.expect("grid ran").0,
                reference.expect("grid ran").1
            ),
            "{system}/{}: the byte-budgeted run must match the grid exactly",
            inst.budget
        );
        rows.push(byte_row);
        if inst.masked {
            // The composed reducers (por+rebind, as in E15) on top of
            // the packed and spill tiers: the storage layer must stay
            // exact under the reduced search too — byte-identical
            // canonical state counts across tiers and threads, and the
            // same weighted leaf count as the unreduced grid.
            let mut reduced_ref: Option<(usize, usize)> = None;
            for tier in [StorageTier::Packed, StorageTier::PackedSpill] {
                for threads in [1usize, 8] {
                    let cfg = ExploreConfig {
                        max_states: inst.lifted_cap,
                        storage: tier,
                        threads,
                        spill_threshold: (tier == StorageTier::PackedSpill)
                            .then_some(spill_threshold),
                        por: true,
                        analysis_id: Some(format!("bench/e16/masked-S_{}", inst.n)),
                        ..base.clone()
                    };
                    let mut row = e16_measure(&system, inst.budget, &cfg, &|| {
                        rc_runtime::explore_symmetric_with_stats(
                            &|| build_masked_team_rc_system_sym(ty.clone(), &w, &inputs),
                            &cfg,
                        )
                    });
                    row.mode = "por+rebind";
                    assert_eq!(
                        row.verdict, "Verified",
                        "{system}/{}: the reduced run must verify under {tier}/t{threads}",
                        inst.budget
                    );
                    assert_eq!(
                        row.leaves,
                        reference.expect("grid ran").1,
                        "{system}/{}: reduced weighted leaves must match the unreduced grid",
                        inst.budget
                    );
                    assert!(
                        row.states < reference.expect("grid ran").0,
                        "{system}/{}: por+rebind must visit fewer states than unreduced",
                        inst.budget
                    );
                    match reduced_ref {
                        None => reduced_ref = Some((row.states, row.leaves)),
                        Some(r) => assert_eq!(
                            (row.states, row.leaves),
                            r,
                            "{system}/{}: reduced outcomes byte-identical across \
                             tiers and threads ({tier}/t{threads})",
                            inst.budget
                        ),
                    }
                    rows.push(row);
                }
            }
        }
    }
    let mut t = Table::new(&[
        "system", "budget", "tier", "mode", "threads", "cap", "byte cap", "verdict", "states",
        "leaves", "ms", "peak MB", "spill MB", "filter", "wit MB",
    ]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.crash_budget.to_string(),
            r.tier.clone(),
            r.mode.to_string(),
            r.threads.to_string(),
            r.max_states.to_string(),
            if r.max_bytes == 0 {
                "—".into()
            } else {
                format!("{}M", r.max_bytes >> 20)
            },
            r.verdict.clone(),
            r.states.to_string(),
            r.leaves.to_string(),
            format!("{:.0}", r.millis),
            format!("{:.1}", r.peak_table_mb),
            format!("{:.1}", r.spilled_mb),
            r.filter_bits.to_string(),
            format!("{:.1}", r.witness_mb),
        ]);
    }
    let largest = rows
        .iter()
        .filter(|r| r.verdict == "Verified")
        .max_by_key(|r| r.states)
        .expect("grid rows exist");
    let flat_peak = rows
        .iter()
        .filter(|r| r.tier == "flat" && r.verdict == "Verified" && r.threads == 1)
        .map(|r| r.peak_table_mb)
        .fold(0.0f64, f64::max);
    let packed_peak = rows
        .iter()
        .filter(|r| r.tier == "packed" && r.verdict == "Verified" && r.threads == 1)
        .map(|r| r.peak_table_mb)
        .fold(0.0f64, f64::max);
    let cap_note = if fast {
        "(fast mode shrinks both caps; the full sweep lifts the real 5M \
         catalog cap on masked S_7 and S_8)"
    } else {
        "the baseline rows re-record the catalog's 5M-cap Truncated \
         verdicts (E12 §S_8, E13 §masked S_7) that these grids move to \
         exact Verified"
    };
    let report = format!(
        "E16 — tiered, bit-packed state storage (packed arena keys, \
         Bloom prefilter, file-backed spill runs, byte budget): \
         previously-Truncated catalog instances re-run unreduced with \
         the cap lifted, across every storage tier at threads 1/2/8:\n{}\n\
         largest exact search: {} states ({}/budget-{}); outcomes \
         byte-identical across all tiers and thread counts, weighted \
         leaf counts equal to the catalog's reduced-engine records, and \
         the byte-budgeted run matches the grid (all asserted). Peak \
         resident visited-set on the largest serial run: {:.0} MB flat \
         vs {:.0} MB packed. Spill rows freeze resident arenas to disk \
         behind per-run Blooms and stay exact — full key bytes are \
         compared on disk, never hash fingerprints alone. The masked \
         instance additionally re-runs with both reducers composed \
         (por+rebind, as in E15) on the packed and spill tiers: the \
         reduced search's canonical state counts are byte-identical \
         across tiers and threads and its weighted leaves match the \
         unreduced grid (asserted) — the packed default \
         (`ExploreConfig::storage`) rests on this parity. Also \
         {cap_note}.\n",
        t.render(),
        largest.states,
        largest.system,
        largest.crash_budget,
        flat_peak,
        packed_peak,
    );
    (report, rows)
}

/// One measured configuration of the E17 scalarset-symmetry sweep.
#[derive(Clone, Debug)]
pub struct E17Row {
    /// System under check: `"SimultaneousRc n=k [inputs]"` — Fig. 4
    /// over atomic consensus objects, the system E13/E15 recorded as
    /// untouchable by owned-cell symmetry (reduction pinned at 1.0×).
    pub system: String,
    /// Simultaneous crash budget (post-decide crashes enabled).
    pub crash_budget: usize,
    /// The `max_states` cap the row ran under.
    pub max_states: usize,
    /// `"off"` (plain engines), `"scalarset"` (the certified scalarset
    /// family permutes with the process orbits) or `"scalarset+por"`
    /// (composed with partial-order reduction).
    pub mode: &'static str,
    /// `ExploreConfig::threads` (1 = serial DFS, >1 = frontier BFS).
    pub threads: usize,
    /// `Verified` / `Truncated` (a violation would panic the sweep).
    pub verdict: String,
    /// Distinct states visited (canonical representatives under the
    /// scalarset modes) — asserted byte-identical across thread counts
    /// within each mode.
    pub states: usize,
    /// Weighted executions enumerated; Verified reduced rows must match
    /// the off rows exactly (asserted).
    pub leaves: usize,
    /// Wall-clock milliseconds of the best run (machine-dependent).
    pub millis: f64,
    /// `states / seconds` (machine-dependent).
    pub states_per_sec: f64,
    /// `states(off) / states(this row)` at the same thread count.
    pub reduction: f64,
}

fn e17_measure(
    system: &str,
    budget: usize,
    mode: &'static str,
    threads: usize,
    config: &ExploreConfig,
    run_once: &dyn Fn() -> rc_runtime::ExploreOutcome,
) -> E17Row {
    let (verdict, states, leaves, best) = measure_sweep_run("E17", run_once);
    E17Row {
        system: system.to_string(),
        crash_budget: budget,
        max_states: config.max_states,
        mode,
        threads,
        verdict,
        states,
        leaves,
        millis: best.as_secs_f64() * 1e3,
        states_per_sec: states as f64 / best.as_secs_f64().max(1e-9),
        reduction: 1.0,
    }
}

/// E17: **scalarset symmetry for Fig. 4** — the reduction E13 and E15
/// recorded as impossible under owned-cell orbits. The line-44
/// termination scan cross-reads every round register, so the registers
/// can never be owner-only; but remodeled as an order-insensitive fold
/// (a checked-position mask with the visit order as internal
/// nondeterminism) they form a certifiable **scalarset family**
/// ([`rc_runtime::SymmetrySpec::with_scalarset`]): at search start the
/// scalarset certifier ([`rc_runtime::lint_scalarset`]) proves every
/// family transposition leaves the memoized local-state graphs
/// equivariant — bystander graph matching, member exchange, rebind
/// fidelity, spot re-executions — and only then do the engines permute
/// the family with the process slots (mid-scan *pinned* states forgo
/// reduction; decided states are never pinned, so leaf weights stay
/// exact).
///
/// Three modes per instance — off / scalarset / scalarset+por — each at
/// threads 1/2/8. Asserted: byte-identical state and weighted-leaf
/// counts across thread counts within every mode; Verified reduced rows
/// match the off rows' weighted leaf counts exactly; the scalarset mode
/// strictly reduces (Fig. 4 leaves 1.0× behind); and scalarset+por
/// strictly beats scalarset alone wherever POR alone reduced (E15's
/// 2.1× composes).
pub fn e17_scalarset_symmetry(fast: bool) -> (String, Vec<E17Row>) {
    struct Instance {
        inputs: Vec<Value>,
        label: &'static str,
        budget: usize,
        horizon: usize,
    }
    let inst = |inputs: Vec<i64>, label, budget, horizon| Instance {
        inputs: inputs.into_iter().map(Value::Int).collect(),
        label,
        budget,
        horizon,
    };
    // Equal inputs put every process in one orbit (the full symmetric
    // group acts); the mixed instance keeps a singleton orbit alongside
    // — the family still permutes under the acting orbit only.
    let sweep: Vec<Instance> = if fast {
        vec![inst(vec![0, 0, 1], "inputs 0,0,1", 1, 4)]
    } else {
        vec![
            inst(vec![0, 0, 0], "inputs 0,0,0", 1, 4),
            inst(vec![0, 0, 1], "inputs 0,0,1", 1, 4),
            inst(vec![0, 0, 0], "inputs 0,0,0", 0, 4),
        ]
    };
    let factory = ConsensusObjectFactory { domain: 4 };
    let mut rows: Vec<E17Row> = Vec::new();
    for inst in &sweep {
        let n = inst.inputs.len();
        let system = format!("SimultaneousRc n={n} ({})", inst.label);
        let analysis_id = format!(
            "bench/e17/simultaneous-rc-n{n}-{}-h{}",
            inst.label, inst.horizon
        );
        let base = ExploreConfig {
            crash: CrashModel::simultaneous(inst.budget).after_decide(true),
            inputs: Some(inst.inputs.clone()),
            analysis_id: Some(analysis_id.clone()),
            ..ExploreConfig::default()
        };
        let por_cfg = ExploreConfig {
            por: true,
            ..base.clone()
        };
        let mut per_mode: Vec<(usize, usize)> = Vec::new(); // (states, leaves) per mode
        for (mode, cfg, symmetric) in [
            ("off", &base, false),
            ("scalarset", &base, true),
            ("scalarset+por", &por_cfg, true),
        ] {
            let mut mode_ref: Option<(usize, usize)> = None;
            for threads in [1usize, 2, 8] {
                let cfg = ExploreConfig {
                    threads,
                    ..cfg.clone()
                };
                let row = e17_measure(&system, inst.budget, mode, threads, &cfg, &|| {
                    if symmetric {
                        rc_runtime::explore_symmetric(
                            &|| {
                                build_simultaneous_rc_system_sym(
                                    &factory,
                                    &inst.inputs,
                                    inst.horizon,
                                )
                            },
                            &cfg,
                        )
                    } else {
                        explore(
                            &|| build_simultaneous_rc_system(&factory, &inst.inputs, inst.horizon),
                            &cfg,
                        )
                    }
                });
                assert_eq!(
                    row.verdict, "Verified",
                    "{system}/{}: every E17 row must verify ({mode}/t{threads})",
                    inst.budget
                );
                match mode_ref {
                    None => mode_ref = Some((row.states, row.leaves)),
                    Some(r) => assert_eq!(
                        (row.states, row.leaves),
                        r,
                        "{system}/{}: byte-identical serial/parallel outcomes \
                         ({mode}/t{threads})",
                        inst.budget
                    ),
                }
                rows.push(row);
            }
            per_mode.push(mode_ref.expect("three thread counts ran"));
        }
        let (off, scal, both) = (per_mode[0], per_mode[1], per_mode[2]);
        assert_eq!(
            scal.1, off.1,
            "{system}/{}: scalarset weighted leaves must match off",
            inst.budget
        );
        assert_eq!(
            both.1, off.1,
            "{system}/{}: scalarset+por weighted leaves must match off",
            inst.budget
        );
        assert!(
            scal.0 < off.0,
            "{system}/{}: the certified scalarset must reduce the search \
             ({} vs {} states)",
            inst.budget,
            scal.0,
            off.0
        );
        assert!(
            both.0 < scal.0,
            "{system}/{}: scalarset+por must beat scalarset alone \
             ({} vs {} states)",
            inst.budget,
            both.0,
            scal.0
        );
        let off_states = off.0;
        for row in rows.iter_mut().rev() {
            if row.system != system || row.crash_budget != inst.budget {
                break;
            }
            row.reduction = off_states as f64 / row.states as f64;
        }
    }
    let mut t = Table::new(&[
        "system",
        "crash budget",
        "cap",
        "mode",
        "threads",
        "verdict",
        "states",
        "leaves",
        "ms",
        "states/sec",
        "reduction",
    ]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.crash_budget.to_string(),
            r.max_states.to_string(),
            r.mode.to_string(),
            r.threads.to_string(),
            r.verdict.clone(),
            r.states.to_string(),
            r.leaves.to_string(),
            format!("{:.1}", r.millis),
            format!("{:.0}", r.states_per_sec),
            if r.mode == "off" {
                "1.0×".into()
            } else {
                format!("{:.1}×", r.reduction)
            },
        ]);
    }
    let headline = rows
        .iter()
        .filter(|r| r.mode == "scalarset+por" && r.threads == 1)
        .map(|r| (r.reduction, r.system.clone(), r.crash_budget))
        .fold((0.0f64, String::new(), 0usize), |acc, x| {
            if x.0 > acc.0 {
                x
            } else {
                acc
            }
        });
    let report = format!(
        "E17 — scalarset symmetry for Fig. 4 (SimultaneousRc): the line-44 \
         termination scan, remodeled as an order-insensitive fold over a \
         checked-position mask, makes the round registers a certifiable \
         scalarset family; the equivariance certificate (lint_scalarset: \
         transposition graph matching, member exchange, rebind fidelity, \
         spot re-executions) is checked at search start, and only then \
         does canonicalization permute the family with the process \
         slots — mid-scan pinned states forgo reduction, decided states \
         are never pinned, so weights stay exact:\n{}\n\
         largest composed reduction: {:.1}× on {}/budget-{}; all rows \
         Verified, byte-identical across threads 1/2/8 within every \
         mode, reduced weighted leaf counts equal to off, scalarset \
         strictly below off, and scalarset+por strictly below scalarset \
         (all asserted) — the reducers compound on the system E13/E15 \
         recorded at 1.0× under owned-cell symmetry.\n",
        t.render(),
        headline.0,
        headline.1,
        headline.2,
    );
    (report, rows)
}

/// One catalog system of the E18 swarm-verification sweep.
#[derive(Clone, Debug)]
pub struct E18Row {
    /// Swarm catalog id (`swarm run --system <id>`).
    pub system: String,
    /// The system's default crash adversary, in the `swarm --crash`
    /// spec grammar (`none`, `independent:<b>[:after-decide]`, …).
    pub crash: String,
    /// Per-decision crash probability of the seeded scheduler.
    pub crash_prob: f64,
    /// Seeds swept (the range starts at seed 0).
    pub seeds: u64,
    /// Worker threads the sweep used (the deterministic columns are
    /// independent of this; asserted inside the experiment).
    pub threads: usize,
    /// Distinct final memory+program states over all runs — an exact
    /// set cardinality via the packed visited-set tables, not a sketch.
    pub distinct_finals: usize,
    /// Violating seeds found (0 on every correct system; asserted).
    pub violations: usize,
    /// Smallest violating seed, when any — `swarm replay --seed N`
    /// reproduces it byte-identically.
    pub first_violating_seed: Option<u64>,
    /// Action count of that seed's replayed schedule.
    pub original_len: Option<usize>,
    /// Action count of its 1-minimal shrunken witness (delta-debugged,
    /// re-verified through the witness-log replay path).
    pub min_witness: Option<usize>,
    /// Wall-clock milliseconds (machine-dependent).
    pub millis: f64,
    /// Executions per second (machine-dependent).
    pub runs_per_sec: f64,
}

/// E18: the swarm-verification sweep — every system of the swarm
/// catalog under its default adversary, seeded schedules fanned across
/// all cores (DESIGN.md §3, *Swarm verification & schedule shrinking*).
///
/// Where E11–E17 verify exhaustively up to a frontier, E18 samples
/// *past* it: millions of independent seeded executions whose verdicts
/// extend the exhaustive result probabilistically. The experiment
/// asserts the service's contract end to end:
///
/// - every correct catalog system sweeps clean under its default
///   adversary, and the seeded `broken-team-rc` bug is found;
/// - the first violating seed replays deterministically to the same
///   violation ([`replay_seed`](rc_runtime::replay_seed));
/// - its schedule shrinks to a 1-minimal, crash-legal subsequence that
///   still violates and re-verifies through the witness log;
/// - the deterministic aggregates (violating seeds, distinct final
///   states, step/crash totals) are byte-identical across thread
///   counts (checked at 1 vs. all cores on the first catalog entry).
///
/// `fast` sweeps 200 seeds per system (the tier-1 suite); the full run
/// sweeps 20 000 (the snapshot row set). The ≥10⁶-seed headline run is
/// recorded in `EXPERIMENTS.md` §E18 from `swarm run` directly — at
/// that scale the row would dominate the `tables` wall clock.
///
/// # Panics
///
/// Panics if any of the asserted contract clauses above fails.
pub fn e18_swarm(fast: bool) -> (String, Vec<E18Row>) {
    use crate::swarm_catalog::swarm_catalog;
    use crate::swarm_cli::crash_spec;
    use rc_runtime::swarm::swarm;
    use rc_runtime::{is_subsequence, replay_seed, shrink_schedule};

    let seeds: u64 = if fast { 200 } else { 20_000 };
    let systems = swarm_catalog();
    let mut rows: Vec<E18Row> = Vec::new();
    for (i, sys) in systems.iter().enumerate() {
        let config = sys.config(0, seeds, 0);
        let report = swarm(sys.factory(), &config);
        assert_eq!(report.runs, seeds, "{}: every seed ran", sys.id);
        assert_eq!(
            report.violations.is_empty(),
            !sys.expect_violation,
            "{}: verdict under the default adversary",
            sys.id
        );
        if i == 0 {
            // Thread-count invariance, spot-checked on the first entry
            // at a reduced seed count: the deterministic summary of a
            // 1-thread sweep must be byte-identical to a parallel one.
            let small = 100.min(seeds);
            let serial = sys.config(0, small, 1);
            let wide = sys.config(0, small, 0);
            assert_eq!(
                swarm(sys.factory(), &serial).deterministic_summary(),
                swarm(sys.factory(), &wide).deterministic_summary(),
                "{}: aggregates depend on thread count",
                sys.id
            );
        }
        let (mut first_seed, mut original_len, mut min_witness) = (None, None, None);
        if let Some(v) = report.violations.first() {
            let rerun = replay_seed(sys.factory(), &config, v.seed);
            assert_eq!(
                rerun.verdict.as_ref().err(),
                Some(&v.violation),
                "{}: seed {} must replay to the reported violation",
                sys.id,
                v.seed
            );
            let schedule = rerun.execution.trace.to_actions();
            let shrunk = shrink_schedule(sys.factory(), &config, &schedule)
                .expect("a replayed safety violation must shrink");
            assert!(
                is_subsequence(&shrunk.schedule, &schedule),
                "{}: witness is a subsequence",
                sys.id
            );
            assert!(shrunk.witness_verified, "{}: witness-log replay", sys.id);
            first_seed = Some(v.seed);
            original_len = Some(schedule.len());
            min_witness = Some(shrunk.schedule.len());
        }
        rows.push(E18Row {
            system: sys.id.to_string(),
            crash: crash_spec(&sys.crash),
            crash_prob: sys.crash_prob,
            seeds,
            threads: report.threads_used,
            distinct_finals: report.distinct_final_states,
            violations: report.violations.len(),
            first_violating_seed: first_seed,
            original_len,
            min_witness,
            millis: report.elapsed_millis,
            runs_per_sec: report.runs_per_sec,
        });
    }
    let mut t = Table::new(&[
        "system",
        "adversary",
        "p",
        "seeds",
        "thr",
        "finals",
        "viol",
        "first",
        "witness",
        "runs/s",
    ]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.crash.clone(),
            format!("{:.2}", r.crash_prob),
            r.seeds.to_string(),
            r.threads.to_string(),
            r.distinct_finals.to_string(),
            r.violations.to_string(),
            r.first_violating_seed
                .map_or_else(|| "—".into(), |s| s.to_string()),
            match (r.original_len, r.min_witness) {
                (Some(o), Some(m)) => format!("{o}→{m}"),
                _ => "—".into(),
            },
            format!("{:.0}", r.runs_per_sec),
        ]);
    }
    let bug = rows
        .iter()
        .find(|r| r.violations > 0)
        .expect("the seeded bug row exists");
    let report = format!(
        "E18 — swarm verification over the catalog: seeded random \
         schedules under each system's default adversary, aggregates \
         thread-count-invariant (asserted), every correct system clean \
         and the Section 3.1 seeded bug surfaced at seed {} with its \
         schedule delta-debugged {} → {} actions into a crash-legal, \
         witness-log-verified 1-minimal counterexample:\n{}\
         replay/shrink any reported seed: `swarm replay --system <id> \
         --seed N`, `swarm shrink --system <id> --seed N`.\n",
        bug.first_violating_seed.expect("violating seed recorded"),
        bug.original_len.expect("original length recorded"),
        bug.min_witness.expect("witness length recorded"),
        t.render(),
    );
    (report, rows)
}

/// Renders the E11 + E12 + E13 + E15 + E16 + E17 + E18 rows as the
/// `BENCH_explore.json` snapshot: a stable, diff-friendly record of the
/// engine trajectory across PRs. The host core count is recorded so
/// trajectory points from different machines stay comparable (the fused
/// single-worker floor on a 1-core box is not a parallel win) — the CI
/// `bench-record` job regenerates the snapshot on a multi-core runner
/// and uploads it as an artifact.
///
/// Schema migration: version 5 adds `e18_rows` (the swarm-verification
/// sweep; `first_violating_seed`, `original_len` and `min_witness` are
/// `null` on clean rows) and requires `e18` in the regenerate command;
/// version 4 added `e17_rows` (the scalarset-symmetry sweep) and a
/// `mode` field on `e16_rows` (the por+rebind tier-parity rows);
/// version 3 added `e16_rows` (the storage-tier scaling sweep);
/// version 2 added the `schema` field itself plus `e15_rows` (the POR
/// sweep). Earlier row sets are unchanged in shape at each step, so an
/// old reader keeps working on a newer file as long as it ignores
/// unknown keys.
pub fn snapshot_json(
    e11: &[E11Row],
    e12: &[E12Row],
    e13: &[E13Row],
    e15: &[E15Row],
    e16: &[E16Row],
    e17: &[E17Row],
    e18: &[E18Row],
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 5,\n");
    out.push_str(
        "  \"regenerate\": \"cargo run -p rc-bench --release --bin tables -- e11 e12 e13 e15 \
         e16 e17 e18 --snapshot\",\n",
    );
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(
        "  \"note\": \"states and leaves are deterministic; millis, states_per_sec, \
         vs_serial and reduction are machine-dependent\",\n",
    );
    out.push_str("  \"e11_rows\": [\n");
    for (i, r) in e11.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"crash_budget\": {}, \"engine\": \"{}\", \
             \"verdict\": \"{}\", \"states\": {}, \"leaves\": {}, \"millis\": {:.1}, \
             \"states_per_sec\": {:.0}, \"vs_serial\": {:.2}}}{}\n",
            r.system,
            r.crash_budget,
            r.engine,
            r.verdict,
            r.states,
            r.leaves,
            r.millis,
            r.states_per_sec,
            r.vs_serial,
            if i + 1 == e11.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"e12_rows\": [\n");
    for (i, r) in e12.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"crash_budget\": {}, \"max_states\": {}, \
             \"symmetry\": \"{}\", \"verdict\": \"{}\", \"states\": {}, \"leaves\": {}, \
             \"millis\": {:.1}, \"states_per_sec\": {:.0}, \"reduction\": {:.1}}}{}\n",
            r.system,
            r.crash_budget,
            r.max_states,
            r.symmetry,
            r.verdict,
            r.states,
            r.leaves,
            r.millis,
            r.states_per_sec,
            r.reduction,
            if i + 1 == e12.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"e13_rows\": [\n");
    for (i, r) in e13.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"crash_budget\": {}, \"max_states\": {}, \
             \"mode\": \"{}\", \"verdict\": \"{}\", \"states\": {}, \"leaves\": {}, \
             \"millis\": {:.1}, \"states_per_sec\": {:.0}, \"reduction\": {:.1}, \
             \"reduction_is_lower_bound\": {}}}{}\n",
            r.system,
            r.crash_budget,
            r.max_states,
            r.mode,
            r.verdict,
            r.states,
            r.leaves,
            r.millis,
            r.states_per_sec,
            r.reduction,
            r.reduction_is_lower_bound,
            if i + 1 == e13.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"e15_rows\": [\n");
    for (i, r) in e15.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"crash_budget\": {}, \"max_states\": {}, \
             \"mode\": \"{}\", \"verdict\": \"{}\", \"states\": {}, \"leaves\": {}, \
             \"millis\": {:.1}, \"states_per_sec\": {:.0}, \"reduction\": {:.1}, \
             \"reduction_is_lower_bound\": {}}}{}\n",
            r.system,
            r.crash_budget,
            r.max_states,
            r.mode,
            r.verdict,
            r.states,
            r.leaves,
            r.millis,
            r.states_per_sec,
            r.reduction,
            r.reduction_is_lower_bound,
            if i + 1 == e15.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"e16_rows\": [\n");
    for (i, r) in e16.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"crash_budget\": {}, \"tier\": \"{}\", \
             \"mode\": \"{}\", \
             \"threads\": {}, \"max_states\": {}, \"max_bytes\": {}, \"verdict\": \"{}\", \
             \"states\": {}, \"leaves\": {}, \"millis\": {:.1}, \"states_per_sec\": {:.0}, \
             \"peak_table_mb\": {:.1}, \"spilled_mb\": {:.1}, \"filter_bits\": {}, \
             \"witness_mb\": {:.1}}}{}\n",
            r.system,
            r.crash_budget,
            r.tier,
            r.mode,
            r.threads,
            r.max_states,
            r.max_bytes,
            r.verdict,
            r.states,
            r.leaves,
            r.millis,
            r.states_per_sec,
            r.peak_table_mb,
            r.spilled_mb,
            r.filter_bits,
            r.witness_mb,
            if i + 1 == e16.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"e17_rows\": [\n");
    for (i, r) in e17.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"crash_budget\": {}, \"max_states\": {}, \
             \"mode\": \"{}\", \"threads\": {}, \"verdict\": \"{}\", \"states\": {}, \
             \"leaves\": {}, \"millis\": {:.1}, \"states_per_sec\": {:.0}, \
             \"reduction\": {:.1}}}{}\n",
            r.system,
            r.crash_budget,
            r.max_states,
            r.mode,
            r.threads,
            r.verdict,
            r.states,
            r.leaves,
            r.millis,
            r.states_per_sec,
            r.reduction,
            if i + 1 == e17.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"e18_rows\": [\n");
    let or_null = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
    for (i, r) in e18.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"crash\": \"{}\", \"crash_prob\": {:.2}, \
             \"seeds\": {}, \"threads\": {}, \"distinct_finals\": {}, \"violations\": {}, \
             \"first_violating_seed\": {}, \"original_len\": {}, \"min_witness\": {}, \
             \"millis\": {:.1}, \"runs_per_sec\": {:.0}}}{}\n",
            r.system,
            r.crash,
            r.crash_prob,
            r.seeds,
            r.threads,
            r.distinct_finals,
            r.violations,
            or_null(r.first_violating_seed),
            or_null(r.original_len.map(|v| v as u64)),
            or_null(r.min_witness.map(|v| v as u64)),
            r.millis,
            r.runs_per_sec,
            if i + 1 == e18.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A system of the lint catalog: builds the memory, the programs and
/// (when the catalog ships one) the symmetry declaration to audit.
pub type LintSystemFn = Box<
    dyn Fn() -> (
        Memory,
        Vec<Box<dyn Program>>,
        Option<rc_runtime::SymmetrySpec>,
    ),
>;

/// The E14 / `tables lint` system catalog: every shipped system builder
/// (the `_sym` variants where they exist, so the owned-cell and orbit
/// declarations are audited too) at the instance sizes the experiments
/// use. The paper's Fig. 7 universal construction is exercised through
/// its RC building blocks (each `next`-pointer instance is a catalog
/// consensus object); its workers' node-pool state space defeats the
/// per-process fixpoint budget, so it is audited structurally via E6's
/// history audit instead of appearing here.
pub fn lint_catalog() -> Vec<(String, LintSystemFn)> {
    let tn_witness = |n: usize| {
        let tn = Tn::new(n);
        let a = Assignment::split(
            Tn::forget_state(),
            vec![Tn::op_a(); n / 2],
            vec![Tn::op_b(); n - n / 2],
        );
        let w = check_discerning(&tn, &a).expect("T_n witness");
        (Arc::new(tn) as TypeHandle, w)
    };
    let mut catalog: Vec<(String, LintSystemFn)> = Vec::new();
    {
        let (ty, w) = tn_witness(4);
        let inputs = team_inputs(&w.assignment);
        let (ty2, w2, inputs2) = (ty.clone(), w.clone(), inputs.clone());
        catalog.push((
            "team consensus T_4 (sym)".into(),
            Box::new(move || {
                let (mem, programs, spec) =
                    build_team_consensus_system_sym(ty.clone(), &w, &inputs);
                (mem, programs, Some(spec))
            }),
        ));
        catalog.push((
            "masked team consensus T_4 (sym)".into(),
            Box::new(move || {
                let (mem, programs, spec) =
                    build_masked_team_consensus_system_sym(ty2.clone(), &w2, &inputs2);
                (mem, programs, Some(spec))
            }),
        ));
    }
    {
        let (ty, w) = tn_witness(4);
        let inputs = team_inputs(&w.assignment);
        catalog.push((
            "tournament consensus T_4".into(),
            Box::new(move || {
                let (mem, programs) = build_tournament_consensus(ty.clone(), &w, &inputs);
                (mem, programs, None)
            }),
        ));
    }
    for (name, broken) in [("team RC", false), ("broken team RC", true)] {
        let (ty, w) = sn_witness(3);
        let inputs = team_inputs(&w.assignment);
        let (ty2, w2, inputs2) = (ty.clone(), w.clone(), inputs.clone());
        catalog.push((
            format!("{name} S_3 (sym)"),
            Box::new(move || {
                let (mem, programs, spec) = if broken {
                    build_broken_team_rc_system_sym(ty.clone(), &w, &inputs)
                } else {
                    build_team_rc_system_sym(ty.clone(), &w, &inputs)
                };
                (mem, programs, Some(spec))
            }),
        ));
        catalog.push((
            format!("masked {name} S_3 (sym)"),
            Box::new(move || {
                let (mem, programs, spec) = if broken {
                    build_masked_broken_team_rc_system_sym(ty2.clone(), &w2, &inputs2)
                } else {
                    build_masked_team_rc_system_sym(ty2.clone(), &w2, &inputs2)
                };
                (mem, programs, Some(spec))
            }),
        ));
    }
    {
        let (ty, w) = sn_witness(3);
        let inputs: Vec<Value> = (0..3).map(|i| Value::Int(i as i64)).collect();
        catalog.push((
            "tournament RC S_3".into(),
            Box::new(move || {
                let (mem, programs) = build_tournament_rc(ty.clone(), &w, &inputs);
                (mem, programs, None)
            }),
        ));
    }
    {
        // Distinct inputs: every orbit is a singleton, so the declared
        // round-register family is *inert* — the certifier records the
        // warning and the engines never permute it.
        let inputs: Vec<Value> = (0..2i64).map(Value::Int).collect();
        catalog.push((
            "SimultaneousRc n=2 (sym)".into(),
            Box::new(move || {
                let factory = ConsensusObjectFactory { domain: 4 };
                let (mem, programs, spec) = build_simultaneous_rc_system_sym(&factory, &inputs, 3);
                (mem, programs, Some(spec))
            }),
        ));
    }
    {
        // Equal-input orbit: the round-register scalarset family
        // *moves*, so the gate runs the full equivariance certificate —
        // the declaration the E17 reduction rests on.
        let inputs = vec![Value::Int(0), Value::Int(0), Value::Int(1)];
        catalog.push((
            "SimultaneousRc n=3 scalarset (sym)".into(),
            Box::new(move || {
                let factory = ConsensusObjectFactory { domain: 4 };
                let (mem, programs, spec) = build_simultaneous_rc_system_sym(&factory, &inputs, 3);
                (mem, programs, Some(spec))
            }),
        ));
    }
    catalog
}

/// One catalog system's audit result.
pub struct E14Row {
    /// Catalog entry name (`(sym)` marks audited symmetry declarations).
    pub system: String,
    /// Number of processes.
    pub n: usize,
    /// Shared cells allocated by the builder.
    pub cells: usize,
    /// Memoized per-process local states the fixpoint visited (summed).
    pub local_states: usize,
    /// Instrumented step probes the fixpoint ran.
    pub probes: usize,
    /// Total `(process, cell)` access pairs under the **crash-free**
    /// footprint (no `on_crash` edges).
    pub accesses_crash_free: usize,
    /// The same under the **crash** footprint (`on_crash` edges
    /// included) — the sound one the lint verdict is based on.
    pub accesses_crash: usize,
    /// Statically-independent process pairs (disjoint write∩access
    /// footprints), from the crash footprint.
    pub independent_pairs: usize,
    /// Cells touched by exactly one process: derivable owned-cell
    /// candidates.
    pub derived_owned: usize,
    /// Lint errors (under-declarations, owner-only violations).
    pub errors: Vec<String>,
    /// Lint warnings (over-declarations, inert ownership).
    pub warnings: Vec<String>,
    /// Ample-set soundness lint ([`rc_runtime::lint_ample`]) errors.
    /// `A1`/`A2` mark the system *POR-ineligible* (the engine refuses
    /// it, so nothing unsound can run) and do not fail the gate;
    /// `A3`–`A5` are soundness failures and do.
    pub ample_errors: Vec<String>,
    /// Ample-set lint warnings (e.g. "POR will not reduce this system").
    pub ample_warnings: Vec<String>,
    /// Whether the audited spec declares scalarset families
    /// ([`rc_runtime::SymmetrySpec::with_scalarset`]).
    pub has_scalarsets: bool,
    /// Scalarset equivariance certifier ([`rc_runtime::lint_scalarset`])
    /// errors. Any error fails the gate: the engines refuse to permute
    /// an uncertified family at search start, but the catalog must
    /// never ship a declaration the certifier rejects.
    pub scalarset_errors: Vec<String>,
    /// Scalarset certifier warnings (inert families, no declarations).
    pub scalarset_warnings: Vec<String>,
    /// States visited by the ample lint's dynamic commutation
    /// spot-check.
    pub spot_states: usize,
    /// Pruned-order pair re-executions the spot-check performed.
    pub spot_pairs: usize,
}

/// Audits every catalog system; the row order is the catalog order.
///
/// # Panics
///
/// Panics if the footprint analysis itself fails on a catalog system
/// (budget exhaustion or a contract violation) — the catalog is sized to
/// be analyzable, so a failure is a defect, not a verdict.
pub fn catalog_lint_rows() -> Vec<E14Row> {
    use rc_runtime::{
        analyze_system, lint_ample, lint_with_analysis, system_analysis_cached, AnalysisBudget,
        StaticIndependence,
    };
    lint_catalog()
        .into_iter()
        .map(|(system, build)| {
            let (mem, programs, spec) = build();
            let crash_free = analyze_system(&mem, &programs, false, AnalysisBudget::default())
                .unwrap_or_else(|e| panic!("{system}: crash-free analysis failed: {e}"));
            // One cached per-state analysis per catalog id serves the
            // declaration lint, the ample lint below and any POR run on
            // the same id — the fixpoint no longer re-runs per consumer
            // (asserted in `catalog_lint_shares_one_analysis_per_system`).
            let analysis_id = format!("bench/lint/{system}");
            let analysis =
                system_analysis_cached(&analysis_id, &mem, &programs, AnalysisBudget::default())
                    .unwrap_or_else(|e| panic!("{system}: analysis failed: {e}"));
            let report = lint_with_analysis(&analysis, &mem, &programs, spec.as_ref());
            let scalarset = spec
                .as_ref()
                .filter(|s| !s.scalarset_families().is_empty())
                .map(|s| rc_runtime::lint_scalarset(&mem, &programs, s, AnalysisBudget::default()));
            let (mem2, programs2, spec2) = build();
            let ample = lint_ample(
                mem2,
                programs2,
                spec2.as_ref(),
                &CrashModel::independent(1).after_decide(true),
                Some(&analysis_id),
                128,
            );
            let count = |fp: &rc_runtime::SystemFootprint| -> usize {
                fp.per_process.iter().map(|p| p.cells.len()).sum()
            };
            let indep = StaticIndependence::from_footprint(&report.footprint);
            E14Row {
                system,
                n: programs.len(),
                cells: mem.len(),
                local_states: report
                    .footprint
                    .per_process
                    .iter()
                    .map(|p| p.local_states)
                    .sum(),
                probes: report.footprint.probes,
                accesses_crash_free: count(&crash_free),
                accesses_crash: count(&report.footprint),
                independent_pairs: indep.independent_pairs().len(),
                derived_owned: report.derived_owned.iter().map(Vec::len).sum(),
                errors: report.errors,
                warnings: report.warnings,
                ample_errors: ample.errors,
                ample_warnings: ample.warnings,
                has_scalarsets: scalarset.is_some(),
                scalarset_errors: scalarset
                    .as_ref()
                    .map(|r| r.errors.clone())
                    .unwrap_or_default(),
                scalarset_warnings: scalarset
                    .as_ref()
                    .map(|r| r.warnings.clone())
                    .unwrap_or_default(),
                spot_states: ample.spot_states,
                spot_pairs: ample.spot_pairs,
            }
        })
        .collect()
}

/// Classifies a row's ample-set lint result for the E14 gate:
/// `Ok(verdict)` keeps the gate green (`"clean"`, `"clean (k warnings)"`
/// or `"ineligible"` — the engine refuses POR on A1/A2 systems, so
/// nothing unsound can run), `Err(verdict)` fails it (an A3–A5
/// soundness violation: a divergent pruned interleaving, an escaped
/// crash future or a broken symmetry equivariance would make POR
/// unsound *if enabled*, and the catalog must never ship that).
fn ample_verdict(row: &E14Row) -> Result<String, String> {
    let ineligible_only = row
        .ample_errors
        .iter()
        .all(|e| e.starts_with("A1:") || e.starts_with("A2:"));
    if row.ample_errors.is_empty() {
        if row.ample_warnings.is_empty() {
            Ok("clean".to_string())
        } else {
            Ok(format!(
                "clean ({})",
                plural(row.ample_warnings.len(), "warning")
            ))
        }
    } else if ineligible_only {
        Ok("ineligible".to_string())
    } else {
        Err(format!(
            "FAIL ({})",
            plural(row.ample_errors.len(), "error")
        ))
    }
}

/// Classifies a row's scalarset-certificate result for the E14 gate:
/// `Ok(verdict)` keeps the gate green (`"—"` for specs without declared
/// families, `"certified"`, or `"certified (k warnings)"` — inert
/// families warn but stay green because the engines never permute
/// them), `Err(verdict)` fails it: the engines refuse to permute an
/// uncertified family at search start, but the catalog must never ship
/// a declaration the certifier rejects.
fn scalarset_verdict(row: &E14Row) -> Result<String, String> {
    if !row.has_scalarsets {
        Ok("—".to_string())
    } else if !row.scalarset_errors.is_empty() {
        Err(format!(
            "FAIL ({})",
            plural(row.scalarset_errors.len(), "error")
        ))
    } else if row.scalarset_warnings.is_empty() {
        Ok("certified".to_string())
    } else {
        Ok(format!(
            "certified ({})",
            plural(row.scalarset_warnings.len(), "warning")
        ))
    }
}

/// `"1 warning"` / `"2 warnings"` — count annotations for verdicts.
fn plural(count: usize, noun: &str) -> String {
    if count == 1 {
        format!("{count} {noun}")
    } else {
        format!("{count} {noun}s")
    }
}

/// E14: the catalog access-declaration audit (also the `tables lint` CI
/// gate). Returns the rendered report and whether every system passed.
pub fn e14_catalog_lint() -> (String, bool) {
    let rows = catalog_lint_rows();
    let mut t = Table::new(&[
        "system",
        "n",
        "cells",
        "local states",
        "probes",
        "accesses (no crash)",
        "accesses (crash)",
        "indep pairs",
        "derived owned",
        "verdict",
        "ample (spot st/pairs)",
        "scalarset",
    ]);
    let mut clean = true;
    let mut details = String::new();
    for r in &rows {
        let verdict = if r.errors.is_empty() {
            if r.warnings.is_empty() {
                "clean".to_string()
            } else {
                format!("clean ({})", plural(r.warnings.len(), "warning"))
            }
        } else {
            clean = false;
            format!("FAIL ({})", plural(r.errors.len(), "error"))
        };
        let ample = match ample_verdict(r) {
            Ok(v) => v,
            Err(v) => {
                clean = false;
                v
            }
        };
        let scalarset = match scalarset_verdict(r) {
            Ok(v) => v,
            Err(v) => {
                clean = false;
                v
            }
        };
        t.row(&[
            r.system.clone(),
            r.n.to_string(),
            r.cells.to_string(),
            r.local_states.to_string(),
            r.probes.to_string(),
            r.accesses_crash_free.to_string(),
            r.accesses_crash.to_string(),
            r.independent_pairs.to_string(),
            r.derived_owned.to_string(),
            verdict,
            format!("{ample} ({}/{})", r.spot_states, r.spot_pairs),
            scalarset,
        ]);
        for e in &r.errors {
            details.push_str(&format!("  error [{}]: {e}\n", r.system));
        }
        for w in &r.warnings {
            details.push_str(&format!("  warning [{}]: {w}\n", r.system));
        }
        for e in &r.ample_errors {
            details.push_str(&format!("  ample [{}]: {e}\n", r.system));
        }
        for w in &r.ample_warnings {
            details.push_str(&format!("  ample warning [{}]: {w}\n", r.system));
        }
        for e in &r.scalarset_errors {
            details.push_str(&format!("  scalarset [{}]: {e}\n", r.system));
        }
        for w in &r.scalarset_warnings {
            details.push_str(&format!("  scalarset warning [{}]: {w}\n", r.system));
        }
    }
    let report = format!(
        "E14 — catalog access-declaration audit (`tables lint`): every \
         shipped system's `referenced_cells` and owned-cell declarations \
         checked against the analyzed cell-access footprint; crash edges \
         can only widen footprints (a re-run revisits cells from a reset \
         pc), so the crash column is the sound basis for the verdicts and \
         the static independence relation. The ample column is the \
         POR soundness lint (`lint_ample`): static C0–C2-style checks \
         plus a dynamic spot-check that re-executes pruned interleavings \
         at sampled states — `ineligible` (A1/A2) means the engine \
         refuses POR for that system, which keeps the gate green; an \
         A3–A5 soundness violation fails it. The scalarset column is the \
         equivariance certificate (`lint_scalarset`) for declared \
         cross-read cell families: `certified` means every family \
         transposition provably leaves the local-state graphs \
         equivariant (so the engines may permute the family with the \
         process slots, E17); a certificate error fails the gate:\n{}{details}\
         overall: {}\n",
        t.render(),
        if clean { "clean" } else { "FAIL" },
    );
    (report, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_run_small() {
        // Smoke-test each experiment at tiny sizes; correctness assertions
        // are inside the experiment functions themselves.
        assert!(e1_figure1(5).contains("E1"));
        assert!(e2_team_rc(5).contains("E2"));
        assert!(e3_simultaneous(5).contains("E3"));
        assert!(e4_tn(5).contains("E4"));
        assert!(e5_sn(4).contains("E5"));
        assert!(e6_universal(5).contains("E6"));
        assert!(e7_stack().contains("E7"));
        assert!(e9_sets().contains("E9"));
    }

    #[test]
    fn catalog_survey_runs() {
        assert!(e8_catalog().contains("stack"));
    }

    #[test]
    fn headline_runs() {
        assert!(e10_headline(3).contains("T_4"));
    }

    /// The symmetry sweep's own invariants (identical verdicts and
    /// weighted leaf counts, strict state reduction) are asserted inside
    /// the experiment; the fast sweep exercises them.
    #[test]
    fn symmetry_sweep_runs_fast() {
        let (report, rows) = e12_symmetry_reduction(true);
        assert!(report.contains("E12"));
        assert!(rows.iter().any(|r| r.symmetry == "on" && r.reduction > 1.0));
    }

    /// The full-state sweep's invariants (slots ≡ off on masked systems,
    /// rebind reduces with identical weighted leaves) are asserted
    /// inside the experiment; the fast sweep exercises them, and the
    /// snapshot renderer accepts all three row sets.
    #[test]
    fn full_state_sweep_runs_fast() {
        let (report, rows) = e13_full_state_symmetry(true);
        assert!(report.contains("E13"));
        assert!(rows.iter().any(|r| r.mode == "rebind" && r.reduction > 1.0));
        assert!(rows.iter().any(|r| r.mode == "slots"));
        let json = snapshot_json(&[], &[], &rows, &[], &[], &[], &[]);
        assert!(json.contains("\"schema\": 5"));
        assert!(json.contains("\"e13_rows\""));
        assert!(json.contains("\"e15_rows\""));
        assert!(json.contains("\"e16_rows\""));
        assert!(json.contains("\"e17_rows\""));
        assert!(json.contains("\"e18_rows\""));
        assert!(json.contains("masked S_4"));
    }

    /// The POR sweep's invariants (reduced rows match off verdicts and
    /// weighted leaf counts, budget-0 POR strictly reduces, por+rebind
    /// dominates rebind wherever POR alone reduced) are asserted inside
    /// the experiment; the fast sweep exercises them, including the
    /// acceptance-critical SimultaneousRc row — the system symmetry
    /// cannot reduce.
    #[test]
    fn por_sweep_runs_fast() {
        let (report, rows) = e15_por_reduction(true);
        assert!(report.contains("E15"));
        assert!(rows.iter().any(|r| r.mode == "por" && r.reduction > 1.0));
        assert!(rows.iter().any(|r| r.mode == "por+rebind"));
        assert!(rows.iter().any(|r| r.system.starts_with("SimultaneousRc")
            && r.mode == "por"
            && r.reduction > 1.0));
        let json = snapshot_json(&[], &[], &[], &rows, &[], &[], &[]);
        assert!(json.contains("\"e15_rows\""));
        assert!(json.contains("por+rebind"));
    }

    /// The storage sweep's invariants (baseline truncates at the cap,
    /// every lifted-cap tier × thread row verifies byte-identically,
    /// the byte-budgeted run matches the grid, spill rows freeze runs,
    /// filter rows populate the Bloom) are asserted inside the
    /// experiment; the fast sweep exercises them, including the
    /// acceptance-critical Truncated → Verified transition.
    #[test]
    fn storage_sweep_runs_fast() {
        let (report, rows) = e16_storage_scaling(true);
        assert!(report.contains("E16"));
        assert!(rows
            .iter()
            .any(|r| r.tier == "flat" && r.verdict == "Truncated"));
        assert!(rows
            .iter()
            .any(|r| r.tier == "packed+spill" && r.verdict == "Verified" && r.spilled_mb > 0.0));
        assert!(rows.iter().any(|r| r.max_bytes > 0));
        let json = snapshot_json(&[], &[], &[], &[], &rows, &[], &[]);
        assert!(json.contains("\"e16_rows\""));
        assert!(json.contains("packed+filter"));
        assert!(
            rows.iter().any(|r| r.mode == "por+rebind"),
            "the rebind+POR parity rows joined the tier grid"
        );
    }

    /// The scalarset sweep's invariants (every row Verified,
    /// byte-identical outcomes across threads within each mode, reduced
    /// weighted leaf counts equal to off, scalarset strictly below off,
    /// scalarset+por strictly below scalarset) are asserted inside the
    /// experiment; the fast sweep exercises them on the system E13/E15
    /// recorded at 1.0× under owned-cell symmetry, and the snapshot
    /// renderer accepts the rows.
    #[test]
    fn scalarset_sweep_runs_fast() {
        let (report, rows) = e17_scalarset_symmetry(true);
        assert!(report.contains("E17"));
        assert!(rows
            .iter()
            .any(|r| r.mode == "scalarset" && r.reduction > 1.0));
        let scal = rows
            .iter()
            .find(|r| r.mode == "scalarset")
            .expect("scalarset rows present");
        let both = rows
            .iter()
            .find(|r| r.mode == "scalarset+por")
            .expect("composed rows present");
        assert!(
            both.states < scal.states,
            "POR composes on top of the scalarset reduction"
        );
        let json = snapshot_json(&[], &[], &[], &[], &[], &rows, &[]);
        assert!(json.contains("\"e17_rows\""));
        assert!(json.contains("scalarset+por"));
    }

    /// The swarm sweep's contract clauses (correct systems clean, the
    /// seeded bug found / replayed / shrunk / witness-verified,
    /// thread-count-invariant aggregates) are asserted inside the
    /// experiment; the fast sweep exercises them, and the snapshot
    /// renderer writes `null` for the witness columns of clean rows.
    #[test]
    fn swarm_sweep_runs_fast() {
        let (report, rows) = e18_swarm(true);
        assert!(report.contains("E18"));
        assert!(rows
            .iter()
            .any(|r| r.system == "broken-team-rc" && r.violations > 0 && r.min_witness.is_some()));
        assert!(rows
            .iter()
            .all(|r| r.system == "broken-team-rc" || r.violations == 0));
        let json = snapshot_json(&[], &[], &[], &[], &[], &[], &rows);
        assert!(json.contains("\"e18_rows\""));
        assert!(json.contains("\"min_witness\": null"));
        assert!(json.contains("broken-team-rc"));
    }

    /// The per-state footprint analysis behind the declaration lint, the
    /// ample lint and the POR setup is cached per catalog id: a repeated
    /// audit must be served from the cache, not recompute the fixpoint.
    /// (Asserted through Arc identity and the analysis's fixpoint serial
    /// — the raw global run counter is shared with concurrent tests.)
    #[test]
    fn catalog_lint_shares_one_analysis_per_system() {
        use rc_runtime::{system_analysis_cached, AnalysisBudget};
        let rows = catalog_lint_rows();
        assert!(!rows.is_empty());
        let (system, build) = lint_catalog().into_iter().next().expect("catalog nonempty");
        let (mem, programs, _) = build();
        let id = format!("bench/lint/{system}");
        let first = system_analysis_cached(&id, &mem, &programs, AnalysisBudget::default())
            .expect("catalog system analyzable");
        let rows2 = catalog_lint_rows();
        assert_eq!(rows.len(), rows2.len());
        let second = system_analysis_cached(&id, &mem, &programs, AnalysisBudget::default())
            .expect("catalog system analyzable");
        assert!(
            Arc::ptr_eq(&first, &second),
            "the repeated audit recomputed {system}'s analysis"
        );
        assert_eq!(first.serial, second.serial);
    }
}
