//! The E14 / `tables lint` catalog audit, as a test suite: every shipped
//! system (in particular every `_sym` builder, whose owned-cell and
//! orbit declarations the audit checks) must lint clean, and a seeded
//! under-declaration must fail it — the linter is only trustworthy as a
//! CI gate if a real defect is caught, not just absent.

use rc_bench::exp::{catalog_lint_rows, e14_catalog_lint, lint_catalog};
use rc_runtime::{lint_system, Addr, AnalysisBudget, MemOps, Program, Rebinding, Step};
use rc_spec::Value;

/// Every catalog system — all the `_sym` builders among them — passes
/// the audit with zero errors (warnings allowed: over-declaration is a
/// lost-reduction note, not a soundness defect).
#[test]
fn every_catalog_system_lints_clean() {
    let rows = catalog_lint_rows();
    assert!(!rows.is_empty());
    let sym_rows = rows.iter().filter(|r| r.system.contains("(sym)")).count();
    assert!(sym_rows >= 6, "the _sym builders are all audited");
    for row in &rows {
        assert!(
            row.errors.is_empty(),
            "{} must lint clean, got: {:?}",
            row.system,
            row.errors
        );
    }
    let (report, clean) = e14_catalog_lint();
    assert!(clean, "{report}");
    assert!(report.contains("overall: clean"), "{report}");
}

/// Forwards every `Program` method to the wrapped catalog program but
/// omits one known-accessed cell from `referenced_cells` — the seeded
/// under-declaration the linter must catch.
#[derive(Debug)]
struct OmitCell {
    inner: Box<dyn Program>,
    omit: Addr,
}

impl Program for OmitCell {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        self.inner.step(mem)
    }
    fn on_crash(&mut self) {
        self.inner.on_crash();
    }
    fn state_key(&self) -> Value {
        self.inner.state_key()
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(OmitCell {
            inner: self.inner.boxed_clone(),
            omit: self.omit,
        })
    }
    fn rebind(&mut self, map: &Rebinding) {
        self.inner.rebind(map);
    }
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        let cells = self.inner.referenced_cells()?;
        Some(cells.into_iter().filter(|&c| c != self.omit).collect())
    }
}

/// Mutation test: clone a catalog system, drop one analyzed-as-accessed
/// cell from one process's declaration, and assert the lint fails with
/// an under-declaration error naming the process and the rule. A linter
/// that cannot catch this seeded defect would pass broken declarations
/// into the owned-cell soundness validation.
#[test]
fn seeded_under_declaration_fails_the_lint() {
    let mut mutated = 0usize;
    for (system, build) in lint_catalog() {
        let (mem, mut programs, spec) = build();
        // Pick a cell the analysis observes p0 accessing *and* p0
        // declares — dropping it is a genuine under-declaration.
        let clean = lint_system(&mem, &programs, spec.as_ref(), AnalysisBudget::default())
            .unwrap_or_else(|e| panic!("{system}: analysis failed: {e}"));
        let Some(declared) = programs[0].referenced_cells() else {
            continue;
        };
        let Some(&omit) = clean.footprint.per_process[0]
            .cells
            .keys()
            .find(|c| declared.contains(c))
        else {
            continue;
        };
        programs[0] = Box::new(OmitCell {
            inner: programs[0].boxed_clone(),
            omit,
        });
        let report = lint_system(&mem, &programs, spec.as_ref(), AnalysisBudget::default())
            .unwrap_or_else(|e| panic!("{system}: analysis failed: {e}"));
        assert!(
            !report.is_clean(),
            "{system}: dropping {omit} from p0's declaration must fail the lint"
        );
        assert!(
            report.errors.iter().any(|e| {
                e.contains("p0") && e.contains("under-declares") && e.contains(&omit.to_string())
            }),
            "{system}: the error must name the process, rule and cell: {:?}",
            report.errors
        );
        mutated += 1;
    }
    assert!(
        mutated >= 6,
        "the mutation ran across the catalog: {mutated}"
    );
}
