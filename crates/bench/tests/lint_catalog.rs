//! The E14 / `tables lint` catalog audit, as a test suite: every shipped
//! system (in particular every `_sym` builder, whose owned-cell and
//! orbit declarations the audit checks) must lint clean, and a seeded
//! under-declaration must fail it — the linter is only trustworthy as a
//! CI gate if a real defect is caught, not just absent.

use rc_bench::exp::{catalog_lint_rows, e14_catalog_lint, lint_catalog};
use rc_runtime::{
    lint_scalarset, lint_system, Addr, AnalysisBudget, MemOps, Memory, Program, Rebinding, Step,
    SymmetrySpec,
};
use rc_spec::Value;

/// Every catalog system — all the `_sym` builders among them — passes
/// the audit with zero errors (warnings allowed: over-declaration is a
/// lost-reduction note, not a soundness defect).
#[test]
fn every_catalog_system_lints_clean() {
    let rows = catalog_lint_rows();
    assert!(!rows.is_empty());
    let sym_rows = rows.iter().filter(|r| r.system.contains("(sym)")).count();
    assert!(sym_rows >= 6, "the _sym builders are all audited");
    for row in &rows {
        assert!(
            row.errors.is_empty(),
            "{} must lint clean, got: {:?}",
            row.system,
            row.errors
        );
    }
    let (report, clean) = e14_catalog_lint();
    assert!(clean, "{report}");
    assert!(report.contains("overall: clean"), "{report}");
    // The scalarset certificate column is part of the gate: the catalog
    // carries a moving round-register family (the E17 declaration) that
    // must certify, and an inert one (distinct inputs) that warns.
    let moving = rows
        .iter()
        .find(|r| r.system.contains("scalarset"))
        .expect("the catalog audits a moving scalarset family");
    assert!(moving.has_scalarsets);
    assert!(
        moving.scalarset_errors.is_empty(),
        "{}: {:?}",
        moving.system,
        moving.scalarset_errors
    );
    let inert = rows
        .iter()
        .find(|r| r.system.starts_with("SimultaneousRc n=2"))
        .expect("the distinct-input SimultaneousRc entry is audited");
    assert!(inert.has_scalarsets && inert.scalarset_errors.is_empty());
    assert!(
        inert.scalarset_warnings.iter().any(|w| w.contains("inert")),
        "{:?}",
        inert.scalarset_warnings
    );
    assert!(report.contains("certified"), "{report}");
}

/// Forwards every `Program` method to the wrapped catalog program but
/// omits one known-accessed cell from `referenced_cells` — the seeded
/// under-declaration the linter must catch.
#[derive(Debug)]
struct OmitCell {
    inner: Box<dyn Program>,
    omit: Addr,
}

impl Program for OmitCell {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        self.inner.step(mem)
    }
    fn on_crash(&mut self) {
        self.inner.on_crash();
    }
    fn state_key(&self) -> Value {
        self.inner.state_key()
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(OmitCell {
            inner: self.inner.boxed_clone(),
            omit: self.omit,
        })
    }
    fn rebind(&mut self, map: &Rebinding) {
        self.inner.rebind(map);
    }
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        let cells = self.inner.referenced_cells()?;
        Some(cells.into_iter().filter(|&c| c != self.omit).collect())
    }
}

/// Mutation test: clone a catalog system, drop one analyzed-as-accessed
/// cell from one process's declaration, and assert the lint fails with
/// an under-declaration error naming the process and the rule. A linter
/// that cannot catch this seeded defect would pass broken declarations
/// into the owned-cell soundness validation.
#[test]
fn seeded_under_declaration_fails_the_lint() {
    let mut mutated = 0usize;
    for (system, build) in lint_catalog() {
        let (mem, mut programs, spec) = build();
        // Pick a cell the analysis observes p0 accessing *and* p0
        // declares — dropping it is a genuine under-declaration.
        let clean = lint_system(&mem, &programs, spec.as_ref(), AnalysisBudget::default())
            .unwrap_or_else(|e| panic!("{system}: analysis failed: {e}"));
        let Some(declared) = programs[0].referenced_cells() else {
            continue;
        };
        let Some(&omit) = clean.footprint.per_process[0]
            .cells
            .keys()
            .find(|c| declared.contains(c))
        else {
            continue;
        };
        programs[0] = Box::new(OmitCell {
            inner: programs[0].boxed_clone(),
            omit,
        });
        let report = lint_system(&mem, &programs, spec.as_ref(), AnalysisBudget::default())
            .unwrap_or_else(|e| panic!("{system}: analysis failed: {e}"));
        assert!(
            !report.is_clean(),
            "{system}: dropping {omit} from p0's declaration must fail the lint"
        );
        assert!(
            report.errors.iter().any(|e| {
                e.contains("p0") && e.contains("under-declares") && e.contains(&omit.to_string())
            }),
            "{system}: the error must name the process, rule and cell: {:?}",
            report.errors
        );
        mutated += 1;
    }
    assert!(
        mutated >= 6,
        "the mutation ran across the catalog: {mutated}"
    );
}

/// Scans a declared family in positional order and decides the fold's
/// *trace* — a family transposition changes which value is folded
/// first, so the family is not a scalarset. The seeded order-sensitive
/// mutant the certifier must reject.
#[derive(Clone, Debug)]
struct OrderedTrace {
    family: Vec<Addr>,
    own: Addr,
    k: usize,
    trace: i64,
    wrote: bool,
}

impl Program for OrderedTrace {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        if !self.wrote {
            mem.write_register(self.own, Value::Int(1));
            self.wrote = true;
            return Step::Running;
        }
        if self.k == self.family.len() {
            return Step::Decided(Value::Int(self.trace));
        }
        if let Value::Int(x) = mem.read_register(self.family[self.k]) {
            self.trace = self.trace * 3 + x;
        }
        self.k += 1;
        Step::Running
    }
    fn on_crash(&mut self) {
        self.k = 0;
        self.trace = 0;
        self.wrote = false;
    }
    fn state_key(&self) -> Value {
        Value::pair(
            Value::Int(self.k as i64),
            Value::pair(Value::Int(self.trace), Value::Int(i64::from(self.wrote))),
        )
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn rebind(&mut self, map: &Rebinding) {
        self.own = map.lookup(self.own);
    }
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        let mut cells = self.family.clone();
        cells.push(self.own);
        Some(cells)
    }
}

/// Mutation test for the scalarset half of the gate: the seeded
/// order-sensitive scan must be rejected by the certifier with errors
/// naming the scalarset, its cells and a process — the exact errors the
/// E14 scalarset column turns red on. A certifier that waved this
/// through would let the engines permute a family whose fold order is
/// observable, silently corrupting leaf counts.
#[test]
fn seeded_order_sensitive_scan_fails_the_scalarset_certifier() {
    let mut mem = Memory::new();
    let family: Vec<Addr> = (0..3).map(|_| mem.alloc_register(Value::Int(0))).collect();
    let programs: Vec<Box<dyn Program>> = (0..3)
        .map(|pid| {
            Box::new(OrderedTrace {
                family: family.clone(),
                own: family[pid],
                k: 0,
                trace: 0,
                wrote: false,
            }) as Box<dyn Program>
        })
        .collect();
    let spec = SymmetrySpec::full(3).with_scalarset(family.clone());
    let report = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
    assert!(
        !report.is_certified(),
        "the order-sensitive scan must be rejected"
    );
    let all = report.errors.join("\n");
    assert!(all.contains("scalarset"), "must name the scalarset: {all}");
    assert!(
        all.contains(&family[0].to_string()) || all.contains("cell"),
        "must name the family cells: {all}"
    );
    assert!(all.contains('p'), "must name a process: {all}");
}
