//! Property tests for the simulation substrate itself.

use proptest::prelude::*;
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, RoundRobin};
use rc_runtime::{
    explore, run, Addr, CrashModel, ExploreConfig, MemOps, Memory, Program, Rebinding, Resolved,
    RunOptions, ShardInterner, Step, SymmetrySpec, ValueInterner,
};
use rc_spec::Value;

/// A little test program: performs `work` register writes, then decides
/// its input.
#[derive(Clone, Debug)]
struct Worker {
    scratch: rc_runtime::Addr,
    input: Value,
    work: u8,
    pc: u8,
}

impl Program for Worker {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        if self.pc < self.work {
            mem.write_register(self.scratch, Value::Int(i64::from(self.pc)));
            self.pc += 1;
            Step::Running
        } else {
            Step::Decided(self.input.clone())
        }
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

/// A rebindable program driving a fixed site list: at pc `i` it writes
/// `Int(i)` to (or reads from) `sites[i]`, then decides. Used by the
/// footprint-equivariance properties.
#[derive(Clone, Debug)]
struct Toucher {
    /// `(cell, is_write)` per step.
    sites: Vec<(Addr, bool)>,
    pc: u8,
}

impl Program for Toucher {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        let Some(&(addr, write)) = self.sites.get(self.pc as usize) else {
            return Step::Decided(Value::Unit);
        };
        if write {
            mem.write_register(addr, Value::Int(i64::from(self.pc)));
        } else {
            let _ = mem.read_register(addr);
        }
        self.pc += 1;
        Step::Running
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn rebind(&mut self, map: &Rebinding) {
        for (a, _) in &mut self.sites {
            *a = map.lookup(*a);
        }
    }
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        Some(self.sites.iter().map(|&(a, _)| a).collect())
    }
}

/// A small deterministic value zoo covering every `Value` constructor,
/// with enough overlap between nearby seeds to produce collisions.
fn small_value(seed: u64) -> Value {
    match seed % 7 {
        0 => Value::Bottom,
        1 => Value::Unit,
        2 => Value::Bool(seed % 2 == 0),
        3 => Value::Int((seed / 7 % 5) as i64),
        4 => Value::sym(if seed % 2 == 0 { "A" } else { "B" }),
        5 => Value::pair(small_value(seed / 7), Value::Int((seed % 3) as i64)),
        _ => Value::List(vec![small_value(seed / 7)]),
    }
}

/// A system snapshot mid-execution, for key-equivalence tests.
struct Snapshot {
    mem: Memory,
    programs: Vec<Box<dyn Program>>,
    decided: Vec<bool>,
    crashes: usize,
    decided_value: Option<Value>,
}

/// Drives a fresh `system(n, work, ..)` along `actions` seeded random
/// steps/crashes and returns the resulting snapshot.
fn drive(n: usize, work: u8, seed: u64, actions: usize) -> Snapshot {
    use rand::{Rng, SeedableRng};
    let (mut mem, mut programs) = system(n, work, false);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut decided = vec![false; n];
    let mut crashes = 0usize;
    let mut decided_value = None;
    for _ in 0..actions {
        let p = rng.gen_range(0..n);
        if rng.gen_bool(0.25) {
            programs[p].on_crash();
            decided[p] = false;
            crashes += 1;
        } else if !decided[p] {
            if let Step::Decided(v) = programs[p].step(&mut mem) {
                decided[p] = true;
                decided_value.get_or_insert(v);
            }
        }
    }
    Snapshot {
        mem,
        programs,
        decided,
        crashes,
        decided_value,
    }
}

/// Builds the engine's flat interned key from a snapshot: interned
/// memory cells, interned program keys, packed decided bits, crash
/// count, interned decided value.
fn interned_key(s: &Snapshot, interner: &mut ValueInterner) -> Vec<u32> {
    let mut key = Vec::new();
    s.mem.intern_state_key(interner, &mut key);
    for p in &s.programs {
        key.push(interner.intern(&p.state_key()));
    }
    let mut word = 0u32;
    for (i, &d) in s.decided.iter().enumerate() {
        if d {
            word |= 1 << (i % 32);
        }
        if i % 32 == 31 {
            key.push(word);
            word = 0;
        }
    }
    if s.decided.len() % 32 != 0 {
        key.push(word);
    }
    key.push(u32::try_from(s.crashes).expect("small"));
    key.push(match &s.decided_value {
        Some(v) => interner.intern(v),
        None => ValueInterner::NONE,
    });
    key
}

fn system(n: usize, work: u8, same_input: bool) -> (Memory, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    let scratch = mem.alloc_register(Value::Bottom);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|i| {
            Box::new(Worker {
                scratch,
                input: Value::Int(if same_input { 7 } else { i as i64 }),
                work,
                pc: 0,
            }) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

/// Applies a spec's canonical permutation to a signature vector — the
/// canonical form the engine's state keys inherit.
fn canonical_sigs(spec: &SymmetrySpec, sigs: &[u8]) -> Vec<u8> {
    match spec.canonical_perm_with(|p| sigs[p]) {
        None => sigs.to_vec(),
        Some(perm) => perm.iter().map(|&s| sigs[s as usize]).collect(),
    }
}

/// Enumerates every orbit permutation of `sigs` (brute force, for
/// checking `orbit_weight_with` against ground truth): recursively swaps
/// position `at` with every later same-label position.
fn permute_within_orbits(
    labels: &[u8],
    sigs: &mut Vec<u8>,
    at: usize,
    out: &mut std::collections::BTreeSet<Vec<u8>>,
) {
    if at == sigs.len() {
        out.insert(sigs.clone());
        return;
    }
    permute_within_orbits(labels, sigs, at + 1, out);
    for j in at + 1..sigs.len() {
        if labels[j] == labels[at] {
            sigs.swap(at, j);
            permute_within_orbits(labels, sigs, at + 1, out);
            sigs.swap(at, j);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The random scheduler is fully deterministic in its seed: identical
    /// traces, step counts and outputs.
    #[test]
    fn random_scheduler_is_deterministic(
        seed in any::<u64>(),
        n in 1usize..5,
        work in 0u8..5,
    ) {
        let config = RandomSchedulerConfig {
            seed,
            crash_prob: 0.2,
            crash: CrashModel::independent(3).after_decide(true),
        };
        let run_once = || {
            let (mut mem, mut programs) = system(n, work, false);
            let mut sched = RandomScheduler::new(config);
            run(&mut mem, &mut programs, &mut sched, RunOptions::default())
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.crashes, b.crashes);
    }

    /// Every decision in the trace appears in the outputs and vice versa.
    #[test]
    fn trace_decisions_match_outputs(
        seed in any::<u64>(),
        n in 1usize..5,
        work in 0u8..4,
    ) {
        let (mut mem, mut programs) = system(n, work, false);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.15,
            crash: CrashModel::independent(2).after_decide(true),
        });
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        let mut from_trace: Vec<Vec<Value>> = vec![Vec::new(); n];
        for (pid, v) in exec.trace.decisions() {
            from_trace[pid].push(v);
        }
        prop_assert_eq!(from_trace, exec.outputs);
    }

    /// Crash-free round-robin executes exactly (work + 1) steps per
    /// process.
    #[test]
    fn round_robin_step_count(n in 1usize..6, work in 0u8..6) {
        let (mut mem, mut programs) = system(n, work, true);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        prop_assert!(exec.all_decided);
        prop_assert_eq!(exec.steps, n * (usize::from(work) + 1));
        prop_assert_eq!(exec.crashes, 0);
    }

    /// The model checker verifies agreeing systems and refutes
    /// disagreeing ones, for every crash budget.
    #[test]
    fn explorer_verdicts(
        work in 0u8..3,
        budget in 0usize..3,
        same_input in any::<bool>(),
    ) {
        let outcome = explore(
            &|| system(2, work, same_input),
            &ExploreConfig {
                crash: CrashModel::independent(budget),
                inputs: None,
                ..ExploreConfig::default()
            },
        );
        if same_input {
            prop_assert!(outcome.is_verified(), "{outcome:?}");
        } else {
            prop_assert!(outcome.is_violation(), "{outcome:?}");
        }
    }

    /// The interner is injective: ids collide exactly when the values
    /// are structurally equal — the property that makes interned state
    /// keys as collision-free as the seed engine's structural tuples.
    #[test]
    fn interner_ids_collide_iff_values_equal(
        seeds in proptest::collection::vec(0u64..2_000, 2..24),
    ) {
        let values: Vec<Value> = seeds.iter().map(|&s| small_value(s)).collect();
        let mut interner = ValueInterner::new();
        let ids: Vec<u32> = values.iter().map(|v| interner.intern(v)).collect();
        for i in 0..values.len() {
            for j in 0..values.len() {
                prop_assert_eq!(values[i] == values[j], ids[i] == ids[j]);
            }
        }
    }

    /// Interned state keys collide exactly when the seed engine's
    /// structural `StateKey` tuples are equal: two system snapshots,
    /// driven along independent random schedules, have equal interned
    /// keys iff their structural tuples are equal.
    #[test]
    fn interned_state_keys_match_structural_equality(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        n in 1usize..4,
        work in 1u8..4,
        actions_a in 0usize..14,
        actions_b in 0usize..14,
    ) {
        let a = drive(n, work, seed_a, actions_a);
        let b = drive(n, work, seed_b, actions_b);
        let structural = |s: &Snapshot| {
            (
                s.mem.state_key(),
                s.programs.iter().map(|p| p.state_key()).collect::<Vec<_>>(),
                s.decided.clone(),
                s.crashes,
                s.decided_value.clone(),
            )
        };
        // One shared interner, exactly like one engine run.
        let mut interner = ValueInterner::new();
        let key_a = interned_key(&a, &mut interner);
        let key_b = interned_key(&b, &mut interner);
        prop_assert_eq!(structural(&a) == structural(&b), key_a == key_b);
    }

    /// The sharded-interner pipeline of the parallel engine — resolve
    /// against a *frozen* global interner, spill first-seen values to
    /// per-worker `ShardInterner`s, then reconcile local ids into the
    /// global interner in canonical item order — produces keys
    /// bit-identical to a single serial interner processing the same
    /// snapshots in the same order, for random `SysState` populations,
    /// at every chunking. Id-reconciliation is therefore exactly as
    /// injective as single-interner interning, and the memoized content
    /// hashes agree across the global/local split (the property shard
    /// routing relies on).
    #[test]
    fn sharded_interner_reconciliation_matches_single_interner(
        seeds in proptest::collection::vec(any::<u64>(), 1..10),
        n in 1usize..4,
        work in 1u8..4,
        chunks in 1usize..5,
    ) {
        let snapshots: Vec<Snapshot> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| drive(n, work, seed, (i * 5) % 14))
            .collect();
        let slot_lists: Vec<Vec<Value>> = snapshots
            .iter()
            .map(|s| {
                let mut slots = s.mem.state_key();
                slots.extend(s.programs.iter().map(|p| p.state_key()));
                if let Some(v) = &s.decided_value {
                    slots.push(v.clone());
                }
                slots
            })
            .collect();

        // The single-interner reference path.
        let mut single = ValueInterner::new();
        let reference: Vec<Vec<u32>> = slot_lists
            .iter()
            .map(|slots| slots.iter().map(|v| single.intern(v)).collect())
            .collect();

        // The sharded path: two frontier "levels" (so later levels hit
        // the global-lookup fast path), each split into `chunks`
        // contiguous worker chunks with frozen-global resolution.
        let mut global = ValueInterner::new();
        let mut sharded: Vec<Vec<u32>> = Vec::new();
        for level in slot_lists.chunks(slot_lists.len().div_ceil(2)) {
            let chunk_size = level.len().div_ceil(chunks);
            // "Parallel" phase: the global interner is frozen.
            let outputs: Vec<(Vec<Vec<Resolved>>, ShardInterner)> = level
                .chunks(chunk_size)
                .map(|chunk| {
                    let mut scratch = ShardInterner::new();
                    let resolved = chunk
                        .iter()
                        .map(|slots| {
                            slots
                                .iter()
                                .map(|v| scratch.resolve(&global, v))
                                .collect()
                        })
                        .collect();
                    (resolved, scratch)
                })
                .collect();
            // Serial reconciliation in canonical (chunk × item) order.
            for (items, scratch) in outputs {
                for item in items {
                    let key: Vec<u32> = item
                        .into_iter()
                        .map(|slot| match slot {
                            Resolved::Global(id) => id,
                            Resolved::Local(local) => global.intern(scratch.value(local)),
                        })
                        .collect();
                    sharded.push(key);
                }
            }
        }

        prop_assert_eq!(&sharded, &reference);
        // Injectivity across the population: keys collide iff the
        // structural slot lists are equal.
        for i in 0..slot_lists.len() {
            for j in 0..slot_lists.len() {
                prop_assert_eq!(slot_lists[i] == slot_lists[j], sharded[i] == sharded[j]);
            }
        }
        // Every slot value ended up globally interned, with the id its
        // key slots carry — the lookup fast path agrees with the keys.
        for (slots, key) in slot_lists.iter().zip(&sharded) {
            for (v, &id) in slots.iter().zip(key) {
                prop_assert_eq!(global.lookup(v), Some(id));
            }
        }
    }

    /// Process-symmetry canonicalization is **invariant** under every
    /// orbit permutation: permuting a state's per-process signatures
    /// within orbits never changes the canonical form. This is the
    /// soundness half of the reduction — every member of a permutation
    /// class maps to the same stored representative.
    #[test]
    fn canonical_form_is_invariant_under_orbit_permutations(
        labels in proptest::collection::vec(0u8..3, 1..7),
        sigs_seed in proptest::collection::vec(0u8..4, 7..8),
        shuffle_seed in any::<u64>(),
    ) {
        let n = labels.len();
        let spec = SymmetrySpec::from_classes(&labels);
        let sigs: Vec<u8> = (0..n).map(|i| sigs_seed[i % sigs_seed.len()]).collect();
        // A random permutation respecting the orbits (Fisher–Yates over
        // each label's positions; the vendored rand stub has no `seq`).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        let mut perm: Vec<usize> = (0..n).collect();
        for label in 0u8..3 {
            let members: Vec<usize> =
                (0..n).filter(|&i| labels[i] == label).collect();
            let mut shuffled = members.clone();
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                shuffled.swap(i, j);
            }
            for (&dst, &src) in members.iter().zip(&shuffled) {
                perm[dst] = src;
            }
        }
        let permuted: Vec<u8> = (0..n).map(|i| sigs[perm[i]]).collect();
        // Orbit-permuted states must share a canonical form.
        prop_assert_eq!(canonical_sigs(&spec, &sigs), canonical_sigs(&spec, &permuted));
    }

    /// Canonicalization is **injective on orbits**: two signature
    /// vectors share a canonical form iff they are orbit permutations of
    /// each other (equal per-orbit multisets). This is the no-false-merge
    /// half — states from different permutation classes never collide.
    #[test]
    fn canonical_form_is_injective_across_orbits(
        labels in proptest::collection::vec(0u8..3, 1..7),
        a_seed in proptest::collection::vec(0u8..4, 7..8),
        b_seed in proptest::collection::vec(0u8..4, 7..8),
    ) {
        let n = labels.len();
        let spec = SymmetrySpec::from_classes(&labels);
        let a: Vec<u8> = (0..n).map(|i| a_seed[i % a_seed.len()]).collect();
        let b: Vec<u8> = (0..n).map(|i| b_seed[i % b_seed.len()]).collect();
        let related = (0u8..3).all(|label| {
            let mut ma: Vec<u8> =
                (0..n).filter(|&i| labels[i] == label).map(|i| a[i]).collect();
            let mut mb: Vec<u8> =
                (0..n).filter(|&i| labels[i] == label).map(|i| b[i]).collect();
            ma.sort_unstable();
            mb.sort_unstable();
            ma == mb
        });
        // Canonical keys collide exactly on orbit-permutation classes.
        prop_assert_eq!(canonical_sigs(&spec, &a) == canonical_sigs(&spec, &b), related);
    }

    /// The orbit weight equals the true permutation-class size: the
    /// number of *distinct* signature vectors reachable by orbit
    /// permutations, counted by brute force.
    #[test]
    fn orbit_weight_counts_the_permutation_class(
        labels in proptest::collection::vec(0u8..3, 1..6),
        sigs_seed in proptest::collection::vec(0u8..3, 6..7),
    ) {
        let n = labels.len();
        let spec = SymmetrySpec::from_classes(&labels);
        let sigs: Vec<u8> = (0..n).map(|i| sigs_seed[i % sigs_seed.len()]).collect();
        let weight = spec.orbit_weight_with(|p| sigs[p]);
        let mut class: std::collections::BTreeSet<Vec<u8>> = std::collections::BTreeSet::new();
        permute_within_orbits(&labels, &mut sigs.clone(), 0, &mut class);
        prop_assert_eq!(weight, class.len() as u64);
    }

    /// Full-state canonicalization — signatures enriched with owned-cell
    /// values, as the engine builds them for owned-cell orbits — is
    /// invariant under orbit permutations that move program payloads and
    /// owned contents *together* (exactly what `canonicalize_child`
    /// does). The slots-only invariance test above is the owned = ∅
    /// special case.
    #[test]
    fn owned_cell_canonical_form_is_invariant_under_orbit_permutations(
        labels in proptest::collection::vec(0u8..3, 1..7),
        sigs_seed in proptest::collection::vec(0u8..3, 7..8),
        owned_seed in proptest::collection::vec(0u8..3, 7..8),
        shuffle_seed in any::<u64>(),
    ) {
        let n = labels.len();
        let spec = SymmetrySpec::from_classes(&labels);
        let sigs: Vec<(u8, u8)> = (0..n)
            .map(|i| (sigs_seed[i % sigs_seed.len()], owned_seed[i % owned_seed.len()]))
            .collect();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        let mut perm: Vec<usize> = (0..n).collect();
        for label in 0u8..3 {
            let members: Vec<usize> = (0..n).filter(|&i| labels[i] == label).collect();
            let mut shuffled = members.clone();
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                shuffled.swap(i, j);
            }
            for (&dst, &src) in members.iter().zip(&shuffled) {
                perm[dst] = src;
            }
        }
        // Program payload and owned-cell content travel together.
        let permuted: Vec<(u8, u8)> = (0..n).map(|i| sigs[perm[i]]).collect();
        let canonical = |v: &[(u8, u8)]| -> Vec<(u8, u8)> {
            match spec.canonical_perm_with(|p| v[p]) {
                None => v.to_vec(),
                Some(perm) => perm.iter().map(|&s| v[s as usize]).collect(),
            }
        };
        prop_assert_eq!(canonical(&sigs), canonical(&permuted));
    }

    /// On systems without owned cells the engine's enriched signature
    /// degenerates to the slots-only one: the canonical permutation
    /// computed from `(sig, ∅)` tuples equals the one computed from bare
    /// sigs, for every spec and signature vector (brute-force agreement
    /// at small n).
    #[test]
    fn empty_owned_signatures_agree_with_slots_only_canonicalization(
        labels in proptest::collection::vec(0u8..3, 1..7),
        sigs_seed in proptest::collection::vec(0u8..4, 7..8),
    ) {
        let n = labels.len();
        let spec = SymmetrySpec::from_classes(&labels);
        let sigs: Vec<u8> = (0..n).map(|i| sigs_seed[i % sigs_seed.len()]).collect();
        let slots_only = spec.canonical_perm_with(|p| sigs[p]);
        let empty_owned =
            spec.canonical_perm_with(|p| (sigs[p], Vec::<u8>::new()));
        prop_assert_eq!(slots_only, empty_owned);
    }

    /// `rebind ∘ rebind⁻¹` is the identity on programs: remapping a
    /// program's addresses by a random cell bijection and then by its
    /// inverse restores the original reference list, whatever subset of
    /// cells the program holds.
    #[test]
    fn rebind_roundtrips_through_the_inverse_map(
        cells in 2usize..8,
        picks in proptest::collection::vec(any::<u16>(), 1..6),
        shuffle_seed in any::<u64>(),
    ) {
        /// Holds an arbitrary list of addresses and rebinds them all.
        #[derive(Clone, Debug)]
        struct AddrHolder(Vec<Addr>);
        impl Program for AddrHolder {
            fn step(&mut self, _: &mut dyn MemOps) -> Step {
                Step::Decided(Value::Unit)
            }
            fn on_crash(&mut self) {}
            fn state_key(&self) -> Value {
                Value::Unit
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
            fn rebind(&mut self, map: &Rebinding) {
                for a in &mut self.0 {
                    *a = map.lookup(*a);
                }
            }
            fn referenced_cells(&self) -> Option<Vec<Addr>> {
                Some(self.0.clone())
            }
        }
        let mut mem = Memory::new();
        let addrs: Vec<Addr> = (0..cells).map(|_| mem.alloc_register(Value::Bottom)).collect();
        // A random bijection over the cells (Fisher–Yates).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        let mut target: Vec<usize> = (0..cells).collect();
        for i in (1..cells).rev() {
            let j = rng.gen_range(0..i + 1);
            target.swap(i, j);
        }
        let mut map = Rebinding::identity(cells);
        for (from, &to) in target.iter().enumerate() {
            map.map(addrs[from], addrs[to]);
        }
        let original: Vec<Addr> = picks
            .iter()
            .map(|&p| addrs[p as usize % cells])
            .collect();
        let mut program = AddrHolder(original.clone());
        program.rebind(&map);
        program.rebind(&map.inverse());
        prop_assert_eq!(program.referenced_cells(), Some(original));
        // State keys never change under rebinding (the documented
        // contract: addresses are identity, not volatile state).
        prop_assert_eq!(program.state_key(), Value::Unit);
    }

    /// The analyzed footprint is *equivariant* under address rebinding:
    /// permuting the memory cells by a random bijection and rebinding
    /// every program through it yields exactly the original footprint
    /// with every address mapped — the analysis sees addresses as pure
    /// identity, so a relocation cannot grow, shrink or re-mode any
    /// process's cell set. (The full-state symmetry reduction and the
    /// linter both depend on this: a footprint computed once is valid
    /// for every rebound copy of the program.)
    #[test]
    fn analyzed_footprints_are_equivariant_under_rebinding(
        cells in 2usize..6,
        site_seeds in proptest::collection::vec(any::<u16>(), 1..5),
        n in 1usize..4,
        shuffle_seed in any::<u64>(),
    ) {
        // Registers allocate densely from 0, so both memories share one
        // address list; cell j of the permuted memory holds the initial
        // value of the original cell perm⁻¹(j), so contents travel with
        // the addresses the rebinding redirects.
        let build = |perm: &[usize]| -> (Memory, Vec<Addr>, Rebinding) {
            let mut mem = Memory::new();
            let mut values = vec![0i64; cells];
            for (orig, &img) in perm.iter().enumerate() {
                values[img] = orig as i64;
            }
            let addrs: Vec<Addr> =
                values.iter().map(|&v| mem.alloc_register(Value::Int(v))).collect();
            let mut map = Rebinding::identity(cells);
            for (orig, &img) in perm.iter().enumerate() {
                map.map(addrs[orig], addrs[img]);
            }
            (mem, addrs, map)
        };
        let programs = |map: &Rebinding, addrs: &[Addr]| -> Vec<Box<dyn Program>> {
            (0..n)
                .map(|p| {
                    let mut prog: Box<dyn Program> = Box::new(Toucher {
                        sites: site_seeds
                            .iter()
                            .enumerate()
                            .map(|(i, &pick)| {
                                // Low bit picks the mode, the rest the cell.
                                (addrs[((pick >> 1) as usize + p * i) % cells], pick & 1 == 0)
                            })
                            .collect(),
                        pc: 0,
                    });
                    prog.rebind(map);
                    prog
                })
                .collect()
        };
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        let mut perm: Vec<usize> = (0..cells).collect();
        for i in (1..cells).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        let identity: Vec<usize> = (0..cells).collect();
        let (mem, addrs, id_map) = build(&identity);
        let (mem2, _, map) = build(&perm);
        let budget = rc_runtime::AnalysisBudget::default();
        let original = rc_runtime::analyze_system(&mem, &programs(&id_map, &addrs), true, budget)
            .expect("bounded system");
        let rebound = rc_runtime::analyze_system(&mem2, &programs(&map, &addrs), true, budget)
            .expect("bounded system");
        for p in 0..n {
            let mapped: std::collections::BTreeMap<Addr, _> = original.per_process[p]
                .cells
                .iter()
                .map(|(&a, &m)| (map.lookup(a), m))
                .collect();
            prop_assert_eq!(&mapped, &rebound.per_process[p].cells);
            // Rebinding must not change the local-state graph.
            prop_assert_eq!(
                original.per_process[p].local_states,
                rebound.per_process[p].local_states
            );
        }
    }

    /// The analyzed footprint is equivariant under orbit permutations:
    /// relocating interchangeable processes (program slot + owned
    /// register moving together, as the full-state symmetry reduction
    /// does) permutes the per-process footprints and remaps their owned
    /// addresses — nothing else changes.
    #[test]
    fn analyzed_footprints_are_invariant_under_orbit_permutations(
        n in 2usize..5,
        work in 1u8..4,
        shuffle_seed in any::<u64>(),
    ) {
        // One shared register everyone reads + one owned register each.
        let build = |order: &[usize]| -> (Memory, Vec<Box<dyn Program>>) {
            let mut mem = Memory::new();
            let shared = mem.alloc_register(Value::Bottom);
            let own: Vec<Addr> = (0..n).map(|_| mem.alloc_register(Value::Bottom)).collect();
            let programs: Vec<Box<dyn Program>> = order
                .iter()
                .enumerate()
                .map(|(slot, &src)| {
                    // The program of original process `src`, relocated to
                    // `slot`: its owned register is slot's, exactly as
                    // Program::rebind would leave it.
                    let _ = src;
                    Box::new(Toucher {
                        sites: (0..work)
                            .map(|w| {
                                if w % 2 == 0 {
                                    (own[slot], true)
                                } else {
                                    (shared, false)
                                }
                            })
                            .collect(),
                        pc: 0,
                    }) as Box<dyn Program>
                })
                .collect();
            (mem, programs)
        };
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        let identity: Vec<usize> = (0..n).collect();
        let (mem, programs) = build(&identity);
        let (mem2, permuted) = build(&order);
        let budget = rc_runtime::AnalysisBudget::default();
        let original =
            rc_runtime::analyze_system(&mem, &programs, true, budget).expect("bounded");
        let moved =
            rc_runtime::analyze_system(&mem2, &permuted, true, budget).expect("bounded");
        // Orbit members are interchangeable, so the footprint at slot i
        // equals original slot i's with the owned register relabelled —
        // which, for this fixture, is slot i's own register either way.
        for p in 0..n {
            prop_assert_eq!(
                &original.per_process[p].cells,
                &moved.per_process[p].cells
            );
        }
        prop_assert_eq!(original.probes, moved.probes);
    }

    /// The static independence relation is symmetric and irreflexive:
    /// `I(p,q) ⇔ I(q,p)` for every pair, two steps of the *same*
    /// process never count as independent, and `independent_pairs`
    /// agrees with the pairwise predicate — on randomly generated
    /// site lists over randomly shared cells.
    #[test]
    fn static_independence_is_symmetric_and_irreflexive(
        cells in 1usize..5,
        site_seeds in proptest::collection::vec(any::<u16>(), 1..6),
        n in 1usize..5,
    ) {
        let mut mem = Memory::new();
        let addrs: Vec<Addr> =
            (0..cells).map(|_| mem.alloc_register(Value::Bottom)).collect();
        let programs: Vec<Box<dyn Program>> = (0..n)
            .map(|p| {
                Box::new(Toucher {
                    sites: site_seeds
                        .iter()
                        .enumerate()
                        .map(|(i, &pick)| {
                            (
                                addrs[((pick >> 1) as usize + p * (i + 1)) % cells],
                                pick & 1 == 0,
                            )
                        })
                        .collect(),
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        let fp = rc_runtime::analyze_system(
            &mem,
            &programs,
            true,
            rc_runtime::AnalysisBudget::default(),
        )
        .expect("bounded system");
        let indep = rc_runtime::StaticIndependence::from_footprint(&fp);
        for p in 0..n {
            prop_assert!(
                !indep.are_independent(p, p),
                "same-pid steps always conflict"
            );
            for q in 0..n {
                // Independence must be symmetric.
                prop_assert_eq!(
                    indep.are_independent(p, q),
                    indep.are_independent(q, p)
                );
            }
        }
        let pairs = indep.independent_pairs();
        for p in 0..n {
            for q in p + 1..n {
                prop_assert_eq!(
                    pairs.contains(&(p, q)),
                    indep.are_independent(p, q)
                );
            }
        }
    }

    /// Statically independent processes really commute: from a random
    /// reachable mid-execution state, executing `p` then `q` and `q`
    /// then `p` yields identical memory contents, local states and
    /// decisions — the semantic fact POR's pruning rests on, here
    /// checked on random systems and random states rather than at the
    /// engine's sampled nodes.
    #[test]
    fn statically_independent_steps_commute_on_random_states(
        cells in 2usize..5,
        site_seeds in proptest::collection::vec(any::<u16>(), 1..5),
        n in 2usize..4,
        schedule in proptest::collection::vec(any::<u16>(), 0..10),
    ) {
        let mut mem = Memory::new();
        let addrs: Vec<Addr> =
            (0..cells).map(|_| mem.alloc_register(Value::Bottom)).collect();
        let mut programs: Vec<Box<dyn Program>> = (0..n)
            .map(|p| {
                Box::new(Toucher {
                    sites: site_seeds
                        .iter()
                        .enumerate()
                        .map(|(i, &pick)| {
                            (
                                addrs[((pick >> 1) as usize + p * (i + 1)) % cells],
                                pick & 1 == 0,
                            )
                        })
                        .collect(),
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        let fp = rc_runtime::analyze_system(
            &mem,
            &programs,
            true,
            rc_runtime::AnalysisBudget::default(),
        )
        .expect("bounded system");
        let indep = rc_runtime::StaticIndependence::from_footprint(&fp);
        // Drive to a random reachable state (steps only; crashes reset
        // local state, which only makes the reached states *more*
        // ordinary).
        let mut decided = vec![false; n];
        for &s in &schedule {
            let p = s as usize % n;
            if !decided[p] {
                if let Step::Decided(_) = programs[p].step(&mut mem) {
                    decided[p] = true;
                }
            }
        }
        let run_order = |first: usize, second: usize| {
            let mut m = mem.clone();
            let mut progs: Vec<Box<dyn Program>> =
                programs.iter().map(|p| p.boxed_clone()).collect();
            let mut decisions: Vec<(usize, Value)> = Vec::new();
            for &p in &[first, second] {
                if let Step::Decided(v) = progs[p].step(&mut m) {
                    decisions.push((p, v));
                }
            }
            decisions.sort_by_key(|&(p, _)| p);
            (
                m.state_key(),
                progs.iter().map(|pr| pr.state_key()).collect::<Vec<_>>(),
                decisions,
            )
        };
        for p in 0..n {
            for q in p + 1..n {
                if !indep.are_independent(p, q) || decided[p] || decided[q] {
                    continue;
                }
                // An independent pair must commute in both orders.
                prop_assert_eq!(run_order(p, q), run_order(q, p));
            }
        }
    }

    /// Memory state keys change exactly when contents change.
    #[test]
    fn state_key_tracks_contents(values in proptest::collection::vec(0i64..50, 1..8)) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let mut last = mem.state_key();
        for v in values {
            let before = mem.read_register(addr);
            mem.write_register(addr, Value::Int(v));
            let now = mem.state_key();
            if before == Value::Int(v) {
                prop_assert_eq!(&now, &last);
            } else {
                prop_assert_ne!(&now, &last);
            }
            last = now;
        }
    }
}

// The tiered-storage codec properties: the bit-packed key form and the
// parent-delta encoding are exact (lossless and injective) and the
// Bloom prefilter is deterministic — the foundations the storage tiers'
// exactness argument rests on (see DESIGN §3).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `unpack ∘ pack` is the identity against the flat `Vec<u32>`
    /// reference, the accounted length matches the real encoding, and
    /// packing is injective (varints form a prefix code, so distinct
    /// keys — even of different lengths — pack to distinct bytes).
    #[test]
    fn packed_keys_round_trip_against_the_flat_reference(
        a in proptest::collection::vec(any::<u32>(), 0..24),
        b in proptest::collection::vec(any::<u32>(), 0..24),
    ) {
        let packed = rc_runtime::pack_key(&a);
        prop_assert_eq!(packed.len(), rc_runtime::packed_key_len(&a));
        prop_assert_eq!(rc_runtime::unpack_key(&packed), a.clone());
        prop_assert_eq!(a == b, packed == rc_runtime::pack_key(&b));
    }

    /// `delta_decode(parent, delta_encode(parent, child)) == child` for
    /// every parent/child pair, including length changes in both
    /// directions (the witness log's key reconstruction depends on it).
    #[test]
    fn delta_encode_decode_is_the_identity(
        parent in proptest::collection::vec(0u32..5_000, 0..24),
        child in proptest::collection::vec(0u32..5_000, 0..24),
    ) {
        let delta = rc_runtime::delta_encode(&parent, &child);
        prop_assert_eq!(rc_runtime::delta_decode(&parent, &delta), child);
    }

    /// The packed table is observationally identical to a flat map:
    /// same `(id, was_new)` on every insert (ids in insertion order),
    /// same lookups — under every tier combination (filter, spill via a
    /// tiny threshold, both).
    #[test]
    fn packed_table_matches_the_flat_reference(
        keys in proptest::collection::vec(
            proptest::collection::vec(0u32..200, 1..8), 1..120),
        filter in any::<bool>(),
        spill in any::<bool>(),
    ) {
        let mut table = rc_runtime::PackedStateTable::new(filter, spill, 128);
        let mut reference: std::collections::HashMap<Vec<u32>, u32> =
            std::collections::HashMap::new();
        for key in &keys {
            let expect_id = match reference.get(key) {
                Some(&id) => (id, false),
                None => {
                    let id = u32::try_from(reference.len()).unwrap();
                    reference.insert(key.clone(), id);
                    (id, true)
                }
            };
            prop_assert_eq!(table.insert(key), expect_id);
        }
        for key in &keys {
            prop_assert_eq!(table.get(key), reference.get(key).copied());
        }
        prop_assert_eq!(table.len(), reference.len());
    }

    /// Prefilter determinism across shard counts: however the key set
    /// is partitioned into per-shard filters (1, 2, 4 or 8 shards,
    /// routed by key hash exactly like the engine), every inserted key
    /// answers "maybe" in its own shard — no false negatives, the
    /// half of the Bloom contract exactness rests on — and each
    /// filter's bit pattern is a pure function of its key set,
    /// independent of insertion order.
    #[test]
    fn prefilter_is_deterministic_across_shard_counts(
        keys in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 1..8), 1..80),
        seed in any::<u64>(),
    ) {
        for shards in [1usize, 2, 4, 8] {
            let mut filters: Vec<rc_runtime::KeyFilter> =
                (0..shards).map(|_| rc_runtime::KeyFilter::new(seed, 10)).collect();
            let route = |key: &[u32]| {
                (rc_runtime::hash_packed(&rc_runtime::pack_key(key)) % shards as u64) as usize
            };
            for key in &keys {
                filters[route(key)].insert_key(key);
            }
            for key in &keys {
                prop_assert!(filters[route(key)].maybe_contains_key(key), "{shards} shards");
            }
            // Order-independence: re-inserting the same shard's keys in
            // reverse produces the identical occupancy.
            let mut reversed: Vec<rc_runtime::KeyFilter> =
                (0..shards).map(|_| rc_runtime::KeyFilter::new(seed, 10)).collect();
            for key in keys.iter().rev() {
                reversed[route(key)].insert_key(key);
            }
            for (f, r) in filters.iter().zip(&reversed) {
                prop_assert_eq!(f.bits_set(), r.bits_set());
            }
        }
    }
}

/// An order-insensitive set scan over a scalarset family (the shape of
/// the Fig. 4 remodel): after announcing itself in its own family
/// member, any unread position may be read next; the fold sums the
/// observed values and decides the sum once every position is read.
#[derive(Clone, Debug)]
struct MaskScan {
    family: Vec<Addr>,
    own: Addr,
    mask: u64,
    sum: i64,
    wrote: bool,
}

impl MaskScan {
    fn full(&self) -> u64 {
        (1u64 << self.family.len()) - 1
    }
}

impl Program for MaskScan {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        let first = self.choices()[0];
        self.step_choice(mem, first)
    }
    fn choices(&self) -> Vec<usize> {
        if !self.wrote {
            return vec![0];
        }
        let open: Vec<usize> = (0..self.family.len())
            .filter(|k| self.mask & (1 << k) == 0)
            .collect();
        if open.is_empty() {
            vec![0]
        } else {
            open
        }
    }
    fn step_choice(&mut self, mem: &mut dyn MemOps, choice: usize) -> Step {
        if !self.wrote {
            mem.write_register(self.own, Value::Int(1));
            self.wrote = true;
            return Step::Running;
        }
        if self.mask == self.full() {
            return Step::Decided(Value::Int(self.sum));
        }
        if let Value::Int(x) = mem.read_register(self.family[choice]) {
            self.sum += x;
        }
        self.mask |= 1 << choice;
        if self.mask == self.full() {
            Step::Decided(Value::Int(self.sum))
        } else {
            Step::Running
        }
    }
    fn scalarset_pinned(&self) -> bool {
        self.wrote && self.mask != 0 && self.mask != self.full()
    }
    fn on_crash(&mut self) {
        self.mask = 0;
        self.sum = 0;
        self.wrote = false;
    }
    fn state_key(&self) -> Value {
        Value::pair(
            Value::Int(self.mask as i64),
            Value::pair(Value::Int(self.sum), Value::Int(i64::from(self.wrote))),
        )
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn rebind(&mut self, map: &Rebinding) {
        self.own = map.lookup(self.own);
    }
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        let mut cells = self.family.clone();
        cells.push(self.own);
        Some(cells)
    }
}

/// Builds an `n`-process mask-scan system with the process-to-member
/// assignment relabeled by `perm`: process `p`'s family member (and
/// slot-`p` entry of the declared family) is the `perm[p]`-th allocated
/// register. The identity permutation gives the canonical layout; any
/// other `perm` gives an isomorphic relabeling of the same system.
fn mask_scan_system(
    n: usize,
    init: i64,
    perm: &[usize],
) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
    let mut mem = Memory::new();
    let registers: Vec<Addr> = (0..n)
        .map(|_| mem.alloc_register(Value::Int(init)))
        .collect();
    let family: Vec<Addr> = perm.iter().map(|&k| registers[k]).collect();
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|pid| {
            Box::new(MaskScan {
                family: family.clone(),
                own: family[pid],
                mask: 0,
                sum: 0,
                wrote: false,
            }) as Box<dyn Program>
        })
        .collect();
    let spec = SymmetrySpec::full(n).with_scalarset(family);
    (mem, programs, spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scalarset certifier is deterministic: two runs over the same
    /// system produce identical reports, counter for counter and
    /// message for message — the `tables lint` CI verdict cannot flap.
    #[test]
    fn scalarset_certifier_is_deterministic(n in 2usize..5, init in 0i64..3) {
        let identity: Vec<usize> = (0..n).collect();
        let (mem, programs, spec) = mask_scan_system(n, init, &identity);
        let a = rc_runtime::lint_scalarset(
            &mem, &programs, &spec, rc_runtime::AnalysisBudget::default());
        let b = rc_runtime::lint_scalarset(
            &mem, &programs, &spec, rc_runtime::AnalysisBudget::default());
        prop_assert!(a.is_certified(), "errors: {:?}", a.errors);
        prop_assert_eq!(a.errors, b.errors);
        prop_assert_eq!(a.warnings, b.warnings);
        prop_assert_eq!(a.families, b.families);
        prop_assert_eq!(a.transpositions, b.transpositions);
        prop_assert_eq!(a.graph_matches, b.graph_matches);
        prop_assert_eq!(a.exchange_states, b.exchange_states);
        prop_assert_eq!(a.spot_reexecutions, b.spot_reexecutions);
    }

    /// The certificate is equivariant under orbit permutations: a
    /// relabeled system — processes and their family members permuted
    /// together — certifies with identical counters. The verdict
    /// depends on the set structure of the scan, not on which slot
    /// holds which member.
    #[test]
    fn scalarset_certificate_is_equivariant_under_orbit_permutations(
        n in 2usize..5,
        init in 0i64..3,
        swaps in proptest::collection::vec(any::<u64>(), 0..5),
    ) {
        let identity: Vec<usize> = (0..n).collect();
        let mut perm = identity.clone();
        for &s in &swaps {
            perm.swap((s as usize) % n, ((s >> 16) as usize) % n);
        }
        let (mem, programs, spec) = mask_scan_system(n, init, &identity);
        let (pmem, pprograms, pspec) = mask_scan_system(n, init, &perm);
        let a = rc_runtime::lint_scalarset(
            &mem, &programs, &spec, rc_runtime::AnalysisBudget::default());
        let b = rc_runtime::lint_scalarset(
            &pmem, &pprograms, &pspec, rc_runtime::AnalysisBudget::default());
        prop_assert!(a.is_certified(), "errors: {:?}", a.errors);
        prop_assert!(b.is_certified(), "errors: {:?}", b.errors);
        prop_assert_eq!(a.families, b.families);
        prop_assert_eq!(a.transpositions, b.transpositions);
        prop_assert_eq!(a.graph_matches, b.graph_matches);
        prop_assert_eq!(a.exchange_states, b.exchange_states);
        prop_assert_eq!(a.warnings.len(), b.warnings.len());
    }
}
