//! Property tests for the simulation substrate itself.

use proptest::prelude::*;
use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, RoundRobin};
use rc_runtime::{explore, run, ExploreConfig, MemOps, Memory, Program, RunOptions, Step};
use rc_spec::Value;

/// A little test program: performs `work` register writes, then decides
/// its input.
#[derive(Clone, Debug)]
struct Worker {
    scratch: rc_runtime::Addr,
    input: Value,
    work: u8,
    pc: u8,
}

impl Program for Worker {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        if self.pc < self.work {
            mem.write_register(self.scratch, Value::Int(i64::from(self.pc)));
            self.pc += 1;
            Step::Running
        } else {
            Step::Decided(self.input.clone())
        }
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn system(n: usize, work: u8, same_input: bool) -> (Memory, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    let scratch = mem.alloc_register(Value::Bottom);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|i| {
            Box::new(Worker {
                scratch,
                input: Value::Int(if same_input { 7 } else { i as i64 }),
                work,
                pc: 0,
            }) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The random scheduler is fully deterministic in its seed: identical
    /// traces, step counts and outputs.
    #[test]
    fn random_scheduler_is_deterministic(
        seed in any::<u64>(),
        n in 1usize..5,
        work in 0u8..5,
    ) {
        let config = RandomSchedulerConfig {
            seed,
            crash_prob: 0.2,
            max_crashes: 3,
            simultaneous: false,
            crash_after_decide: true,
        };
        let run_once = || {
            let (mut mem, mut programs) = system(n, work, false);
            let mut sched = RandomScheduler::new(config);
            run(&mut mem, &mut programs, &mut sched, RunOptions::default())
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.crashes, b.crashes);
    }

    /// Every decision in the trace appears in the outputs and vice versa.
    #[test]
    fn trace_decisions_match_outputs(
        seed in any::<u64>(),
        n in 1usize..5,
        work in 0u8..4,
    ) {
        let (mut mem, mut programs) = system(n, work, false);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.15,
            max_crashes: 2,
            simultaneous: false,
            crash_after_decide: true,
        });
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        let mut from_trace: Vec<Vec<Value>> = vec![Vec::new(); n];
        for (pid, v) in exec.trace.decisions() {
            from_trace[pid].push(v);
        }
        prop_assert_eq!(from_trace, exec.outputs);
    }

    /// Crash-free round-robin executes exactly (work + 1) steps per
    /// process.
    #[test]
    fn round_robin_step_count(n in 1usize..6, work in 0u8..6) {
        let (mut mem, mut programs) = system(n, work, true);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        prop_assert!(exec.all_decided);
        prop_assert_eq!(exec.steps, n * (usize::from(work) + 1));
        prop_assert_eq!(exec.crashes, 0);
    }

    /// The model checker verifies agreeing systems and refutes
    /// disagreeing ones, for every crash budget.
    #[test]
    fn explorer_verdicts(
        work in 0u8..3,
        budget in 0usize..3,
        same_input in any::<bool>(),
    ) {
        let outcome = explore(
            &|| system(2, work, same_input),
            &ExploreConfig {
                crash_budget: budget,
                inputs: None,
                ..ExploreConfig::default()
            },
        );
        if same_input {
            prop_assert!(outcome.is_verified(), "{outcome:?}");
        } else {
            prop_assert!(outcome.is_violation(), "{outcome:?}");
        }
    }

    /// Memory state keys change exactly when contents change.
    #[test]
    fn state_key_tracks_contents(values in proptest::collection::vec(0i64..50, 1..8)) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let mut last = mem.state_key();
        for v in values {
            let before = mem.read_register(addr);
            mem.write_register(addr, Value::Int(v));
            let now = mem.state_key();
            if before == Value::Int(v) {
                prop_assert_eq!(&now, &last);
            } else {
                prop_assert_ne!(&now, &last);
            }
            last = now;
        }
    }
}
