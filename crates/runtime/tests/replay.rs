//! Record–replay: a random execution's trace, replayed through the
//! scripted scheduler against a fresh system, reproduces the execution
//! exactly. This is the property that makes every randomized finding in
//! the experiment suite reproducible from its seed or its trace.

use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, ScriptedScheduler};
use rc_runtime::{run, CrashModel, MemOps, Memory, Program, RunOptions, Step};
use rc_spec::types::ConsensusObject;
use rc_spec::{Operation, Value};
use std::sync::Arc;

#[derive(Clone, Debug)]
struct Propose {
    obj: rc_runtime::Addr,
    input: i64,
    pc: u8,
}

impl Program for Propose {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        if self.pc == 0 {
            self.pc = 1;
            let decided = mem.apply(self.obj, &Operation::new("propose", Value::Int(self.input)));
            Step::Decided(decided)
        } else {
            Step::Decided(mem.read_object(self.obj))
        }
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn state_key(&self) -> Value {
        Value::Int(i64::from(self.pc))
    }
    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn system(n: usize) -> (Memory, Vec<Box<dyn Program>>) {
    let mut mem = Memory::new();
    let obj = mem.alloc_object(Arc::new(ConsensusObject::new(8)), Value::Bottom);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|i| {
            Box::new(Propose {
                obj,
                input: i as i64,
                pc: 0,
            }) as Box<dyn Program>
        })
        .collect();
    (mem, programs)
}

#[test]
fn traces_replay_exactly() {
    for seed in 0..50u64 {
        let (mut mem, mut programs) = system(4);
        let mut sched = RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: 0.25,
            crash: if seed % 2 == 0 {
                CrashModel::simultaneous(4)
            } else {
                CrashModel::independent(4)
            }
            .after_decide(true),
        });
        let original = run(&mut mem, &mut programs, &mut sched, RunOptions::default());

        // Replay the recorded schedule against a fresh system.
        let (mut mem2, mut programs2) = system(4);
        let mut replayer = ScriptedScheduler::new(original.trace.to_actions());
        let replayed = run(
            &mut mem2,
            &mut programs2,
            &mut replayer,
            RunOptions::default(),
        );

        assert_eq!(original.trace, replayed.trace, "seed {seed}");
        assert_eq!(original.outputs, replayed.outputs, "seed {seed}");
        assert_eq!(original.steps, replayed.steps, "seed {seed}");
        assert_eq!(original.crashes, replayed.crashes, "seed {seed}");
        assert_eq!(mem.state_key(), mem2.state_key(), "seed {seed}");
    }
}
