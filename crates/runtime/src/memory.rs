//! The non-volatile shared memory.

use rc_spec::{ObjectType, Operation, TypeHandle, Value};
use std::fmt;

/// Address of a shared-memory cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub(crate) usize);

impl Addr {
    /// The cell index behind the address (also its slot in the model
    /// checker's flat state key).
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// One shared-memory cell: an atomic read/write register or an atomic
/// object of some `rc-spec` type.
#[derive(Clone, Debug)]
pub enum Cell {
    /// An atomic register holding a [`Value`].
    Register(Value),
    /// An atomic object: a type handle plus its current state.
    Object {
        /// The sequential specification governing this object.
        ty: TypeHandle,
        /// The object's current state.
        state: Value,
    },
}

/// The shared-memory operations available to a [`Program`](crate::Program).
///
/// Both the deterministic simulator ([`Memory`]) and the real-thread
/// executor ([`threaded::SharedMemory`](crate::threaded::SharedMemory))
/// implement this trait, so the same algorithm state machines run on
/// either substrate. Every method is one **atomic** access.
///
/// # Panics
///
/// All methods panic on a type-confused access (reading an object cell as
/// a register, applying an operation the type rejects, or an out-of-range
/// address); these are programmer errors in algorithm code, never
/// run-time conditions of the simulated system.
pub trait MemOps {
    /// Atomically reads a register.
    fn read_register(&mut self, addr: Addr) -> Value;
    /// Atomically writes a register.
    fn write_register(&mut self, addr: Addr, value: Value);
    /// Atomically reads the entire state of a *readable* object
    /// (the `Read` operation of the paper's readable types).
    fn read_object(&mut self, addr: Addr) -> Value;
    /// Atomically applies an update operation to an object, returning the
    /// operation's response.
    fn apply(&mut self, addr: Addr, op: &Operation) -> Value;
}

/// The non-volatile shared memory of the simulator.
///
/// Crashes never touch this structure — that is precisely the paper's
/// non-volatile-memory assumption. (The executor resets *program* state on
/// a crash and leaves the `Memory` alone.)
#[derive(Clone, Debug, Default)]
pub struct Memory {
    cells: Vec<Cell>,
    accesses: usize,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Allocates a register initialized to `init` (the paper's registers
    /// start at ⊥; pass [`Value::Bottom`]).
    pub fn alloc_register(&mut self, init: Value) -> Addr {
        self.cells.push(Cell::Register(init));
        Addr(self.cells.len() - 1)
    }

    /// Allocates an object of type `ty` initialized to state `q0`.
    ///
    /// # Panics
    ///
    /// Panics if `q0` is not a valid state of `ty` — i.e. if **any**
    /// operation of the type rejects it
    /// ([`ObjectType::validate_state`]). (An earlier version probed only
    /// the first operation, so a `q0` rejected by every *other* operation
    /// slipped through and the type confusion surfaced much later, deep
    /// inside a search.)
    pub fn alloc_object(&mut self, ty: TypeHandle, q0: Value) -> Addr {
        if let Err(e) = ty.validate_state(&q0) {
            panic!("initial state {q0} rejected by type {}: {e}", ty.name());
        }
        self.cells.push(Cell::Object { ty, state: q0 });
        Addr(self.cells.len() - 1)
    }

    /// Number of allocated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total number of shared-memory accesses performed so far.
    pub fn access_count(&self) -> usize {
        self.accesses
    }

    /// A structural snapshot of every cell's current value/state — used
    /// by valency analyses and tests for exact state comparison. (The
    /// model checker does not use this: it converts the memory into an
    /// internal copy-on-write form once and interns cell values
    /// directly.)
    pub fn state_key(&self) -> Vec<Value> {
        self.cells
            .iter()
            .map(|c| match c {
                Cell::Register(v) => v.clone(),
                Cell::Object { state, .. } => state.clone(),
            })
            .collect()
    }

    /// Appends one interned id per cell to `out` — the hash-consed form
    /// of [`state_key`](Self::state_key): nothing is cloned for
    /// already-seen cell contents, and the ids are equal iff the
    /// structural snapshots are. This is the reference implementation of
    /// the flattening the model checker applies to its internal
    /// copy-on-write memory; the key-equivalence property tests build
    /// engine-shaped keys with it.
    pub fn intern_state_key(
        &self,
        interner: &mut crate::intern::ValueInterner,
        out: &mut Vec<u32>,
    ) {
        out.reserve(self.cells.len());
        for c in &self.cells {
            out.push(interner.intern(match c {
                Cell::Register(v) => v,
                Cell::Object { state, .. } => state,
            }));
        }
    }

    /// Clones a whole cell (type handle included); used by the threaded
    /// executor to build its lock-per-cell
    /// [`SharedMemory`](crate::threaded::SharedMemory) from a simulator
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn peek_cell(&self, addr: Addr) -> Cell {
        self.cells[addr.0].clone()
    }

    /// Direct (non-atomic, inspection-only) view of a cell's current
    /// content; used by trace printers and tests.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn peek(&self, addr: Addr) -> Value {
        match &self.cells[addr.0] {
            Cell::Register(v) => v.clone(),
            Cell::Object { state, .. } => state.clone(),
        }
    }

    fn cell_mut(&mut self, addr: Addr) -> &mut Cell {
        self.accesses += 1;
        &mut self.cells[addr.0]
    }
}

impl MemOps for Memory {
    fn read_register(&mut self, addr: Addr) -> Value {
        match self.cell_mut(addr) {
            Cell::Register(v) => v.clone(),
            Cell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
    }

    fn write_register(&mut self, addr: Addr, value: Value) {
        match self.cell_mut(addr) {
            Cell::Register(v) => *v = value,
            Cell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
    }

    fn read_object(&mut self, addr: Addr) -> Value {
        match self.cell_mut(addr) {
            Cell::Object { ty, state } => {
                assert!(
                    ty.is_readable(),
                    "type {} is not readable; Read is not available",
                    ty.name()
                );
                state.clone()
            }
            Cell::Register(_) => panic!("{addr} is a register, not an object"),
        }
    }

    fn apply(&mut self, addr: Addr, op: &Operation) -> Value {
        match self.cell_mut(addr) {
            Cell::Object { ty, state } => {
                let t = ty.apply(state, op);
                *state = t.next;
                t.response
            }
            Cell::Register(_) => panic!("{addr} is a register, not an object"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_spec::types::{Stack, TestAndSet};
    use std::sync::Arc;

    #[test]
    fn register_round_trip() {
        let mut mem = Memory::new();
        let a = mem.alloc_register(Value::Bottom);
        assert_eq!(mem.read_register(a), Value::Bottom);
        mem.write_register(a, Value::Int(3));
        assert_eq!(mem.read_register(a), Value::Int(3));
        assert_eq!(mem.access_count(), 3);
        assert_eq!(mem.len(), 1);
        assert!(!mem.is_empty());
    }

    #[test]
    fn object_apply_and_read() {
        let mut mem = Memory::new();
        let tas = mem.alloc_object(Arc::new(TestAndSet::new()), Value::Bool(false));
        assert_eq!(mem.read_object(tas), Value::Bool(false));
        assert_eq!(
            mem.apply(tas, &Operation::nullary("tas")),
            Value::Bool(false)
        );
        assert_eq!(mem.read_object(tas), Value::Bool(true));
    }

    #[test]
    fn reading_non_readable_object_panics() {
        let mut mem = Memory::new();
        let stack = mem.alloc_object(Arc::new(Stack::new(3, 2)), Value::empty_list());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mem.read_object(stack)));
        assert!(result.is_err(), "the classic stack has no Read operation");
    }

    #[test]
    fn state_key_reflects_contents() {
        let mut mem = Memory::new();
        let a = mem.alloc_register(Value::Int(1));
        let _tas = mem.alloc_object(Arc::new(TestAndSet::new()), Value::Bool(false));
        let key1 = mem.state_key();
        mem.write_register(a, Value::Int(2));
        let key2 = mem.state_key();
        assert_ne!(key1, key2);
        assert_eq!(key2[0], Value::Int(2));
        assert_eq!(mem.peek(a), Value::Int(2));
    }

    #[test]
    fn type_confusion_panics() {
        let mut mem = Memory::new();
        let r = mem.alloc_register(Value::Bottom);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mem.read_object(r)));
        assert!(result.is_err());
    }

    #[test]
    fn invalid_initial_state_panics() {
        let mut mem = Memory::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mem.alloc_object(Arc::new(TestAndSet::new()), Value::Int(7))
        }));
        assert!(result.is_err());
    }

    /// A type whose *first* operation accepts any state but whose second
    /// accepts only booleans — the shape that slipped through when
    /// allocation probed only the first operation.
    #[derive(Debug)]
    struct LenientFirstOp;

    impl rc_spec::ObjectType for LenientFirstOp {
        fn name(&self) -> String {
            "lenient-first-op".into()
        }
        fn operations(&self) -> Vec<Operation> {
            vec![Operation::nullary("reset"), Operation::nullary("flip")]
        }
        fn initial_states(&self) -> Vec<Value> {
            vec![Value::Bool(false), Value::Bool(true)]
        }
        fn try_apply(
            &self,
            state: &Value,
            op: &Operation,
        ) -> Result<rc_spec::Transition, rc_spec::SpecError> {
            match op.name.as_str() {
                // `reset` ignores the current state entirely.
                "reset" => Ok(rc_spec::Transition::new(Value::Bool(false), Value::Unit)),
                "flip" => match state {
                    Value::Bool(b) => Ok(rc_spec::Transition::new(Value::Bool(!b), Value::Unit)),
                    _ => Err(rc_spec::SpecError::InvalidState {
                        type_name: self.name(),
                        state: state.clone(),
                    }),
                },
                _ => Err(rc_spec::SpecError::UnknownOperation {
                    type_name: self.name(),
                    op: op.clone(),
                }),
            }
        }
    }

    /// Regression: a `q0` accepted by the first operation but rejected
    /// by a later one must be refused at allocation time (validation now
    /// goes through [`rc_spec::ObjectType::validate_state`], which
    /// checks every operation).
    #[test]
    fn alloc_object_validates_against_all_operations() {
        let mut mem = Memory::new();
        // Valid states still allocate.
        let addr = mem.alloc_object(Arc::new(LenientFirstOp), Value::Bool(false));
        assert_eq!(mem.peek(addr), Value::Bool(false));
        // `reset` (the first op) would accept Int(3); `flip` rejects it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Memory::new().alloc_object(Arc::new(LenientFirstOp), Value::Int(3))
        }));
        let message = *result
            .expect_err("invalid q0 must be rejected")
            .downcast::<String>()
            .expect("panic payload is a String");
        assert!(
            message.contains("lenient-first-op") && message.contains("3"),
            "panic must name the type and state: {message}"
        );
    }
}
