//! Execution traces: a replayable record of scheduler decisions.

use crate::program::Pid;
use rc_spec::Value;
use std::fmt;

/// One event of an execution, in schedule order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Process `pid` executed one step.
    Stepped(Pid),
    /// Process `pid` crashed (independent-crash model); its volatile state
    /// was wiped, shared memory untouched.
    Crashed(Pid),
    /// All processes crashed simultaneously (simultaneous-crash model).
    CrashedAll,
    /// Process `pid`'s current run decided `value`.
    Decided(Pid, Value),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Stepped(p) => write!(f, "p{} steps", p + 1),
            TraceEvent::Crashed(p) => write!(f, "p{} CRASHES", p + 1),
            TraceEvent::CrashedAll => write!(f, "ALL processes CRASH"),
            TraceEvent::Decided(p, v) => write!(f, "p{} decides {v}", p + 1),
        }
    }
}

/// An ordered list of [`TraceEvent`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of crash events (of either kind).
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Crashed(_) | TraceEvent::CrashedAll))
            .count()
    }

    /// All decision events, in order.
    pub fn decisions(&self) -> Vec<(Pid, Value)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Decided(p, v) => Some((*p, v.clone())),
                _ => None,
            })
            .collect()
    }

    /// Converts the trace back into the scheduler actions that produced it
    /// (decision events carry no scheduling choice and are skipped). A
    /// [`ScriptedScheduler`](crate::sched::ScriptedScheduler) replaying
    /// these actions against a fresh copy of the same system reproduces
    /// the execution exactly — the simulator is deterministic given the
    /// schedule.
    pub fn to_actions(&self) -> Vec<crate::sched::Action> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Stepped(p) => Some(crate::sched::Action::Step(*p)),
                TraceEvent::Crashed(p) => Some(crate::sched::Action::Crash(*p)),
                TraceEvent::CrashedAll => Some(crate::sched::Action::CrashAll),
                TraceEvent::Decided(..) => None,
            })
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "{i:>4}. {e}")?;
        }
        Ok(())
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(TraceEvent::Stepped(0));
        t.push(TraceEvent::Crashed(0));
        t.push(TraceEvent::Stepped(1));
        t.push(TraceEvent::Decided(1, Value::Int(5)));
        t.push(TraceEvent::CrashedAll);
        assert_eq!(t.len(), 5);
        assert_eq!(t.crash_count(), 2);
        assert_eq!(t.decisions(), vec![(1, Value::Int(5))]);
    }

    #[test]
    fn display_is_one_indexed_like_the_paper() {
        let t: Trace = [
            TraceEvent::Stepped(0),
            TraceEvent::Decided(0, Value::Int(1)),
        ]
        .into_iter()
        .collect();
        let s = t.to_string();
        assert!(s.contains("p1 steps"));
        assert!(s.contains("p1 decides 1"));
    }
}
