//! Tiered, bit-packed state storage for the exhaustive checker.
//!
//! The visited set is the model checker's scaling wall: one flat
//! `Box<[u32]>` per state (plus `FxHashMap` bucket overhead) caps exact
//! verification at whatever fits in RAM. This module re-architects that
//! storage as **tiers**, each exact, each opt-in via
//! [`StorageTier`](crate::StorageTier):
//!
//! * **Packed keys** — [`pack_key`] encodes each `u32` key slot as a
//!   canonical LEB128-style varint. Interned value ids are dense and
//!   small (the interner hands them out from 0 in first-use order), so
//!   most slots pack into 1–2 bytes instead of 4. The encoding is a pure
//!   function of the slot values — *never* of the interner's current
//!   size — so a key packs identically whenever it is built and packed
//!   keys compare equal iff the original keys do. (A width table derived
//!   from the interner's live id range would be narrower still, but two
//!   probes of the same state at different interner sizes would then
//!   disagree byte-for-byte and dedup would no longer be exact; the
//!   varint form keeps the per-slot width *self-describing*.)
//! * **[`PackedStateTable`]** — an arena of packed keys plus an
//!   8-bytes-per-slot, hash-tagged open-addressing index (kept at most
//!   half full; the tag screens non-matching slots without touching the
//!   arena), replacing the one-allocation-per-state `FxHashMap`. Entry
//!   ids are handed out in insertion order, exactly like `StateTable`,
//!   so they double as node indices.
//! * **[`KeyFilter`]** — a seeded, deterministic Bloom prefilter in
//!   front of the exact probes. A *miss* ("definitely never inserted")
//!   short-circuits the probe; a *maybe* *always* falls through to the
//!   exact tier. Verdicts therefore never depend on filter behaviour —
//!   the filter can only skip work that would have found nothing, which
//!   is what keeps this exact rather than bitstate/supertrace-style
//!   approximate.
//! * **Spill runs** — when the resident arena crosses a threshold it is
//!   frozen into an immutable, hash-sorted *run* on disk (full packed
//!   key bytes included, so probes compare exactly — fingerprints alone
//!   would be approximate) and the resident tier restarts empty. The
//!   exact set is then bounded by disk, not RAM. Spill files live in the
//!   system temp directory and are unlinked at creation (the handle
//!   keeps them alive), so nothing persists past the search.
//! * **[`WitnessLog`]** — parent links compacted into an append-only
//!   log: one packed `u64` per node (parent, action code, deduplicated
//!   permutation id) plus the node's key [`delta_encode`]d against its
//!   parent's. Schedule reconstruction and key reconstruction
//!   ([`WitnessLog::key_of`]) need only the log — they survive the
//!   frontier dropping in-RAM nodes between levels and the visited set
//!   spilling to disk.
//!
//! Determinism: every structure here is a pure function of the insertion
//! sequence (seeded hashes, load-factor and spill thresholds checked in
//! insertion order), and the engines drive insertions in canonical
//! order at every thread count — so outcomes stay byte-identical across
//! runs, thread counts and storage tiers (asserted end to end in
//! `tests/explore_engine.rs`).

use crate::intern::{FxHashMap, FxHasher, StateTable};
use std::fs::File;
use std::hash::Hasher;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which storage backend the visited set uses. Every tier is **exact**
/// — identical verdicts, state counts, leaf counts and witnesses — the
/// tiers trade probe cost against resident memory. See the module docs
/// for the exactness argument.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageTier {
    /// The flat `FxHashMap<Box<[u32]>, u32>` table (the historical
    /// layout; one heap allocation per state). The opt-out from the
    /// packed default.
    Flat,
    /// Bit-packed keys in an arena behind an open-addressing index.
    /// The [`ExploreConfig`](crate::ExploreConfig) default — parity
    /// with `Flat` is asserted across the E16 tier × thread grid.
    #[default]
    Packed,
    /// [`Packed`](Self::Packed) plus a seeded Bloom prefilter in front
    /// of the exact probes.
    PackedFilter,
    /// [`Packed`](Self::Packed) plus the file-backed spill tier: the
    /// resident arena freezes into hash-sorted on-disk runs at a
    /// threshold, bounding the exact set by disk instead of RAM.
    PackedSpill,
}

impl StorageTier {
    /// Every tier, in the order the CI storage axis names them.
    pub const ALL: [StorageTier; 4] = [
        StorageTier::Flat,
        StorageTier::Packed,
        StorageTier::PackedFilter,
        StorageTier::PackedSpill,
    ];

    /// Parses the CI/CLI spelling: `flat`, `packed`, `packed+filter`,
    /// `packed+spill`.
    pub fn parse(s: &str) -> Option<StorageTier> {
        match s {
            "flat" => Some(StorageTier::Flat),
            "packed" => Some(StorageTier::Packed),
            "packed+filter" => Some(StorageTier::PackedFilter),
            "packed+spill" => Some(StorageTier::PackedSpill),
            _ => None,
        }
    }

    /// The CI/CLI spelling ([`parse`](Self::parse)'s inverse).
    pub fn as_str(self) -> &'static str {
        match self {
            StorageTier::Flat => "flat",
            StorageTier::Packed => "packed",
            StorageTier::PackedFilter => "packed+filter",
            StorageTier::PackedSpill => "packed+spill",
        }
    }

    fn filter(self) -> bool {
        matches!(self, StorageTier::PackedFilter)
    }

    fn spill(self) -> bool {
        matches!(self, StorageTier::PackedSpill)
    }
}

impl std::fmt::Display for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------
// Varint key packing
// ---------------------------------------------------------------------

/// Appends one `u32` as a canonical LEB128 varint (1–5 bytes, low 7
/// bits first). Canonical: exactly one encoding per value, so packed
/// keys compare equal iff the slot sequences do.
#[inline]
fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

#[inline]
fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Reads one varint starting at `pos`, returning `(value, next_pos)`.
///
/// # Panics
///
/// Panics on truncated or over-long input — packed keys are produced
/// only by [`pack_key`]/[`delta_encode`], so malformed bytes are a bug,
/// not an input condition.
#[inline]
fn read_varint(bytes: &[u8], mut pos: usize) -> (u32, usize) {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[pos];
        pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            assert!(value <= u64::from(u32::MAX), "over-long varint");
            return (value as u32, pos);
        }
        shift += 7;
        assert!(shift < 35, "over-long varint");
    }
}

/// Packs a flat `u32` state key into its canonical varint byte form,
/// appending to `out`. Injective on slot sequences of a fixed length
/// (the engines only ever compare keys of one layout), and
/// insert-time-invariant: the bytes depend on the slot values alone.
pub fn pack_key_into(key: &[u32], out: &mut Vec<u8>) {
    out.reserve(key.len() * 5);
    for &slot in key {
        push_varint(out, slot);
    }
}

/// [`pack_key_into`] into a fresh buffer.
pub fn pack_key(key: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    pack_key_into(key, &mut out);
    out
}

/// The exact byte length [`pack_key`] produces, without encoding. This
/// is the deterministic per-state cost model behind
/// [`ExploreConfig::max_bytes`](crate::ExploreConfig::max_bytes): a pure
/// function of the key, identical whichever storage tier actually holds
/// it.
pub fn packed_key_len(key: &[u32]) -> usize {
    key.iter().map(|&slot| varint_len(slot)).sum()
}

/// Decodes a [`pack_key`] buffer back to its `u32` slots.
///
/// # Panics
///
/// Panics if `bytes` is not a whole number of canonical varints.
pub fn unpack_key(bytes: &[u8]) -> Vec<u32> {
    let mut key = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (value, next) = read_varint(bytes, pos);
        key.push(value);
        pos = next;
    }
    key
}

// ---------------------------------------------------------------------
// Delta encoding against the parent key
// ---------------------------------------------------------------------

/// Encodes `child` as a patch list against `parent`: the child's length
/// followed by `(position-gap, value)` varint pairs for every slot that
/// differs (with `parent` conceptually zero-padded or truncated to the
/// child's length). The engines build child keys exactly this way on the
/// hot patch path — copy the parent, re-intern the few touched slots —
/// so the delta is naturally tiny: one dirty cell, one program key, the
/// raw bookkeeping words.
pub fn delta_encode(parent: &[u32], child: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    push_varint(&mut out, u32::try_from(child.len()).expect("key fits u32"));
    let mut last = 0usize;
    for (pos, &value) in child.iter().enumerate() {
        let base = parent.get(pos).copied().unwrap_or(0);
        if value != base {
            push_varint(&mut out, u32::try_from(pos - last).expect("gap fits u32"));
            push_varint(&mut out, value);
            last = pos + 1;
        }
    }
    out
}

/// Applies a [`delta_encode`] patch to `parent`, reproducing the child:
/// `delta_decode(p, &delta_encode(p, c)) == c` for every `p`, `c`
/// (property-tested in `tests/proptest_runtime.rs`).
pub fn delta_decode(parent: &[u32], delta: &[u8]) -> Vec<u32> {
    let (len, mut pos) = read_varint(delta, 0);
    let len = len as usize;
    let mut child: Vec<u32> = (0..len)
        .map(|i| parent.get(i).copied().unwrap_or(0))
        .collect();
    let mut at = 0usize;
    while pos < delta.len() {
        let (gap, next) = read_varint(delta, pos);
        let (value, next) = read_varint(delta, next);
        pos = next;
        at += gap as usize;
        child[at] = value;
        at += 1;
    }
    child
}

// ---------------------------------------------------------------------
// Seeded Bloom prefilter
// ---------------------------------------------------------------------

/// A seeded, deterministic Bloom filter over packed-key hashes: the
/// probabilistic prefilter of the tiered visited set.
///
/// Semantics: [`maybe_contains`](Self::maybe_contains) returning `false`
/// proves the key was never [`insert`](Self::insert)ed; `true` proves
/// nothing and the caller **must** fall through to the exact tier. The
/// filter is a pure function of `(seed, capacity, inserted set)` —
/// insertion order never matters — so identically-built filters answer
/// identically whatever the shard count or thread count
/// (property-tested in `tests/proptest_runtime.rs`).
#[derive(Clone, Debug)]
pub struct KeyFilter {
    bits: Vec<u64>,
    /// Bit-index mask; `bits.len() * 64` is a power of two.
    mask: u64,
    set: usize,
    seed: u64,
}

impl KeyFilter {
    /// Second mixing constant for the filter's two probe positions
    /// (64-bit golden ratio, as in `splitmix64`).
    const MIX: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Creates a filter with `2^log2_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `log2_bits < 6` (below one word) or `> 40` (128 GiB of
    /// filter is a configuration error, not a workload).
    pub fn new(seed: u64, log2_bits: u32) -> Self {
        assert!((6..=40).contains(&log2_bits), "unreasonable filter size");
        let words = 1usize << (log2_bits - 6);
        KeyFilter {
            bits: vec![0; words],
            mask: (1u64 << log2_bits) - 1,
            set: 0,
            seed,
        }
    }

    /// The two probe bit positions for a key hash: independent
    /// seeded mixes of the 64-bit hash, masked to the filter size.
    #[inline]
    fn probes(&self, hash: u64) -> (u64, u64) {
        let a = (hash ^ self.seed).wrapping_mul(Self::MIX);
        let b = a.rotate_right(32).wrapping_mul(Self::MIX) ^ hash;
        (a & self.mask, b & self.mask)
    }

    #[inline]
    fn bit(&self, idx: u64) -> bool {
        self.bits[(idx >> 6) as usize] & (1u64 << (idx & 63)) != 0
    }

    #[inline]
    fn set_bit(&mut self, idx: u64) {
        let word = &mut self.bits[(idx >> 6) as usize];
        let mask = 1u64 << (idx & 63);
        if *word & mask == 0 {
            *word |= mask;
            self.set += 1;
        }
    }

    /// Records a key hash (see [`hash_packed`]).
    pub fn insert(&mut self, hash: u64) {
        let (a, b) = self.probes(hash);
        self.set_bit(a);
        self.set_bit(b);
    }

    /// `false` = definitely never inserted; `true` = maybe (fall through
    /// to the exact tier).
    pub fn maybe_contains(&self, hash: u64) -> bool {
        let (a, b) = self.probes(hash);
        self.bit(a) && self.bit(b)
    }

    /// Convenience over a raw `u32` key: hash with [`hash_packed`]'s
    /// byte hash after packing. For the engines the hash is computed
    /// once and shared; tests use this form.
    pub fn insert_key(&mut self, key: &[u32]) {
        self.insert(hash_packed(&pack_key(key)));
    }

    /// [`maybe_contains`](Self::maybe_contains) over a raw key.
    pub fn maybe_contains_key(&self, key: &[u32]) -> bool {
        self.maybe_contains(hash_packed(&pack_key(key)))
    }

    /// Number of bits set (the occupancy surfaced in
    /// [`ExploreStats`](crate::ExploreStats)).
    pub fn bits_set(&self) -> usize {
        self.set
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.bits.len() * 64
    }

    /// Whether occupancy crossed the growth threshold (12.5%, keeping
    /// the false-positive rate a fraction of a percent). The table grows
    /// the filter by rebuilding from its retained keys — deterministic,
    /// because the threshold is checked after every insert in insertion
    /// order.
    pub fn should_grow(&self) -> bool {
        self.set * 8 > self.capacity_bits() && self.capacity_bits() < (1 << 40)
    }

    fn bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// The [`FxHasher`] hash of a packed key's bytes — the shared key hash
/// of the packed table, its index, the prefilter and the spill runs.
pub fn hash_packed(packed: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(packed);
    hasher.finish()
}

// ---------------------------------------------------------------------
// Spill runs (file-backed exact tier)
// ---------------------------------------------------------------------

/// Bytes per on-disk run record: `[hash u64][offset u64][len u32][id u32]`.
const RECORD: usize = 24;

/// Distinguishes this process's spill files across tables.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Creates an anonymous scratch file: created in the temp directory and
/// unlinked immediately, so the handle is its only reference and the
/// bytes vanish when the table drops.
fn scratch_file(label: &str) -> File {
    let n = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "rc-explore-spill-{}-{n}-{label}",
        std::process::id()
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("creating spill file {}: {e}", path.display()));
    std::fs::remove_file(&path)
        .unwrap_or_else(|e| panic!("unlinking spill file {}: {e}", path.display()));
    file
}

/// One frozen, immutable, hash-sorted batch of the exact tier on disk:
/// a records file (fixed-width, sorted by `(hash, key bytes)`) and a
/// keys file holding the full packed key bytes — probes binary-search
/// the records by hash, then compare the actual key bytes, so disk
/// residency never weakens exactness.
#[derive(Debug)]
struct SpillRun {
    records: File,
    keys: File,
    count: u64,
    min_hash: u64,
    max_hash: u64,
    /// In-RAM Bloom over this run's record hashes, built at freeze time
    /// (LSM-style, ~2 bytes per spilled key): a probe for a key the run
    /// does not hold costs no disk reads in the common case. Purely a
    /// cost screen — a maybe falls through to the exact binary search.
    bloom: KeyFilter,
}

impl SpillRun {
    fn record(&self, i: u64) -> (u64, u64, u32, u32) {
        let mut buf = [0u8; RECORD];
        self.records
            .read_at(&mut buf, i * RECORD as u64)
            .map(|n| assert_eq!(n, RECORD, "short spill record read"))
            .expect("reading spill record");
        (
            u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            u32::from_le_bytes(buf[20..24].try_into().expect("4 bytes")),
        )
    }

    /// Exact membership probe: the id of `packed` if this run holds it.
    fn get(&self, hash: u64, packed: &[u8]) -> Option<u32> {
        if self.count == 0
            || hash < self.min_hash
            || hash > self.max_hash
            || !self.bloom.maybe_contains(hash)
        {
            return None;
        }
        // First record with hash >= target.
        let (mut lo, mut hi) = (0u64, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.record(mid).0 < hash {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut key_buf = Vec::new();
        while lo < self.count {
            let (h, offset, len, id) = self.record(lo);
            if h != hash {
                return None;
            }
            if len as usize == packed.len() {
                key_buf.resize(len as usize, 0);
                self.keys
                    .read_at(&mut key_buf, offset)
                    .map(|n| assert_eq!(n, len as usize, "short spill key read"))
                    .expect("reading spill key");
                if key_buf == packed {
                    return Some(id);
                }
            }
            lo += 1;
        }
        None
    }

    /// Streams every record's hash (for deterministic filter rebuilds).
    fn for_each_hash(&self, mut f: impl FnMut(u64)) {
        const CHUNK: usize = 256;
        let mut buf = vec![0u8; CHUNK * RECORD];
        let mut at = 0u64;
        while at < self.count {
            let n = (self.count - at).min(CHUNK as u64) as usize;
            let slice = &mut buf[..n * RECORD];
            self.records
                .read_at(slice, at * RECORD as u64)
                .map(|read| assert_eq!(read, n * RECORD, "short spill scan"))
                .expect("scanning spill records");
            for i in 0..n {
                f(u64::from_le_bytes(
                    slice[i * RECORD..i * RECORD + 8]
                        .try_into()
                        .expect("8 bytes"),
                ));
            }
            at += n as u64;
        }
    }
}

// ---------------------------------------------------------------------
// The packed, tiered state table
// ---------------------------------------------------------------------

/// Packed entry metadata: arena offset in the low 40 bits, byte length
/// in the high 24.
#[inline]
fn meta_pack(offset: usize, len: usize) -> u64 {
    assert!(offset < 1 << 40, "arena offset exceeds 40 bits");
    assert!(len < 1 << 24, "packed key exceeds 24-bit length");
    offset as u64 | (len as u64) << 40
}

#[inline]
fn meta_unpack(meta: u64) -> (usize, usize) {
    ((meta & ((1 << 40) - 1)) as usize, (meta >> 40) as usize)
}

/// The bit-packed, arena-backed drop-in for `StateTable`: deduplicates
/// `&[u32]` state keys into dense insertion-order ids, holding the keys
/// as canonical varint bytes in one arena behind an open-addressing
/// index — with an optional Bloom prefilter and an optional file-backed
/// spill tier (see the module docs).
///
/// Identical observable behaviour to the flat table — same ids, same
/// `(id, was_new)` results for the same insertion sequence — at a
/// fraction of the resident bytes (property-tested against a reference
/// map in `tests/proptest_runtime.rs`).
#[derive(Debug)]
pub struct PackedStateTable {
    /// Packed key bytes of the resident entries, concatenated.
    arena: Vec<u8>,
    /// Resident entry metadata (arena offset + length), in insertion
    /// order; resident entry `i` has global id `resident_start + i`.
    meta: Vec<u64>,
    /// Open-addressing slots over the resident entries: `0` = empty,
    /// else the high 32 bits of the entry's key hash (a tag screening
    /// out almost every non-matching slot without touching the arena)
    /// over `resident position + 1`. Length is a power of two, kept at
    /// most half full — linear probing has no SIMD group scan to hide
    /// long runs behind, so probe chains are bought short with slots.
    index: Vec<u64>,
    /// Global id of the first resident entry (everything below lives in
    /// spill runs).
    resident_start: u32,
    /// Total entries across resident + spilled tiers.
    len: u32,
    filter: Option<KeyFilter>,
    spill: Option<Vec<SpillRun>>,
    /// Freeze the resident arena into a run when it crosses this.
    spill_threshold: usize,
    spilled_bytes: usize,
    peak_resident: usize,
    /// Reused packing buffer, so the per-insert hot path never
    /// allocates.
    scratch: Vec<u8>,
}

/// Index slot for resident position `pos` under `hash`: nonzero because
/// the low half is `pos + 1 ≥ 1`.
#[inline]
fn slot_pack(hash: u64, pos: usize) -> u64 {
    (hash & !0xffff_ffff) | (pos as u64 + 1)
}

impl PackedStateTable {
    /// Filter seed: fixed, so filter behaviour (and therefore probe
    /// *cost*, never outcomes) is reproducible across runs.
    const FILTER_SEED: u64 = 0xcafe_f00d_d15e_a5e5;
    const INITIAL_SLOTS: usize = 64;
    const INITIAL_FILTER_LOG2: u32 = 16;

    /// Creates a packed table: `filter`/`spill` switch the prefilter and
    /// the disk tier on, `spill_threshold` is the resident arena size
    /// that triggers a freeze (ignored without `spill`).
    pub fn new(filter: bool, spill: bool, spill_threshold: usize) -> Self {
        PackedStateTable {
            arena: Vec::new(),
            meta: Vec::new(),
            index: vec![0; Self::INITIAL_SLOTS],
            resident_start: 0,
            len: 0,
            filter: filter.then(|| KeyFilter::new(Self::FILTER_SEED, Self::INITIAL_FILTER_LOG2)),
            spill: spill.then(Vec::new),
            spill_threshold: spill_threshold.max(1),
            spilled_bytes: 0,
            peak_resident: 0,
            scratch: Vec::new(),
        }
    }

    fn packed_entry(&self, pos: usize) -> &[u8] {
        let (offset, len) = meta_unpack(self.meta[pos]);
        &self.arena[offset..offset + len]
    }

    /// Probes the resident index for `packed`: `Ok(global id)` on a hit,
    /// `Err(free slot)` on a miss. The arena is only compared on an
    /// index-tag match.
    fn probe_resident(&self, hash: u64, packed: &[u8]) -> Result<u32, usize> {
        let mask = self.index.len() - 1;
        let tag = hash & !0xffff_ffff;
        let mut slot = hash as usize & mask;
        loop {
            match self.index[slot] {
                0 => return Err(slot),
                s => {
                    let pos = (s as u32 - 1) as usize;
                    if s & !0xffff_ffff == tag && self.packed_entry(pos) == packed {
                        return Ok(self.resident_start + pos as u32);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn probe_spill(&self, hash: u64, packed: &[u8]) -> Option<u32> {
        self.spill
            .as_ref()?
            .iter()
            .find_map(|run| run.get(hash, packed))
    }

    /// Looks up `key` without inserting (exact across both tiers).
    pub fn get(&self, key: &[u32]) -> Option<u32> {
        let mut packed = Vec::new();
        pack_key_into(key, &mut packed);
        let hash = hash_packed(&packed);
        if let Some(filter) = &self.filter {
            if !filter.maybe_contains(hash) {
                return None;
            }
        }
        match self.probe_resident(hash, &packed) {
            Ok(id) => Some(id),
            Err(_) => self.probe_spill(hash, &packed),
        }
    }

    /// Inserts `key`, returning `(id, was_new)` with ids in insertion
    /// order — the exact `StateTable` contract.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct keys are inserted.
    pub fn insert(&mut self, key: &[u32]) -> (u32, bool) {
        let mut packed = std::mem::take(&mut self.scratch);
        packed.clear();
        pack_key_into(key, &mut packed);
        let hash = hash_packed(&packed);
        // A filter miss proves absence in *both* tiers (every insert
        // recorded its hash), so only the free index slot is looked up;
        // a maybe falls through to the exact probes.
        let filter_maybe = self
            .filter
            .as_ref()
            .map_or(true, |filter| filter.maybe_contains(hash));
        let slot = if filter_maybe {
            match self.probe_resident(hash, &packed) {
                Ok(id) => {
                    self.scratch = packed;
                    return (id, false);
                }
                Err(slot) => {
                    if let Some(id) = self.probe_spill(hash, &packed) {
                        self.scratch = packed;
                        return (id, false);
                    }
                    slot
                }
            }
        } else {
            self.probe_resident(hash, &packed)
                .expect_err("filter miss cannot be resident")
        };
        let id = self.len;
        assert!(id < u32::MAX, "state table overflow");
        self.len += 1;
        let offset = self.arena.len();
        self.arena.extend_from_slice(&packed);
        u32::try_from(self.meta.len() + 1).expect("resident entries fit u32");
        self.index[slot] = slot_pack(hash, self.meta.len());
        self.meta.push(meta_pack(offset, packed.len()));
        self.scratch = packed;
        if let Some(filter) = &mut self.filter {
            filter.insert(hash);
            if filter.should_grow() {
                self.grow_filter();
            }
        }
        if self.meta.len() * 2 >= self.index.len() {
            self.rehash(self.index.len() * 2);
        }
        self.peak_resident = self.peak_resident.max(self.resident_bytes());
        if self.spill.is_some() && self.arena.len() >= self.spill_threshold {
            self.freeze_run();
        }
        (id, true)
    }

    /// Number of distinct keys inserted (resident + spilled).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accounted resident bytes: arena + index slots + entry metadata +
    /// filter bits + the spill runs' in-RAM Blooms.
    pub fn resident_bytes(&self) -> usize {
        self.arena.len()
            + self.index.len() * 8
            + self.meta.len() * 8
            + self.filter.as_ref().map_or(0, KeyFilter::bytes)
            + self
                .spill
                .as_ref()
                .map_or(0, |runs| runs.iter().map(|r| r.bloom.bytes()).sum())
    }

    /// Peak accounted resident bytes over the table's lifetime,
    /// including the present (resident usage drops at every spill
    /// freeze, so the peak can exceed the final
    /// [`resident_bytes`](Self::resident_bytes) — never undershoot it).
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident.max(self.resident_bytes())
    }

    /// Total bytes written to spill runs.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes
    }

    /// Bits set in the prefilter (0 without one).
    pub fn filter_bits_set(&self) -> usize {
        self.filter.as_ref().map_or(0, KeyFilter::bits_set)
    }

    fn rehash(&mut self, slots: usize) {
        self.index = vec![0; slots];
        let mask = slots - 1;
        for pos in 0..self.meta.len() {
            let hash = hash_packed(self.packed_entry(pos));
            let mut slot = hash as usize & mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = slot_pack(hash, pos);
        }
    }

    /// Doubles the filter and rebuilds it from every retained key —
    /// resident entries re-hash from the arena, spilled entries stream
    /// their stored hashes from the run records. Deterministic: growth
    /// triggers at a fixed occupancy checked in insertion order.
    fn grow_filter(&mut self) {
        let filter = self.filter.as_ref().expect("growing an absent filter");
        let log2 = filter.capacity_bits().trailing_zeros() + 1;
        let mut grown = KeyFilter::new(filter.seed, log2);
        for pos in 0..self.meta.len() {
            grown.insert(hash_packed(self.packed_entry(pos)));
        }
        if let Some(runs) = &self.spill {
            for run in runs {
                run.for_each_hash(|hash| grown.insert(hash));
            }
        }
        self.filter = Some(grown);
    }

    /// Freezes the resident entries into one immutable hash-sorted
    /// on-disk run and restarts the resident tier empty.
    fn freeze_run(&mut self) {
        let hashes: Vec<u64> = (0..self.meta.len())
            .map(|pos| hash_packed(self.packed_entry(pos)))
            .collect();
        let mut order: Vec<u32> = (0..self.meta.len() as u32).collect();
        order.sort_by(|&a, &b| {
            hashes[a as usize].cmp(&hashes[b as usize]).then_with(|| {
                self.packed_entry(a as usize)
                    .cmp(self.packed_entry(b as usize))
            })
        });
        let bloom_log2 = (order.len().max(4) * 16)
            .next_power_of_two()
            .trailing_zeros()
            .clamp(6, 40);
        let mut bloom = KeyFilter::new(Self::FILTER_SEED, bloom_log2);
        let mut records = scratch_file("records");
        let mut keys = scratch_file("keys");
        let mut record_buf: Vec<u8> = Vec::with_capacity(order.len() * RECORD);
        let mut key_offset = 0u64;
        let (mut min_hash, mut max_hash) = (u64::MAX, 0u64);
        for &pos in &order {
            let packed = self.packed_entry(pos as usize);
            let hash = hashes[pos as usize];
            bloom.insert(hash);
            min_hash = min_hash.min(hash);
            max_hash = max_hash.max(hash);
            record_buf.extend_from_slice(&hash.to_le_bytes());
            record_buf.extend_from_slice(&key_offset.to_le_bytes());
            record_buf
                .extend_from_slice(&u32::try_from(packed.len()).expect("key len").to_le_bytes());
            record_buf.extend_from_slice(&(self.resident_start + pos).to_le_bytes());
            keys.write_all(packed).expect("writing spill keys");
            key_offset += packed.len() as u64;
        }
        records
            .write_all(&record_buf)
            .expect("writing spill records");
        self.spilled_bytes += record_buf.len() + key_offset as usize;
        self.spill
            .as_mut()
            .expect("freeze without spill tier")
            .push(SpillRun {
                records,
                keys,
                count: order.len() as u64,
                min_hash,
                max_hash,
                bloom,
            });
        self.arena.clear();
        self.meta.clear();
        self.index = vec![0; Self::INITIAL_SLOTS];
        self.resident_start = self.len;
    }
}

// ---------------------------------------------------------------------
// The visited-set backend switch
// ---------------------------------------------------------------------

/// One visited-set shard: the flat historical table or the packed tiered
/// one, behind the `get`/`insert`/`len` contract both satisfy
/// identically.
#[derive(Debug)]
pub(crate) enum VisitedTable {
    /// The flat `FxHashMap` table.
    Flat(StateTable),
    /// The packed arena table (optionally filtered / spilled).
    Packed(PackedStateTable),
}

impl VisitedTable {
    pub(crate) fn new(tier: StorageTier, spill_threshold: usize) -> Self {
        match tier {
            StorageTier::Flat => VisitedTable::Flat(StateTable::new()),
            tier => VisitedTable::Packed(PackedStateTable::new(
                tier.filter(),
                tier.spill(),
                spill_threshold,
            )),
        }
    }

    pub(crate) fn get(&self, key: &[u32]) -> Option<u32> {
        match self {
            VisitedTable::Flat(t) => t.get(key),
            VisitedTable::Packed(t) => t.get(key),
        }
    }

    pub(crate) fn insert(&mut self, key: &[u32]) -> (u32, bool) {
        match self {
            VisitedTable::Flat(t) => t.insert(key),
            VisitedTable::Packed(t) => t.insert(key),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            VisitedTable::Flat(t) => t.len(),
            VisitedTable::Packed(t) => t.len(),
        }
    }

    pub(crate) fn resident_bytes(&self) -> usize {
        match self {
            VisitedTable::Flat(t) => t.approx_bytes(),
            VisitedTable::Packed(t) => t.resident_bytes(),
        }
    }

    pub(crate) fn peak_resident_bytes(&self) -> usize {
        match self {
            VisitedTable::Flat(t) => t.approx_bytes(),
            VisitedTable::Packed(t) => t.peak_resident_bytes(),
        }
    }

    pub(crate) fn spilled_bytes(&self) -> usize {
        match self {
            VisitedTable::Flat(_) => 0,
            VisitedTable::Packed(t) => t.spilled_bytes(),
        }
    }

    pub(crate) fn filter_bits_set(&self) -> usize {
        match self {
            VisitedTable::Flat(_) => 0,
            VisitedTable::Packed(t) => t.filter_bits_set(),
        }
    }
}

// ---------------------------------------------------------------------
// The witness log
// ---------------------------------------------------------------------

/// Packed per-node link: parent in the low 32 bits, deduplicated
/// permutation id in the next 20, action code in the high 12.
#[inline]
fn link_pack(parent: u32, perm_id: u32, action: u16) -> u64 {
    assert!(perm_id < 1 << 20, "more than 2^20 distinct permutations");
    assert!(action < 1 << 12, "action code exceeds 12 bits");
    u64::from(parent) | u64::from(perm_id) << 32 | u64::from(action) << 52
}

#[inline]
fn link_unpack(link: u64) -> (u32, u32, u16) {
    (
        link as u32,
        (link >> 32) as u32 & ((1 << 20) - 1),
        (link >> 52) as u16,
    )
}

/// The append-only witness log: the frontier's compacted replacement for
/// one heap-allocated parent link per node.
///
/// Per accepted node it stores one packed `u64` (parent index, action
/// code, permutation id — permutations are interned in a side table, so
/// a canonicalization permutation is boxed once per *distinct*
/// permutation instead of once per node) plus the node's key
/// [`delta_encode`]d against its parent's key. Schedule reconstruction
/// ([`link`](Self::link) walks) and full key reconstruction
/// ([`key_of`](Self::key_of)) read only the log — both survive the BFS
/// engine dropping a level's in-RAM nodes and the visited set spilling
/// to disk.
///
/// Action codes are engine-defined (`u16`, `0` reserved for the root);
/// the log never interprets them.
#[derive(Debug, Default)]
pub struct WitnessLog {
    links: Vec<u64>,
    perms: Vec<Box<[u8]>>,
    perm_ids: FxHashMap<Box<[u8]>, u32>,
    deltas: Vec<u8>,
    /// Exclusive end offset of each node's delta in `deltas`.
    ends: Vec<u64>,
}

impl WitnessLog {
    /// Root sentinel parent (the root has no incoming edge).
    const NO_PARENT: u32 = u32::MAX;

    /// Creates an empty log.
    pub fn new() -> Self {
        WitnessLog::default()
    }

    /// Appends node `len()`'s edge: its parent (or `None` for the root),
    /// the engine's action code (`0` iff root), the canonicalization
    /// permutation (`None` = identity) and the parent → child key delta
    /// (the root deltas against the empty key).
    pub fn push(
        &mut self,
        parent: Option<u32>,
        action: u16,
        perm: Option<&[u8]>,
        parent_key: &[u32],
        key: &[u32],
    ) {
        debug_assert_eq!(parent.is_none(), action == 0, "code 0 is the root's");
        let perm_id = match perm {
            None => 0,
            Some(perm) => match self.perm_ids.get(perm) {
                Some(&id) => id,
                None => {
                    let id = u32::try_from(self.perms.len() + 1).expect("perm ids fit u32");
                    self.perms.push(Box::from(perm));
                    self.perm_ids.insert(Box::from(perm), id);
                    id
                }
            },
        };
        self.links.push(link_pack(
            parent.unwrap_or(Self::NO_PARENT),
            perm_id,
            action,
        ));
        self.deltas
            .extend_from_slice(&delta_encode(parent_key, key));
        self.ends.push(self.deltas.len() as u64);
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no node was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Node `idx`'s incoming edge: `(parent, action code, permutation)`,
    /// or `None` at the root.
    pub fn link(&self, idx: u32) -> Option<(u32, u16, Option<&[u8]>)> {
        let (parent, perm_id, action) = link_unpack(self.links[idx as usize]);
        if parent == Self::NO_PARENT {
            return None;
        }
        let perm = (perm_id != 0).then(|| &*self.perms[(perm_id - 1) as usize]);
        Some((parent, action, perm))
    }

    fn delta_of(&self, idx: u32) -> &[u8] {
        let end = self.ends[idx as usize] as usize;
        let start = if idx == 0 {
            0
        } else {
            self.ends[idx as usize - 1] as usize
        };
        &self.deltas[start..end]
    }

    /// Reconstructs node `idx`'s full key by replaying deltas root-down
    /// — no visited-set or frontier lookup involved (asserted equal to
    /// the engine-built keys in the runtime test suite).
    pub fn key_of(&self, idx: u32) -> Vec<u32> {
        let mut chain = vec![idx];
        let mut at = idx;
        while let Some((parent, _, _)) = self.link(at) {
            chain.push(parent);
            at = parent;
        }
        let mut key: Vec<u32> = Vec::new();
        for &node in chain.iter().rev() {
            key = delta_decode(&key, self.delta_of(node));
        }
        key
    }

    /// Accounted bytes held by the log (links + deltas + interned
    /// permutations).
    pub fn bytes(&self) -> usize {
        self.links.len() * 8
            + self.ends.len() * 8
            + self.deltas.len()
            + self.perms.iter().map(|p| p.len() + 16).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_across_widths() {
        for v in [
            0u32,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            0xfff_ffff,
            0x1000_0000,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "{v:#x}");
            let (back, used) = read_varint(&buf, 0);
            assert_eq!((back, used), (v, buf.len()), "{v:#x}");
        }
    }

    #[test]
    fn pack_unpack_round_trips_and_len_agrees() {
        let keys: [&[u32]; 4] = [
            &[],
            &[0, 0, 0],
            &[1, 127, 128, 300_000, u32::MAX],
            &[u32::MAX - 2, 0, 42],
        ];
        for key in keys {
            let packed = pack_key(key);
            assert_eq!(packed.len(), packed_key_len(key));
            assert_eq!(unpack_key(&packed), key);
        }
    }

    #[test]
    fn delta_round_trips_including_length_changes() {
        let cases: [(&[u32], &[u32]); 5] = [
            (&[], &[5, 0, 7]),
            (&[5, 0, 7], &[5, 0, 7]),
            (&[5, 0, 7], &[5, 9, 7]),
            (&[5, 0, 7], &[5, 0]),
            (&[1, 2], &[1, 2, 3, 4]),
        ];
        for (parent, child) in cases {
            let delta = delta_encode(parent, child);
            assert_eq!(
                delta_decode(parent, &delta),
                child,
                "{parent:?} -> {child:?}"
            );
        }
    }

    #[test]
    fn packed_table_matches_flat_semantics() {
        let mut packed = PackedStateTable::new(false, false, usize::MAX);
        let mut flat = StateTable::new();
        let keys: Vec<Vec<u32>> = (0..200u32)
            .map(|i| vec![i % 50, i / 3, 7, i % 2, 1 << (i % 31)])
            .collect();
        for key in keys.iter().chain(keys.iter()) {
            assert_eq!(packed.insert(key), flat.insert(key));
        }
        assert_eq!(packed.len(), flat.len());
        for key in &keys {
            assert_eq!(packed.get(key), flat.get(key));
        }
        assert_eq!(packed.get(&[9, 9, 9, 9, 9]), None);
    }

    #[test]
    fn filter_and_spill_tiers_stay_exact() {
        // A tiny threshold forces many freezes; filter + spill together
        // also exercises the stream-from-disk filter rebuild.
        for (filter, spill) in [(true, false), (false, true), (true, true)] {
            let mut table = PackedStateTable::new(filter, spill, 64);
            let mut flat = StateTable::new();
            let keys: Vec<Vec<u32>> = (0..600u32).map(|i| vec![i, i ^ 0xab, i % 7]).collect();
            for key in keys.iter().chain(keys.iter().rev()) {
                assert_eq!(
                    table.insert(key),
                    flat.insert(key),
                    "filter={filter} spill={spill}"
                );
            }
            for key in &keys {
                assert_eq!(table.get(key), flat.get(key));
            }
            assert_eq!(table.get(&[1, 2]), None);
            if spill {
                assert!(table.spilled_bytes() > 0, "threshold 64 must have spilled");
            }
            if filter {
                assert!(table.filter_bits_set() > 0);
            }
        }
    }

    #[test]
    fn key_filter_is_order_independent_and_exactness_safe() {
        let keys: Vec<Vec<u32>> = (0..300u32).map(|i| vec![i, i * 3, 9]).collect();
        let mut forward = KeyFilter::new(7, 14);
        let mut backward = KeyFilter::new(7, 14);
        for key in &keys {
            forward.insert_key(key);
        }
        for key in keys.iter().rev() {
            backward.insert_key(key);
        }
        assert_eq!(forward.bits, backward.bits, "pure function of the set");
        for key in &keys {
            assert!(forward.maybe_contains_key(key), "no false negatives");
        }
    }

    #[test]
    fn witness_log_reconstructs_links_and_keys() {
        let mut log = WitnessLog::new();
        let root = vec![3u32, 0, 5, 0];
        let child = vec![3u32, 9, 5, 1];
        let grand = vec![4u32, 9, 5, 2];
        let perm: &[u8] = &[1, 0];
        log.push(None, 0, None, &[], &root);
        log.push(Some(0), 11, Some(perm), &root, &child);
        log.push(Some(1), 7, Some(perm), &child, &grand);
        assert_eq!(log.len(), 3);
        assert_eq!(log.link(0), None);
        assert_eq!(log.link(1), Some((0, 11, Some(perm))));
        assert_eq!(log.link(2), Some((1, 7, Some(perm))));
        assert_eq!(log.perms.len(), 1, "identical permutations intern once");
        assert_eq!(log.key_of(0), root);
        assert_eq!(log.key_of(1), child);
        assert_eq!(log.key_of(2), grand);
        assert!(log.bytes() > 0);
    }
}
