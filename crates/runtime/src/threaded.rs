//! Real-thread executor: the same [`Program`] state machines running on OS
//! threads against lock-protected shared memory.
//!
//! The deterministic simulator ([`run`](crate::run)) is the source of truth
//! for correctness experiments; this executor provides *wall-clock*
//! numbers (for the Fig. 7 universal-construction benchmarks) and a sanity
//! check that the algorithms also survive real hardware interleavings.
//!
//! ## Fidelity
//!
//! * Each shared cell is guarded by its own [`parking_lot::Mutex`]; every
//!   [`MemOps`] call locks exactly one cell for the duration of one
//!   sequential operation, which makes each access an atomic
//!   (linearizable) operation on that object — precisely the paper's base
//!   objects.
//! * Crashes are injected at step boundaries by a per-thread seeded RNG:
//!   the thread calls [`Program::on_crash`] and keeps running from the
//!   beginning, modelling an immediate recovery. (Delayed recoveries are
//!   subsumed by scheduler nondeterminism: a crashed-and-slow process is
//!   indistinguishable from a crashed-and-quickly-recovered process that
//!   is then descheduled.)

use crate::memory::{Addr, Cell, MemOps, Memory};
use crate::program::{Pid, Program, Step};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc_spec::{ObjectType, Operation, Value};
use std::sync::Arc;

/// Thread-shared, lock-per-cell non-volatile memory.
///
/// Built from a simulator [`Memory`] so systems can be allocated once and
/// run on either executor.
#[derive(Clone, Debug)]
pub struct SharedMemory {
    cells: Arc<Vec<Mutex<Cell>>>,
}

impl SharedMemory {
    /// Wraps the cells of `mem` in per-cell locks.
    pub fn from_memory(mem: &Memory) -> Self {
        let cells = (0..mem.len())
            .map(|i| {
                let addr = Addr(i);
                // Rebuild each cell from the simulator's contents.
                Mutex::new(match mem.peek_cell(addr) {
                    Cell::Register(v) => Cell::Register(v),
                    Cell::Object { ty, state } => Cell::Object { ty, state },
                })
            })
            .collect();
        SharedMemory {
            cells: Arc::new(cells),
        }
    }

    /// A per-thread handle implementing [`MemOps`].
    pub fn handle(&self) -> SharedMemoryHandle {
        SharedMemoryHandle { mem: self.clone() }
    }

    /// Inspection-only view of a cell's current content.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn peek(&self, addr: Addr) -> Value {
        match &*self.cells[addr.0].lock() {
            Cell::Register(v) => v.clone(),
            Cell::Object { state, .. } => state.clone(),
        }
    }
}

/// A cloneable [`MemOps`] view of a [`SharedMemory`].
#[derive(Clone, Debug)]
pub struct SharedMemoryHandle {
    mem: SharedMemory,
}

impl MemOps for SharedMemoryHandle {
    fn read_register(&mut self, addr: Addr) -> Value {
        match &*self.mem.cells[addr.0].lock() {
            Cell::Register(v) => v.clone(),
            Cell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
    }

    fn write_register(&mut self, addr: Addr, value: Value) {
        match &mut *self.mem.cells[addr.0].lock() {
            Cell::Register(v) => *v = value,
            Cell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
    }

    fn read_object(&mut self, addr: Addr) -> Value {
        match &*self.mem.cells[addr.0].lock() {
            Cell::Object { ty, state } => {
                assert!(
                    ty.is_readable(),
                    "type {} is not readable; Read is not available",
                    ty.name()
                );
                state.clone()
            }
            Cell::Register(_) => panic!("{addr} is a register, not an object"),
        }
    }

    fn apply(&mut self, addr: Addr, op: &Operation) -> Value {
        match &mut *self.mem.cells[addr.0].lock() {
            Cell::Object { ty, state } => {
                let t = ty.apply(state, op);
                *state = t.next;
                t.response
            }
            Cell::Register(_) => panic!("{addr} is a register, not an object"),
        }
    }
}

/// Crash-injection settings for the threaded executor.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedCrashPlan {
    /// Base RNG seed (thread `p` uses `seed + p`).
    pub seed: u64,
    /// Per-step probability of crashing before the step executes.
    pub crash_prob: f64,
    /// Maximum crashes per thread.
    pub max_crashes_per_thread: usize,
}

impl Default for ThreadedCrashPlan {
    fn default() -> Self {
        ThreadedCrashPlan {
            seed: 0,
            crash_prob: 0.0,
            max_crashes_per_thread: 0,
        }
    }
}

/// The per-thread result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadReport {
    /// The process id.
    pub pid: Pid,
    /// The output of the thread's final run.
    pub output: Value,
    /// Steps executed (across all runs).
    pub steps: usize,
    /// Crashes injected into this thread.
    pub crashes: usize,
}

/// Runs one OS thread per program against `shared`, injecting crashes per
/// `plan`, and returns each thread's final decision.
///
/// # Panics
///
/// Panics if a worker thread panics (algorithm bug) or a program fails to
/// decide within `max_steps_per_thread` steps.
pub fn run_threaded(
    shared: &SharedMemory,
    programs: Vec<Box<dyn Program>>,
    plan: ThreadedCrashPlan,
    max_steps_per_thread: usize,
) -> Vec<ThreadReport> {
    let mut handles = Vec::new();
    for (pid, mut program) in programs.into_iter().enumerate() {
        let mut mem = shared.handle();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(plan.seed.wrapping_add(pid as u64));
            let mut steps = 0usize;
            let mut crashes = 0usize;
            loop {
                assert!(
                    steps < max_steps_per_thread,
                    "p{pid} exceeded {max_steps_per_thread} steps without deciding"
                );
                if crashes < plan.max_crashes_per_thread
                    && plan.crash_prob > 0.0
                    && rng.gen_bool(plan.crash_prob)
                {
                    program.on_crash();
                    crashes += 1;
                    continue;
                }
                steps += 1;
                if let Step::Decided(output) = program.step(&mut mem) {
                    return ThreadReport {
                        pid,
                        output,
                        steps,
                        crashes,
                    };
                }
            }
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_spec::types::ConsensusObject;

    /// Proposes its input to a consensus object and decides the response.
    #[derive(Clone, Debug)]
    struct Propose {
        obj: Addr,
        input: i64,
    }
    impl Program for Propose {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            let decided = mem.apply(self.obj, &Operation::new("propose", Value::Int(self.input)));
            Step::Decided(decided)
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn threads_agree_via_consensus_object() {
        let mut mem = Memory::new();
        let obj = mem.alloc_object(Arc::new(ConsensusObject::new(8)), Value::Bottom);
        let shared = SharedMemory::from_memory(&mem);
        let programs: Vec<Box<dyn Program>> = (0..8)
            .map(|i| Box::new(Propose { obj, input: i }) as Box<dyn Program>)
            .collect();
        let reports = run_threaded(&shared, programs, ThreadedCrashPlan::default(), 1000);
        let first = &reports[0].output;
        assert!(reports.iter().all(|r| r.output == *first));
        assert_eq!(shared.peek(obj), *first);
    }

    #[test]
    fn crash_injection_reruns_and_still_agrees() {
        let mut mem = Memory::new();
        let obj = mem.alloc_object(Arc::new(ConsensusObject::new(8)), Value::Bottom);
        let shared = SharedMemory::from_memory(&mem);
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|i| Box::new(Propose { obj, input: i }) as Box<dyn Program>)
            .collect();
        let plan = ThreadedCrashPlan {
            seed: 42,
            crash_prob: 0.5,
            max_crashes_per_thread: 3,
        };
        let reports = run_threaded(&shared, programs, plan, 1000);
        let first = &reports[0].output;
        assert!(reports.iter().all(|r| r.output == *first));
    }
}
