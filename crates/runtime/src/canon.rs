//! Process-symmetry reduction for the model checker.
//!
//! The paper's systems are quantified over *all* processes running the
//! same protocol against one shared object, so the reachable state space
//! is closed under permuting process ids together with their programs,
//! inputs and (declared) per-process memory cells. A [`SymmetrySpec`]
//! names which process ids are interchangeable — *orbits* of processes
//! whose initial program objects (input included) are identical — and
//! the checker then stores only one **canonical representative** per
//! permutation class: before every interner/visited lookup the child
//! state is mapped to the representative, and the inverse permutation is
//! threaded through the parent links so violation witness schedules are
//! reported in *original* process ids (see `explore`).
//!
//! ## Soundness
//!
//! Permuting the program slots of two processes `p`, `q` (moving the
//! whole program objects and decided bits together) relabels which
//! scheduler pid drives which program — executions from the permuted
//! state are exactly the pid-renamed executions of the original, and
//! the checked properties (agreement, validity) mention no pid. Two
//! requirements make the quotient exact:
//!
//! * the permutation group **stabilizes the initial state** — otherwise
//!   the quotient search could count states reachable only from a
//!   *renamed* root. That is the orbit condition: members of an orbit
//!   must start with identical program objects (same code, same input;
//!   the checker asserts equal root
//!   [`state_key`](crate::Program::state_key)s, leaning on the same
//!   key-completeness contract the memoization leans on);
//! * shared memory is **address-indexed, not pid-indexed**: program
//!   objects carry their cell addresses internally and travel whole, so
//!   moving a program between slots never de-synchronizes it from the
//!   (unmoved) memory. Systems with per-process *distinguishing* cells
//!   (e.g. one input-masking register per process, written only by its
//!   owner) additionally declare those cells as **owned**
//!   ([`SymmetrySpec::with_owned_cells`]): owned cells permute together
//!   with their owners' payloads, and each relocated program is
//!   *rebound* ([`Program::rebind`](crate::Program::rebind)) so it
//!   points at its destination slot's cells. Soundness of the full-state
//!   quotient needs the **owner-only rule**: a cell owned by a process
//!   of an acting orbit may be referenced by *no other process* — then a
//!   canonical slot's program always references exactly that slot's
//!   cells, `(slot, state key)` still determines behaviour, and every
//!   orbit permutation is a true system automorphism. Cross-referenced
//!   per-process cells (e.g. `SimultaneousRc`'s round registers, which
//!   every process scans) are *not* expressible as owned cells: under a
//!   permutation the scanning program would read other registers than
//!   the original did at the same local state. They *are* expressible
//!   as **scalarset families** ([`SymmetrySpec::with_scalarset`]) when
//!   the cross-reads form an order-insensitive fold: the scalarset
//!   certifier proves every program's local-state graph equivariant
//!   under every family transposition, mid-scan states (which hold
//!   family positions, [`Program::scalarset_pinned`](crate::Program::scalarset_pinned))
//!   are exempted from canonicalization, and the family contents then
//!   permute with the process slots soundly (DESIGN.md §3).
//!   The checker validates both rules at search start against
//!   [`Program::referenced_cells`](crate::Program::referenced_cells)
//!   and the analyzed footprints, and rejects declarations it cannot
//!   prove sound (see DESIGN.md §3).
//!
//! ## Canonical representative
//!
//! Within each orbit, processes are ordered by a total *signature* —
//! structurally, by `(program state key, decided bit)`, never by
//! interner ids, so the representative choice is identical across
//! engines, runs and thread counts. Sorting is a true
//! canonical form: two states have equal canonical keys **iff** they are
//! related by an orbit permutation (property-tested in
//! `tests/proptest_runtime.rs`).

use crate::memory::Addr;
use crate::program::Pid;

/// One orbit: a set of interchangeable process ids.
#[derive(Clone, Debug)]
struct Orbit {
    /// Member pids, ascending. The canonical state keeps these *slots*;
    /// only which member's payload sits in which slot changes.
    pids: Vec<Pid>,
}

/// Which process ids of a system are interchangeable, as declared by the
/// system's factory.
///
/// Use [`SymmetrySpec::full`] when every process runs the same program
/// with the same input, [`SymmetrySpec::from_classes`] to partition by
/// an `Ord` label (team, operation, input, …), or
/// [`SymmetrySpec::trivial`] to declare no symmetry at all. Processes
/// that own per-process *distinguishing* shared cells must stay in
/// separate orbits (see the module docs).
#[derive(Clone, Debug)]
pub struct SymmetrySpec {
    n: usize,
    orbits: Vec<Orbit>,
    /// `owned[p]` — the shared cells owned by process `p`, in declared
    /// order (position `k` of every orbit member's list corresponds).
    /// Empty lists everywhere for a slots-only spec.
    owned: Vec<Vec<Addr>>,
    /// Scalarset families: each entry is one cell per process
    /// (`family[p]` is position `p`'s cell). Family contents permute
    /// with process slots even though the cells are cross-read — sound
    /// only for certified order-insensitive scans (see
    /// [`SymmetrySpec::with_scalarset`]).
    scalarsets: Vec<Vec<Addr>>,
}

impl SymmetrySpec {
    /// No symmetry: every process is its own orbit. [`is_trivial`]
    /// (`SymmetrySpec::is_trivial`) holds, and the checker skips all
    /// canonicalization work.
    pub fn trivial(n: usize) -> Self {
        SymmetrySpec::new(n, (0..n).map(|p| vec![p]).collect())
    }

    /// Full symmetry: all `n` processes are interchangeable (identical
    /// program, identical input).
    pub fn full(n: usize) -> Self {
        SymmetrySpec::new(n, vec![(0..n).collect()])
    }

    /// Builds a spec from explicit orbits.
    ///
    /// # Panics
    ///
    /// Panics if the orbits are not a partition of a subset of `0..n`
    /// (out-of-range, duplicated or repeated pids). Pids missing from
    /// every orbit are treated as singleton orbits.
    pub fn new(n: usize, orbits: Vec<Vec<Pid>>) -> Self {
        assert!(
            n <= u8::MAX as usize,
            "symmetry permutations pack pids into u8"
        );
        let mut seen = vec![false; n];
        let mut parsed = Vec::with_capacity(orbits.len());
        for mut pids in orbits {
            pids.sort_unstable();
            for &p in &pids {
                assert!(p < n, "orbit pid {p} out of range for {n} processes");
                assert!(!seen[p], "pid {p} appears in two orbits");
                seen[p] = true;
            }
            if !pids.is_empty() {
                parsed.push(Orbit { pids });
            }
        }
        SymmetrySpec {
            n,
            orbits: parsed,
            owned: vec![Vec::new(); n],
            scalarsets: Vec::new(),
        }
    }

    /// Groups processes with equal labels into one orbit: processes are
    /// interchangeable iff their `labels` entries compare equal. This is
    /// the factory-facing constructor — label each process by whatever
    /// determines its behaviour (team, operation, input value) and equal
    /// labels become orbits.
    pub fn from_classes<K: Ord>(labels: &[K]) -> Self {
        let mut order: Vec<Pid> = (0..labels.len()).collect();
        order.sort_by(|&a, &b| labels[a].cmp(&labels[b]));
        let mut orbits: Vec<Vec<Pid>> = Vec::new();
        for &p in &order {
            match orbits.last_mut() {
                Some(orbit) if labels[orbit[0]] == labels[p] => orbit.push(p),
                _ => orbits.push(vec![p]),
            }
        }
        SymmetrySpec::new(labels.len(), orbits)
    }

    /// Declares that process `pid` **owns** the given shared cells: under
    /// an orbit permutation that relocates `pid`'s payload, these cells'
    /// contents relocate too (position `k` of the source list moves to
    /// position `k` of the destination process's list), and the moved
    /// program is rebound ([`Program::rebind`](crate::Program::rebind))
    /// to its destination cells. Every member of one orbit must declare
    /// the same number of owned cells, the cells must hold equal values
    /// in the initial state, and no process other than the owner may
    /// ever reference them — all validated at search start (see the
    /// module docs for the soundness argument).
    ///
    /// # Panics
    ///
    /// Panics immediately if `pid` is out of range, already has an
    /// owned-cell list (declare each process once, with its full list),
    /// or a cell is claimed twice (by one process or by two — "claimed
    /// by two orbits" is the cross-orbit shape of the same bug).
    pub fn with_owned_cells(mut self, pid: Pid, cells: Vec<Addr>) -> Self {
        assert!(pid < self.n, "owned-cell pid {pid} out of range");
        assert!(
            self.owned[pid].is_empty(),
            "p{pid} already declared owned cells; declare each process \
             once, with its complete list"
        );
        for &cell in &cells {
            for (q, owned) in self.owned.iter().enumerate() {
                assert!(
                    !owned.contains(&cell),
                    "cell {cell} claimed by two owners (p{q} and p{pid}); \
                     every owned cell belongs to exactly one process"
                );
            }
            assert!(
                cells.iter().filter(|&&c| c == cell).count() == 1,
                "cell {cell} declared twice for p{pid}"
            );
        }
        self.owned[pid] = cells;
        self
    }

    /// Declares a **scalarset family**: one shared cell per process,
    /// `cells[p]` being position `p`'s member. Under an orbit
    /// permutation the family's *contents* permute together with the
    /// process slots — even though, unlike owned cells, every process
    /// may read every member (the Murphi scalarset idea, adapted to
    /// non-atomic scans). This is sound **only** when every program's
    /// reads of the family form an order-insensitive fold; the checker
    /// does not assume it: at search start the scalarset certifier
    /// (`rc_runtime::lint_scalarset` / the `scalarset` module) proves
    /// each program's memoized local-state graph equivariant under
    /// every family transposition, and rejects the declaration
    /// otherwise. Programs whose volatile state holds family positions
    /// mid-scan must report
    /// [`Program::scalarset_pinned`](crate::Program::scalarset_pinned);
    /// pinned states are excluded from canonicalization (bounded loss
    /// of reduction, never unsoundness).
    ///
    /// # Panics
    ///
    /// Panics immediately if the family does not have exactly one cell
    /// per process, repeats a cell, or claims a cell that is already
    /// owned or in another family.
    pub fn with_scalarset(mut self, cells: Vec<Addr>) -> Self {
        assert_eq!(
            cells.len(),
            self.n,
            "a scalarset family names exactly one cell per process \
             ({} processes, {} cells)",
            self.n,
            cells.len()
        );
        for (p, &cell) in cells.iter().enumerate() {
            assert!(
                cells.iter().filter(|&&c| c == cell).count() == 1,
                "cell {cell} appears twice in one scalarset family"
            );
            for (q, owned) in self.owned.iter().enumerate() {
                assert!(
                    !owned.contains(&cell),
                    "scalarset cell {cell} (position {p}) is already owned \
                     by p{q}; a cell is either owned or a family member, \
                     not both"
                );
            }
            for family in &self.scalarsets {
                assert!(
                    !family.contains(&cell),
                    "cell {cell} appears in two scalarset families"
                );
            }
        }
        self.scalarsets.push(cells);
        self
    }

    /// The declared scalarset families (one cell per process each).
    pub fn scalarset_families(&self) -> &[Vec<Addr>] {
        &self.scalarsets
    }

    /// The scalarset cells at position `p`, one per family, in family
    /// declaration order.
    pub(crate) fn scalarset_cells(&self, p: Pid) -> impl Iterator<Item = Addr> + '_ {
        self.scalarsets.iter().map(move |family| family[p])
    }

    /// Whether any scalarset family spans an **acting** orbit — i.e.
    /// whether canonicalization must move family contents (and the
    /// certifier must run). Families on all-singleton specs are inert.
    pub fn has_moving_scalarsets(&self) -> bool {
        !self.scalarsets.is_empty() && self.acting_orbits().next().is_some()
    }

    /// The cells process `p` owns (empty unless declared).
    pub(crate) fn owned(&self, p: Pid) -> &[Addr] {
        &self.owned[p]
    }

    /// Whether any process of an **acting** orbit owns cells — i.e.
    /// whether canonicalization must move cell contents and rebind
    /// programs. Owned declarations on singleton-orbit processes are
    /// inert (singletons never move).
    pub(crate) fn has_moving_owned_cells(&self) -> bool {
        self.acting_orbits()
            .any(|pids| pids.iter().any(|&p| !self.owned[p].is_empty()))
    }

    /// Validates the owned-cell shape against the orbits: members of one
    /// acting orbit must declare the same number of owned cells (the
    /// lists correspond position by position).
    ///
    /// # Panics
    ///
    /// Panics on a mismatch, naming the orbit.
    pub(crate) fn validate_owned_shape(&self) {
        for pids in self.acting_orbits() {
            let first = self.owned[pids[0]].len();
            for &p in &pids[1..] {
                assert_eq!(
                    self.owned[p].len(),
                    first,
                    "orbit {pids:?} members declare differing owned-cell \
                     counts (p{} owns {first}, p{p} owns {}); owned cells \
                     permute position-for-position within an orbit",
                    pids[0],
                    self.owned[p].len(),
                );
            }
        }
    }

    /// Number of processes the spec describes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the spec declares no usable symmetry (every orbit is a
    /// singleton); the checker then skips canonicalization entirely.
    pub fn is_trivial(&self) -> bool {
        self.orbits.iter().all(|o| o.pids.len() < 2)
    }

    /// The orbits with at least two members (singletons never move).
    pub(crate) fn acting_orbits(&self) -> impl Iterator<Item = &[Pid]> {
        self.orbits
            .iter()
            .filter(|o| o.pids.len() >= 2)
            .map(|o| o.pids.as_slice())
    }

    /// The canonical-representative permutation for the state whose
    /// per-process signature is `sig(p)`: within each orbit, members are
    /// sorted by signature (ties keep ascending pid order). Returns
    /// `perm` with `perm[i] = s` meaning canonical slot `i` takes slot
    /// `s`'s payload, or `None` when the state is already canonical.
    ///
    /// The signature must be *total* over everything the permutation
    /// moves — program state, decided flag and (when declared) the
    /// values of the process's owned cells — or sorting would not be a
    /// canonical form.
    pub fn canonical_perm_with<K: Ord>(&self, mut sig: impl FnMut(Pid) -> K) -> Option<Box<[u8]>> {
        let mut perm: Option<Box<[u8]>> = None;
        for pids in self.acting_orbits() {
            let mut ranked: Vec<(K, Pid)> = pids.iter().map(|&p| (sig(p), p)).collect();
            // Stable, and pids are ascending, so equal signatures keep
            // their slot order — sorted output is the canonical form.
            ranked.sort_by(|a, b| a.0.cmp(&b.0));
            if ranked.iter().zip(pids).all(|(r, &p)| r.1 == p) {
                continue;
            }
            let perm = perm.get_or_insert_with(|| identity(self.n));
            for (i, &slot) in pids.iter().enumerate() {
                perm[slot] = ranked[i].1 as u8;
            }
        }
        perm
    }

    /// The number of concrete states in the canonical state's
    /// permutation class: per orbit, `m!` arrangements divided by the
    /// multiplicities of equal signatures (members with equal signatures
    /// produce the same state when swapped). The checker weights leaf
    /// counts with this, which makes leaf counts *identical* with
    /// symmetry on and off.
    ///
    /// # Panics
    ///
    /// Panics on overflow (`> u64::MAX` arrangements — far beyond any
    /// explorable state space).
    pub fn orbit_weight_with<K: Ord>(&self, mut sig: impl FnMut(Pid) -> K) -> u64 {
        let mut weight: u64 = 1;
        for pids in self.acting_orbits() {
            let mut sigs: Vec<K> = pids.iter().map(|&p| sig(p)).collect();
            sigs.sort();
            let mut remaining = sigs.len() as u64;
            let mut run = 0u64;
            for i in 0..sigs.len() {
                run += 1;
                if i + 1 == sigs.len() || sigs[i + 1] != sigs[i] {
                    weight = weight
                        .checked_mul(binomial(remaining, run))
                        .expect("orbit weight overflows u64");
                    remaining -= run;
                    run = 0;
                }
            }
        }
        weight
    }
}

/// The identity permutation on `n` slots.
pub(crate) fn identity(n: usize) -> Box<[u8]> {
    (0..n).map(|i| i as u8).collect()
}

/// Composition `m ∘ π`: `result[i] = m[π[i]]`. Used by the witness
/// reconstruction to accumulate canonical→original pid maps along a
/// parent-link path.
pub(crate) fn compose(m: &[u8], pi: &[u8]) -> Box<[u8]> {
    pi.iter().map(|&i| m[i as usize]).collect()
}

/// `C(n, k)` with checked arithmetic.
fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.checked_mul(n - i).expect("orbit weight overflows u64") / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_classes_groups_equal_labels() {
        let spec = SymmetrySpec::from_classes(&["a", "b", "a", "c", "b"]);
        assert_eq!(spec.n(), 5);
        let orbits: Vec<&[Pid]> = spec.acting_orbits().collect();
        assert_eq!(orbits, vec![&[0usize, 2][..], &[1, 4][..]]);
        assert!(!spec.is_trivial());
        assert!(SymmetrySpec::from_classes(&[1, 2, 3]).is_trivial());
    }

    #[test]
    fn canonical_perm_sorts_within_orbits_only() {
        // Processes 1..4 interchangeable, 0 fixed.
        let spec = SymmetrySpec::new(4, vec![vec![1, 2, 3]]);
        // Signatures out of order in the orbit.
        let sigs = [9, 7, 5, 6];
        let perm = spec.canonical_perm_with(|p| sigs[p]).expect("non-identity");
        // Canonical slots 1, 2, 3 take payloads of slots 2, 3, 1.
        assert_eq!(&perm[..], &[0, 2, 3, 1]);
        // Already-sorted signatures are canonical.
        assert!(spec.canonical_perm_with(|p| [9, 1, 2, 3][p]).is_none());
    }

    #[test]
    fn canonical_perm_is_stable_on_ties() {
        let spec = SymmetrySpec::full(3);
        assert!(spec.canonical_perm_with(|_| 0).is_none());
    }

    #[test]
    fn orbit_weight_counts_distinct_arrangements() {
        let spec = SymmetrySpec::full(4);
        // All distinct: 4! arrangements.
        assert_eq!(spec.orbit_weight_with(|p| p), 24);
        // All equal: a single arrangement.
        assert_eq!(spec.orbit_weight_with(|_| 0), 1);
        // Multiset {a, a, b, b}: 4!/(2!2!) = 6.
        assert_eq!(spec.orbit_weight_with(|p| p / 2), 6);
        // Two orbits multiply.
        let spec = SymmetrySpec::new(5, vec![vec![0, 1], vec![2, 3, 4]]);
        assert_eq!(spec.orbit_weight_with(|p| p), 2 * 6);
    }

    #[test]
    fn compose_applies_inner_then_outer() {
        let m: Box<[u8]> = Box::from([2u8, 0, 1]);
        let pi: Box<[u8]> = Box::from([1u8, 2, 0]);
        assert_eq!(&compose(&m, &pi)[..], &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "two orbits")]
    fn overlapping_orbits_are_rejected() {
        let _ = SymmetrySpec::new(3, vec![vec![0, 1], vec![1, 2]]);
    }

    fn addr(i: usize) -> Addr {
        Addr(i)
    }

    #[test]
    fn owned_cells_track_their_processes() {
        let spec = SymmetrySpec::full(3)
            .with_owned_cells(0, vec![addr(3)])
            .with_owned_cells(1, vec![addr(4)])
            .with_owned_cells(2, vec![addr(5)]);
        assert!(spec.has_moving_owned_cells());
        assert_eq!(spec.owned(1), &[addr(4)]);
        spec.validate_owned_shape();
        // Owned cells on singleton orbits never move.
        let inert = SymmetrySpec::trivial(2).with_owned_cells(0, vec![addr(2)]);
        assert!(!inert.has_moving_owned_cells());
        // A slots-only spec owns nothing.
        assert!(!SymmetrySpec::full(3).has_moving_owned_cells());
    }

    #[test]
    #[should_panic(expected = "claimed by two owners")]
    fn doubly_claimed_cell_is_rejected() {
        let _ = SymmetrySpec::new(4, vec![vec![0, 1], vec![2, 3]])
            .with_owned_cells(0, vec![addr(7)])
            .with_owned_cells(2, vec![addr(7)]);
    }

    #[test]
    #[should_panic(expected = "already declared owned cells")]
    fn redeclaring_a_process_is_rejected() {
        let _ = SymmetrySpec::full(2)
            .with_owned_cells(0, vec![addr(0)])
            .with_owned_cells(0, vec![addr(1)]);
    }

    #[test]
    #[should_panic(expected = "differing owned-cell counts")]
    fn uneven_owned_counts_within_an_orbit_are_rejected() {
        SymmetrySpec::full(2)
            .with_owned_cells(0, vec![addr(0), addr(1)])
            .with_owned_cells(1, vec![addr(2)])
            .validate_owned_shape();
    }
}
