//! Swarm verification: millions of deterministically-seeded random
//! schedules fanned across all cores, with counterexample shrinking.
//!
//! The exhaustive checker ([`explore`](crate::explore)) gives exact
//! verdicts on small instances; beyond its frontier the repo used to
//! offer only one-shot [`RandomScheduler`] runs. This module turns that
//! one-shot into a *service*: [`swarm`] partitions a contiguous seed
//! range across worker threads, runs one full seeded execution per seed
//! through the shared [`run`](crate::run) loop, checks every execution
//! against the recoverable-consensus contract
//! ([`verify`](crate::verify)), and aggregates
//!
//! * the **violating seeds** (each reproduces deterministically from the
//!   seed alone — [`replay_seed`]),
//! * **distinct-final-state coverage**, deduplicated exactly through the
//!   packed byte-arena tables of [`storage`](crate::PackedStateTable)
//!   (a canonical injective encoding of shared memory, program states,
//!   decided flags and all outputs), and
//! * throughput counters (runs, steps, crashes).
//!
//! ## Determinism contract
//!
//! Seed `s` always denotes the same execution: the run is
//! `run(factory(), RandomScheduler(seed = s), …)` and both the factory
//! and the scheduler are deterministic (see the
//! [`sched`](crate::sched) module contract). Consequently every
//! *deterministic* aggregate — violating seed set, distinct-final-state
//! count, total steps and crashes — is a pure function of
//! `(factory, SwarmConfig)` and is **byte-identical across thread
//! counts**: workers only partition the seed range; the merge is a set
//! union and a sort. Wall-clock fields are the only machine-dependent
//! outputs. The property suite asserts this across thread counts.
//!
//! ## Shrinking
//!
//! A violating seed's schedule is usually hundreds of actions long.
//! [`shrink_schedule`] delta-debugs it down to a **1-minimal witness**:
//! a subsequence of the original schedule that still exhibits the same
//! violation kind, remains legal for the configured [`CrashModel`], and
//! from which no single action can be removed without losing the
//! violation. The shrunken schedule re-verifies through the
//! [`WitnessLog`] replay path: the final replay records one log node per
//! action (delta-encoded interned state keys, exactly the engines'
//! format) and reconstructs the final state key from the log alone
//! ([`WitnessLog::key_of`]), asserting it equals the directly-computed
//! key.
//!
//! Only safety violations (agreement, validity) shrink. A termination
//! violation is a liveness property: *every* prefix of a schedule
//! trivially "fails" it (nothing has decided yet), so delta-debugging
//! would shrink any termination witness to the empty schedule.
//! [`shrink_schedule`] refuses with [`ShrinkError::Termination`] instead
//! of returning that vacuity.

use crate::crash::{CrashMode, CrashModel};
use crate::exec::{run, Execution, RunOptions};
use crate::intern::ValueInterner;
use crate::memory::Memory;
use crate::program::Program;
use crate::sched::{Action, RandomScheduler, RandomSchedulerConfig};
use crate::storage::{PackedStateTable, WitnessLog};
use crate::trace::{Trace, TraceEvent};
use crate::verify::{check_agreement, check_consensus_execution, RcViolation};
use rc_spec::Value;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A system factory the swarm engine can call from any worker thread.
///
/// Identical in shape to [`SystemFactory`](crate::SystemFactory) plus
/// the `Sync` bound the fan-out needs; every catalog builder closure
/// satisfies it (the captured [`rc_spec::TypeHandle`]s, witnesses and
/// inputs are all `Sync`).
pub type SwarmFactory<'a> = dyn Fn() -> (Memory, Vec<Box<dyn Program>>) + Sync + 'a;

/// Configuration of one swarm sweep: the seed range, the per-seed
/// scheduler parameters and the fan-out width.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// First seed of the contiguous range.
    pub seed_start: u64,
    /// Number of seeds (= number of executions).
    pub seeds: u64,
    /// Worker threads; `0` selects `available_parallelism()`. All
    /// deterministic aggregates are independent of this knob.
    pub threads: usize,
    /// Per-decision crash probability of the seeded scheduler.
    pub crash_prob: f64,
    /// The crash adversary — shared [`CrashModel`] semantics, so swarm
    /// runs, exhaustive runs and shrunken witnesses agree on crash
    /// legality.
    pub crash: CrashModel,
    /// Safety bound on scheduled actions per execution
    /// ([`RunOptions::max_actions`]).
    pub max_actions: usize,
    /// Declared inputs for the validity check; `None` checks agreement
    /// and termination only.
    pub inputs: Option<Vec<Value>>,
}

impl Default for SwarmConfig {
    /// A broad default adversary: independent crashes with budget 3,
    /// post-decide crashes enabled (re-runs exercised), 15% crash
    /// probability.
    fn default() -> Self {
        SwarmConfig {
            seed_start: 0,
            seeds: 10_000,
            threads: 0,
            crash_prob: 0.15,
            crash: CrashModel::independent(3).after_decide(true),
            max_actions: 100_000,
            inputs: None,
        }
    }
}

impl SwarmConfig {
    /// The seeded scheduler this configuration assigns to `seed` — the
    /// single definition [`swarm`], [`replay_seed`] and the shrinker all
    /// share, so a reported seed can never replay under a different
    /// adversary than the one that found it.
    pub fn scheduler_for(&self, seed: u64) -> RandomScheduler {
        RandomScheduler::new(RandomSchedulerConfig {
            seed,
            crash_prob: self.crash_prob,
            crash: self.crash,
        })
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

/// One violating seed, with the violation its execution exhibits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwarmViolation {
    /// The scheduler seed; [`replay_seed`] reproduces the execution.
    pub seed: u64,
    /// What went wrong.
    pub violation: RcViolation,
}

/// The aggregate result of a swarm sweep.
///
/// Every field except the wall-clock pair (`elapsed_millis`,
/// `runs_per_sec`) is deterministic given the factory and the
/// [`SwarmConfig`], independently of thread count —
/// [`deterministic_summary`](Self::deterministic_summary) renders
/// exactly that invariant subset.
#[derive(Clone, Debug)]
pub struct SwarmReport {
    /// Executions run (= the configured seed count).
    pub runs: u64,
    /// Violating seeds, sorted ascending.
    pub violations: Vec<SwarmViolation>,
    /// Distinct final states over all runs — exact set cardinality via
    /// the packed visited-set tables, not a sketch.
    pub distinct_final_states: usize,
    /// Total process steps across all runs.
    pub total_steps: u64,
    /// Total crash events across all runs.
    pub total_crashes: u64,
    /// Worker threads actually used.
    pub threads_used: usize,
    /// Wall-clock milliseconds (machine-dependent).
    pub elapsed_millis: f64,
    /// Runs per second (machine-dependent).
    pub runs_per_sec: f64,
}

impl SwarmReport {
    /// Renders the thread-count-invariant fields — the string the
    /// determinism tests compare byte-for-byte across worker counts.
    pub fn deterministic_summary(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("seed {}: {}", v.seed, v.violation))
            .collect();
        format!(
            "runs={} distinct_final_states={} total_steps={} total_crashes={} violations=[{}]",
            self.runs,
            self.distinct_final_states,
            self.total_steps,
            self.total_crashes,
            violations.join("; "),
        )
    }
}

/// A progress sample, handed to the [`swarm_with_progress`] callback
/// roughly four times a second while workers are running.
#[derive(Clone, Copy, Debug)]
pub struct SwarmProgress {
    /// Runs completed so far.
    pub runs: u64,
    /// Total runs requested.
    pub total: u64,
    /// Violations found so far.
    pub violations: u64,
    /// Seconds since the sweep started.
    pub elapsed_secs: f64,
}

struct WorkerOutput {
    /// Length-prefixed concatenation of the worker's locally-fresh final
    /// state keys, replayed into the global table during the merge.
    fresh_keys: Vec<u32>,
    violations: Vec<SwarmViolation>,
    steps: u64,
    crashes: u64,
}

/// Runs the swarm sweep; see the [module docs](self) for the contract.
pub fn swarm(factory: &SwarmFactory<'_>, config: &SwarmConfig) -> SwarmReport {
    swarm_with_progress(factory, config, None)
}

/// [`swarm`] with a streaming progress callback (invoked from the
/// coordinating thread only, never concurrently with itself).
pub fn swarm_with_progress(
    factory: &SwarmFactory<'_>,
    config: &SwarmConfig,
    progress: Option<&(dyn Fn(SwarmProgress) + Sync)>,
) -> SwarmReport {
    let started = Instant::now();
    let threads = config.effective_threads();
    // Workers claim fixed-size seed chunks from a shared cursor: which
    // worker runs which seed varies with timing, but every aggregate
    // below is a commutative fold over per-seed results, so the report
    // does not.
    const CHUNK: u64 = 256;
    let cursor = AtomicU64::new(0);
    let runs_done = AtomicU64::new(0);
    let violations_found = AtomicU64::new(0);

    let worker = || -> WorkerOutput {
        let mut table = PackedStateTable::new(false, false, usize::MAX);
        let mut out = WorkerOutput {
            fresh_keys: Vec::new(),
            violations: Vec::new(),
            steps: 0,
            crashes: 0,
        };
        let mut key = Vec::new();
        loop {
            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
            let lo = chunk.saturating_mul(CHUNK);
            if lo >= config.seeds {
                return out;
            }
            let hi = (lo + CHUNK).min(config.seeds);
            for offset in lo..hi {
                let seed = config.seed_start + offset;
                let (mut mem, mut programs) = factory();
                let mut sched = config.scheduler_for(seed);
                let exec = run(
                    &mut mem,
                    &mut programs,
                    &mut sched,
                    RunOptions {
                        max_actions: config.max_actions,
                        record_trace: false,
                    },
                );
                out.steps += exec.steps as u64;
                out.crashes += exec.crashes as u64;
                key.clear();
                final_state_words(&mem, &programs, &exec, &mut key);
                let (_, fresh) = table.insert(&key);
                if fresh {
                    out.fresh_keys
                        .push(u32::try_from(key.len()).expect("key words fit u32"));
                    out.fresh_keys.extend_from_slice(&key);
                }
                if let Err(violation) = check_execution(&exec, config.inputs.as_deref()) {
                    out.violations.push(SwarmViolation { seed, violation });
                    violations_found.fetch_add(1, Ordering::Relaxed);
                }
            }
            runs_done.fetch_add(hi - lo, Ordering::Relaxed);
        }
    };

    let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        // Every thread runs the same shared closure (`&F: Fn` when
        // `F: Fn`); captures are all by shared reference.
        let worker = &worker;
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        if let Some(callback) = progress {
            while runs_done.load(Ordering::Relaxed) < config.seeds {
                std::thread::sleep(std::time::Duration::from_millis(250));
                callback(SwarmProgress {
                    runs: runs_done.load(Ordering::Relaxed),
                    total: config.seeds,
                    violations: violations_found.load(Ordering::Relaxed),
                    elapsed_secs: started.elapsed().as_secs_f64(),
                });
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("swarm worker panicked"))
            .collect()
    });

    // Merge: set-union the per-worker fresh keys into one exact table
    // and sort the violating seeds — both order-independent, so the
    // deterministic fields cannot depend on thread count or scheduling.
    let mut global = PackedStateTable::new(false, false, usize::MAX);
    let mut violations = Vec::new();
    let mut total_steps = 0u64;
    let mut total_crashes = 0u64;
    for output in outputs {
        let mut at = 0usize;
        while at < output.fresh_keys.len() {
            let len = output.fresh_keys[at] as usize;
            global.insert(&output.fresh_keys[at + 1..at + 1 + len]);
            at += 1 + len;
        }
        violations.extend(output.violations);
        total_steps += output.steps;
        total_crashes += output.crashes;
    }
    violations.sort_by_key(|v| v.seed);

    let elapsed = started.elapsed();
    SwarmReport {
        runs: config.seeds,
        violations,
        distinct_final_states: global.len(),
        total_steps,
        total_crashes,
        threads_used: threads,
        elapsed_millis: elapsed.as_secs_f64() * 1e3,
        runs_per_sec: config.seeds as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// One deterministically-replayed seed: the full execution (trace
/// recorded) and its verdict.
#[derive(Debug)]
pub struct SeedRun {
    /// The execution seed `seed` denotes under the configuration.
    pub execution: Execution,
    /// `Ok(decision)` or the violation the swarm reported for this seed.
    pub verdict: Result<Option<Value>, RcViolation>,
}

/// Replays one seed exactly as the swarm ran it (same scheduler, same
/// options), with trace recording on — the `swarm replay --seed N`
/// path. The execution is byte-identical to the sweep's run for that
/// seed; only the recorded trace is extra.
pub fn replay_seed(factory: &crate::SystemFactory<'_>, config: &SwarmConfig, seed: u64) -> SeedRun {
    let (mut mem, mut programs) = factory();
    let mut sched = config.scheduler_for(seed);
    let execution = run(
        &mut mem,
        &mut programs,
        &mut sched,
        RunOptions {
            max_actions: config.max_actions,
            record_trace: true,
        },
    );
    let verdict = match check_execution(&execution, config.inputs.as_deref()) {
        Ok(()) => Ok(check_agreement(&execution.all_outputs()).unwrap_or(None)),
        Err(v) => Err(v),
    };
    SeedRun { execution, verdict }
}

/// The result of replaying an explicit schedule (a shrink candidate or
/// a final witness) under legality tracking and, optionally, the
/// [`WitnessLog`] state-reconstruction cross-check.
#[derive(Debug)]
pub struct ScheduleReplay {
    /// The deterministic execution of the schedule.
    pub execution: Execution,
    /// Whether every action was legal for the configured [`CrashModel`]
    /// (budget respected, post-decide policy respected, no `Branch`
    /// actions — schedulers never emit those).
    pub legal: bool,
    /// Witness-log nodes recorded (`0` when the log was not requested).
    pub witness_nodes: usize,
    /// Whether [`WitnessLog::key_of`] reconstructed the final state key
    /// from the log alone, byte-identically to the directly-computed
    /// key (`true` trivially when the log was not requested).
    pub witness_verified: bool,
}

/// Replays `schedule` against a fresh system, tracking [`CrashModel`]
/// legality per action, and (with `with_witness_log`) recording each
/// post-action state into a [`WitnessLog`] — one node per action,
/// interned keys delta-encoded against the parent, the engines' format
/// — then reconstructing the final key from the log as a
/// self-verification of the replay path.
///
/// Execution semantics are exactly [`run`]'s (this drives the same
/// loop through a scripted scheduler); legality is checked alongside,
/// not enforced — an illegal schedule still executes, it just reports
/// `legal: false` so the shrinker can reject the candidate.
pub fn replay_schedule(
    factory: &crate::SystemFactory<'_>,
    config: &SwarmConfig,
    schedule: &[Action],
    with_witness_log: bool,
) -> ScheduleReplay {
    let (mut mem, mut programs) = factory();
    let n = programs.len();
    let model = &config.crash;
    let mut legal = schedule.len() <= config.max_actions;
    // Legality pre-pass: simulate only the decided flags and the crash
    // budget. This needs the real step results (a step may decide), so
    // it is fused with the execution below instead of a separate pass.
    let mut decided = vec![false; n];
    let mut crashes_used = 0usize;

    let mut interner = ValueInterner::new();
    let mut log = WitnessLog::new();
    let mut parent_key: Vec<u32> = Vec::new();
    let state_key = |mem: &Memory,
                     programs: &[Box<dyn Program>],
                     decided: &[bool],
                     interner: &mut ValueInterner| {
        let mut key: Vec<u32> = Vec::with_capacity(n + 2);
        for p in programs {
            key.push(interner.intern(&p.state_key()));
        }
        let mut mask = 0u64;
        for (i, &d) in decided.iter().enumerate() {
            if d {
                mask |= 1 << (i % 64);
            }
        }
        key.push(mask as u32);
        key.push((mask >> 32) as u32);
        mem.intern_state_key(interner, &mut key);
        key
    };
    if with_witness_log {
        let root = state_key(&mem, &programs, &decided, &mut interner);
        log.push(None, 0, None, &[], &root);
        parent_key = root;
    }

    let mut outputs: Vec<Vec<Value>> = vec![Vec::new(); n];
    let mut trace = Trace::new();
    let mut steps = 0usize;
    let mut crash_events = 0usize;
    for (idx, action) in schedule.iter().enumerate() {
        if idx >= config.max_actions {
            break;
        }
        match *action {
            Action::Step(p) => {
                assert!(p < n, "schedule steps unknown process {p}");
                if !decided[p] {
                    steps += 1;
                    trace.push(TraceEvent::Stepped(p));
                    if let crate::program::Step::Decided(v) = programs[p].step(&mut mem) {
                        decided[p] = true;
                        outputs[p].push(v.clone());
                        trace.push(TraceEvent::Decided(p, v));
                    }
                }
            }
            Action::Branch(..) => {
                // Branch is engine-internal nondeterminism resolution;
                // scheduler traces never contain it, so a candidate
                // carrying one is ill-formed rather than adversarial.
                legal = false;
            }
            Action::Crash(p) => {
                assert!(p < n, "schedule crashes unknown process {p}");
                if model.mode != CrashMode::Independent
                    || model.exhausted(crashes_used)
                    || !model.may_crash(decided[p])
                {
                    legal = false;
                }
                crashes_used += 1;
                crash_events += 1;
                programs[p].on_crash();
                decided[p] = false;
                trace.push(TraceEvent::Crashed(p));
            }
            Action::CrashAll => {
                if model.mode != CrashMode::Simultaneous
                    || model.exhausted(crashes_used)
                    || !model.may_crash_all(&decided)
                {
                    legal = false;
                }
                crashes_used += 1;
                crash_events += 1;
                for (p, prog) in programs.iter_mut().enumerate() {
                    prog.on_crash();
                    decided[p] = false;
                }
                trace.push(TraceEvent::CrashedAll);
            }
        }
        if with_witness_log {
            let key = state_key(&mem, &programs, &decided, &mut interner);
            let parent = u32::try_from(log.len() - 1).expect("log index fits u32");
            log.push(
                Some(parent),
                action_code(*action, n),
                None,
                &parent_key,
                &key,
            );
            parent_key = key;
        }
    }

    let witness_verified = if with_witness_log {
        let last = u32::try_from(log.len() - 1).expect("log index fits u32");
        log.key_of(last) == parent_key
    } else {
        true
    };
    ScheduleReplay {
        execution: Execution {
            outputs,
            steps,
            crashes: crash_events,
            all_decided: decided.iter().all(|d| *d),
            hit_step_limit: schedule.len() > config.max_actions,
            trace,
        },
        legal,
        witness_nodes: log.len(),
        witness_verified,
    }
}

/// The [`WitnessLog`] action code of a scheduler action: `1 + p` for
/// steps, `1 + n + p` for independent crashes, `1 + 2n` for `CrashAll`
/// (`0` is the log's reserved root code). Injective for `n < 1365`
/// (the log's 12-bit action field).
fn action_code(action: Action, n: usize) -> u16 {
    let code = match action {
        Action::Step(p) | Action::Branch(p, _) => 1 + p,
        Action::Crash(p) => 1 + n + p,
        Action::CrashAll => 1 + 2 * n,
    };
    u16::try_from(code).expect("action code fits the log's 12-bit field")
}

/// Why a schedule could not be shrunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShrinkError {
    /// The schedule does not violate under the configuration, so there
    /// is nothing to shrink.
    NotAViolation,
    /// The schedule violates *termination* only — a liveness property
    /// every prefix trivially fails, so delta-debugging would return
    /// the vacuous empty schedule (see the module docs).
    Termination,
}

impl fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShrinkError::NotAViolation => {
                write!(f, "the schedule does not violate under this configuration")
            }
            ShrinkError::Termination => write!(
                f,
                "termination violations do not shrink (every prefix trivially fails liveness)"
            ),
        }
    }
}

impl std::error::Error for ShrinkError {}

/// A shrunken counterexample schedule.
#[derive(Debug)]
pub struct ShrunkWitness {
    /// The 1-minimal witness: a [`CrashModel`]-legal subsequence of the
    /// original schedule that still exhibits the original violation
    /// kind, from which no single action can be removed.
    pub schedule: Vec<Action>,
    /// The violation the minimal witness exhibits (same kind as the
    /// original's; the conflicting values may differ).
    pub violation: RcViolation,
    /// Length of the schedule that was shrunk.
    pub original_len: usize,
    /// Candidate schedules replayed during delta-debugging.
    pub candidates_tested: usize,
    /// Whether the final witness re-verified through the [`WitnessLog`]
    /// replay path (always `true`; recorded so callers can assert it).
    pub witness_verified: bool,
}

/// Delta-debugs a violating schedule down to a 1-minimal witness.
///
/// The candidate predicate is: the candidate is a subsequence of the
/// original (by construction — ddmin only deletes), is legal for the
/// configured [`CrashModel`], and replays to a violation of the same
/// kind as the original's. On success the minimal witness has been
/// re-verified through the [`WitnessLog`] replay path
/// ([`replay_schedule`] with the log enabled).
///
/// # Errors
///
/// [`ShrinkError::NotAViolation`] if the input schedule does not
/// violate; [`ShrinkError::Termination`] if it violates termination
/// only (not shrinkable — see the module docs).
pub fn shrink_schedule(
    factory: &crate::SystemFactory<'_>,
    config: &SwarmConfig,
    schedule: &[Action],
) -> Result<ShrunkWitness, ShrinkError> {
    let base = replay_schedule(factory, config, schedule, false);
    let target = match check_execution(&base.execution, config.inputs.as_deref()) {
        Ok(()) => return Err(ShrinkError::NotAViolation),
        Err(RcViolation::Termination) => return Err(ShrinkError::Termination),
        Err(v) => std::mem::discriminant(&v),
    };

    let mut tested = 0usize;
    let mut violates = |candidate: &[Action]| -> bool {
        tested += 1;
        let replay = replay_schedule(factory, config, candidate, false);
        replay.legal
            && matches!(
                check_execution(&replay.execution, config.inputs.as_deref()),
                Err(v) if std::mem::discriminant(&v) == target
            )
    };

    // Classic ddmin over complements: split into `granularity` chunks,
    // try dropping one chunk at a time; on success restart coarse, on
    // failure refine until single-action granularity fails everywhere —
    // which is exactly 1-minimality.
    let mut current: Vec<Action> = schedule.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if violates(&candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }
        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }

    // Final witness: re-verify through the WitnessLog replay path.
    let replay = replay_schedule(factory, config, &current, true);
    assert!(replay.legal, "shrunken witness must stay CrashModel-legal");
    assert!(
        replay.witness_verified,
        "WitnessLog replay must reconstruct the final state key"
    );
    let violation = check_execution(&replay.execution, config.inputs.as_deref())
        .expect_err("shrunken witness must still violate");
    assert_eq!(
        std::mem::discriminant(&violation),
        target,
        "shrinking must preserve the violation kind"
    );
    Ok(ShrunkWitness {
        schedule: current,
        violation,
        original_len: schedule.len(),
        candidates_tested: tested,
        witness_verified: replay.witness_verified,
    })
}

/// Whether `needle` is a (not necessarily contiguous) subsequence of
/// `haystack` — the shape every shrunken witness must have relative to
/// its original schedule; exported for the invariant tests.
pub fn is_subsequence(needle: &[Action], haystack: &[Action]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|a| it.any(|b| b == a))
}

/// Checks one execution against the recoverable-consensus contract:
/// agreement always, validity when inputs are declared, then
/// termination.
fn check_execution(exec: &Execution, inputs: Option<&[Value]>) -> Result<(), RcViolation> {
    match inputs {
        Some(inputs) => check_consensus_execution(exec, inputs).map(|_| ()),
        None => {
            check_agreement(&exec.all_outputs())?;
            if !exec.all_decided || exec.hit_step_limit {
                return Err(RcViolation::Termination);
            }
            Ok(())
        }
    }
}

/// Appends the canonical injective word encoding of one final state —
/// every output of every run, each program's state key, the decided
/// flags and the full shared-memory snapshot — to `out`. Two runs
/// append equal words iff those observables are structurally equal, so
/// inserting the words into a [`PackedStateTable`] counts distinct
/// final states exactly.
fn final_state_words(
    mem: &Memory,
    programs: &[Box<dyn Program>],
    exec: &Execution,
    out: &mut Vec<u32>,
) {
    out.push(u32::try_from(programs.len()).expect("process count fits u32"));
    for (p, program) in programs.iter().enumerate() {
        encode_value(&program.state_key(), out);
        out.push(u32::try_from(exec.outputs[p].len()).expect("run count fits u32"));
        for v in &exec.outputs[p] {
            encode_value(v, out);
        }
    }
    out.push(u32::from(exec.all_decided) | (u32::from(exec.hit_step_limit) << 1));
    for v in mem.state_key() {
        encode_value(&v, out);
    }
}

/// Tagged, length-prefixed structural encoding of a [`Value`] into u32
/// words. Injective: two values encode to the same words iff they are
/// equal, which is what makes the coverage count exact.
fn encode_value(v: &Value, out: &mut Vec<u32>) {
    match v {
        Value::Bottom => out.push(0),
        Value::Unit => out.push(1),
        Value::Bool(b) => {
            out.push(2);
            out.push(u32::from(*b));
        }
        Value::Int(i) => {
            out.push(3);
            let bits = *i as u64;
            out.push(bits as u32);
            out.push((bits >> 32) as u32);
        }
        Value::Sym(s) => {
            out.push(4);
            let bytes = s.as_bytes();
            out.push(u32::try_from(bytes.len()).expect("symbol length fits u32"));
            for chunk in bytes.chunks(4) {
                let mut word = [0u8; 4];
                word[..chunk.len()].copy_from_slice(chunk);
                out.push(u32::from_le_bytes(word));
            }
        }
        Value::Tuple(vs) | Value::List(vs) => {
            out.push(if matches!(v, Value::Tuple(_)) { 5 } else { 6 });
            out.push(u32::try_from(vs.len()).expect("sequence length fits u32"));
            for v in vs {
                encode_value(v, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Addr, MemOps};
    use crate::program::Step;
    use std::sync::Arc;

    /// Writes its input, reads the register back, decides what it read.
    /// With a *common* input ([`agreeing_system`]) every interleaving
    /// agrees, while post-decide crashes still vary the per-process
    /// output counts — several distinct final states, zero violations.
    #[derive(Clone, Debug)]
    struct WriteReadDecide {
        addr: Addr,
        input: Value,
        pc: u8,
    }

    impl Program for WriteReadDecide {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    mem.write_register(self.addr, self.input.clone());
                    self.pc = 1;
                    Step::Running
                }
                _ => Step::Decided(mem.read_register(self.addr)),
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn agreeing_system(n: usize) -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = (0..n)
            .map(|_| {
                Box::new(WriteReadDecide {
                    addr,
                    input: Value::Int(42),
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        (mem, programs)
    }

    /// A deliberately broken pair: each decides its *own* input, so any
    /// interleaving violates agreement (inputs differ).
    #[derive(Clone, Debug)]
    struct DecideOwn {
        addr: Addr,
        input: Value,
        pc: u8,
    }

    impl Program for DecideOwn {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            if self.pc == 0 {
                mem.write_register(self.addr, self.input.clone());
                self.pc = 1;
                Step::Running
            } else {
                Step::Decided(self.input.clone())
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn broken_system() -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = (0..2)
            .map(|i| {
                Box::new(DecideOwn {
                    addr,
                    input: Value::Int(i as i64),
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        (mem, programs)
    }

    fn small_config(seeds: u64, threads: usize) -> SwarmConfig {
        SwarmConfig {
            seeds,
            threads,
            crash_prob: 0.2,
            crash: CrashModel::independent(2).after_decide(true),
            ..SwarmConfig::default()
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let factory = || agreeing_system(3);
        let one = swarm(&factory, &small_config(400, 1));
        let four = swarm(&factory, &small_config(400, 4));
        assert_eq!(one.deterministic_summary(), four.deterministic_summary());
        assert!(one.violations.is_empty(), "common-input pair always agrees");
        assert!(one.distinct_final_states > 1, "several final states");
        assert_eq!(four.threads_used, 4);
    }

    #[test]
    fn violating_system_reports_sorted_seeds_and_replays() {
        let factory = || broken_system();
        let config = small_config(50, 2);
        let report = swarm(&factory, &config);
        assert!(!report.violations.is_empty(), "every schedule violates");
        let seeds: Vec<u64> = report.violations.iter().map(|v| v.seed).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        assert_eq!(seeds, sorted);
        // Each reported seed replays to the same violation.
        for v in report.violations.iter().take(5) {
            let rerun = replay_seed(&factory, &config, v.seed);
            assert_eq!(rerun.verdict, Err(v.violation.clone()), "seed {}", v.seed);
        }
    }

    #[test]
    fn shrinks_to_minimal_agreement_witness() {
        let factory = || broken_system();
        let config = small_config(10, 1);
        let report = swarm(&factory, &config);
        let seed = report.violations[0].seed;
        let original = replay_seed(&factory, &config, seed)
            .execution
            .trace
            .to_actions();
        let shrunk = shrink_schedule(&factory, &config, &original).expect("shrinks");
        // DecideOwn violates with 4 steps: both write, both decide.
        assert_eq!(shrunk.schedule.len(), 4, "{:?}", shrunk.schedule);
        assert!(is_subsequence(&shrunk.schedule, &original));
        assert!(shrunk.witness_verified);
        assert!(matches!(shrunk.violation, RcViolation::Agreement { .. }));
        // 1-minimality: removing any single action loses the violation.
        for skip in 0..shrunk.schedule.len() {
            let mut candidate = shrunk.schedule.clone();
            candidate.remove(skip);
            let replay = replay_schedule(&factory, &config, &candidate, false);
            let still_violates = replay.legal
                && matches!(
                    check_execution(&replay.execution, config.inputs.as_deref()),
                    Err(RcViolation::Agreement { .. })
                );
            assert!(!still_violates, "removing action {skip} must lose the bug");
        }
    }

    #[test]
    fn shrink_refuses_non_violations_and_termination() {
        let factory = || agreeing_system(2);
        let config = small_config(1, 1);
        let good = replay_seed(&factory, &config, 0)
            .execution
            .trace
            .to_actions();
        assert!(
            matches!(
                shrink_schedule(&factory, &config, &good),
                Err(ShrinkError::NotAViolation)
            ),
            "a verifying schedule has nothing to shrink"
        );
        // An empty schedule leaves everyone undecided: termination.
        assert!(matches!(
            shrink_schedule(&factory, &config, &[]),
            Err(ShrinkError::Termination)
        ));
    }

    #[test]
    fn replay_schedule_flags_illegal_crashes() {
        let factory = || agreeing_system(2);
        let config = SwarmConfig {
            crash: CrashModel::independent(1),
            ..small_config(1, 1)
        };
        // Two crashes exceed the budget of one.
        let over_budget = [Action::Crash(0), Action::Crash(0)];
        assert!(!replay_schedule(&factory, &config, &over_budget, false).legal);
        // CrashAll is the wrong mode for an independent model.
        assert!(!replay_schedule(&factory, &config, &[Action::CrashAll], false).legal);
        // One legal crash is fine.
        assert!(replay_schedule(&factory, &config, &[Action::Crash(0)], false).legal);
        // Post-decide crash against a strict policy is illegal.
        let decide_then_crash = [Action::Step(0), Action::Step(0), Action::Crash(0)];
        assert!(!replay_schedule(&factory, &config, &decide_then_crash, false).legal);
    }

    #[test]
    fn replay_schedule_matches_run_and_witness_log_verifies() {
        let factory = || agreeing_system(3);
        let config = small_config(1, 1);
        for seed in 0..20u64 {
            let seed_run = replay_seed(&factory, &config, seed);
            let schedule = seed_run.execution.trace.to_actions();
            let replay = replay_schedule(&factory, &config, &schedule, true);
            assert_eq!(replay.execution.outputs, seed_run.execution.outputs);
            assert_eq!(replay.execution.steps, seed_run.execution.steps);
            assert_eq!(replay.execution.crashes, seed_run.execution.crashes);
            assert_eq!(replay.execution.trace, seed_run.execution.trace);
            assert!(replay.legal, "a scheduler-produced schedule is legal");
            assert!(replay.witness_verified);
            assert_eq!(replay.witness_nodes, schedule.len() + 1, "root + actions");
        }
    }

    #[test]
    fn value_encoding_is_injective_on_a_pile_of_values() {
        let values = vec![
            Value::Bottom,
            Value::Unit,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::sym("A"),
            Value::sym("B"),
            Value::sym("AB"),
            Value::Tuple(vec![]),
            Value::List(vec![]),
            Value::Tuple(vec![Value::Int(1)]),
            Value::List(vec![Value::Int(1)]),
            Value::List(vec![Value::Int(1), Value::Int(2)]),
            Value::Tuple(vec![Value::List(vec![Value::Unit]), Value::Bottom]),
        ];
        let encoded: Vec<Vec<u32>> = values
            .iter()
            .map(|v| {
                let mut out = Vec::new();
                encode_value(v, &mut out);
                out
            })
            .collect();
        for i in 0..values.len() {
            for j in 0..values.len() {
                assert_eq!(
                    encoded[i] == encoded[j],
                    i == j,
                    "{:?} vs {:?}",
                    values[i],
                    values[j]
                );
            }
        }
    }

    #[test]
    fn subsequence_helper() {
        use Action::*;
        let hay = [Step(0), Crash(1), Step(1), Step(0)];
        assert!(is_subsequence(&[], &hay));
        assert!(is_subsequence(&[Crash(1), Step(0)], &hay));
        assert!(is_subsequence(&hay, &hay));
        assert!(!is_subsequence(&[Step(0), Step(0), Step(0)], &hay));
        assert!(!is_subsequence(&[CrashAll], &hay));
    }

    #[test]
    fn progress_callback_fires_on_long_enough_sweeps() {
        use std::sync::atomic::AtomicUsize;
        let factory = || agreeing_system(4);
        let calls = AtomicUsize::new(0);
        let config = SwarmConfig {
            seeds: 30_000,
            threads: 2,
            ..small_config(0, 0)
        };
        let report = swarm_with_progress(
            &factory,
            &config,
            Some(&|p: SwarmProgress| {
                assert!(p.runs <= p.total);
                calls.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(report.runs, 30_000);
        // The callback may or may not have fired (timing), but the
        // sweep must complete correctly either way.
        assert!(report.violations.is_empty());
    }

    /// Arc'd shared captures satisfy [`SwarmFactory`]'s `Sync` bound —
    /// the shape every catalog builder closure has.
    #[test]
    fn factory_with_shared_captures_is_usable() {
        let shared = Arc::new(Value::Int(7));
        let factory = move || {
            let mut mem = Memory::new();
            let addr = mem.alloc_register(Value::Bottom);
            let programs: Vec<Box<dyn Program>> = vec![Box::new(WriteReadDecide {
                addr,
                input: (*shared).clone(),
                pc: 0,
            })];
            (mem, programs)
        };
        let report = swarm(&factory, &small_config(20, 2));
        assert_eq!(report.runs, 20);
        assert!(report.violations.is_empty());
    }
}
