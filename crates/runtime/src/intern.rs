//! Hash-consing for [`Value`]s and model-checker state keys.
//!
//! The exhaustive checker ([`explore`](crate::explore)) memoizes every
//! reached system state. Structural keys — cloned `Vec<Value>` tuples —
//! are exact but allocation-heavy: every visited-set probe cloned the
//! entire shared memory, every program's volatile state and the decided
//! value, then hashed those deep structures with the default `SipHash`.
//!
//! This module replaces that with two layers:
//!
//! * [`ValueInterner`] — hash-conses [`Value`]s into dense `u32` ids.
//!   Each distinct value is cloned **once** ever; subsequent probes hash
//!   the (typically tiny) value and compare ids. Interning is injective:
//!   `intern(a) == intern(b)` **iff** `a == b` — so keys built from ids
//!   are exactly as collision-free as the structural tuples they replace
//!   (property-tested in `tests/proptest_runtime.rs`).
//! * [`StateTable`] — deduplicates flat `&[u32]` state keys (interned
//!   memory cells, program keys, packed decided bits, crash count,
//!   decided value) into dense node indices, which double as the parent
//!   pointers the checker uses to reconstruct violation schedules.
//!
//! Both use [`FxHasher`], the Firefox/rustc multiply-rotate hash — far
//! cheaper than `SipHash` for short keys and not exposed to untrusted
//! input here.
//!
//! ## Sharded operation
//!
//! The parallel frontier engine deduplicates each breadth-first level
//! across worker threads. Two extra pieces make that sound:
//!
//! * [`ShardInterner`] — a worker-local overflow interner. During a
//!   parallel phase the global [`ValueInterner`] is frozen (read-only via
//!   [`lookup`](ValueInterner::lookup)); values not yet globally interned
//!   get *local* ids from the worker's `ShardInterner`. A serial
//!   reconciliation pass then maps local ids to fresh global ids **in the
//!   worker's first-use order, walked in canonical item order** — which
//!   reproduces, bit for bit, the ids a single serial interner would have
//!   assigned processing the same items in the same order
//!   (property-tested in `tests/proptest_runtime.rs`).
//! * [`ShardedStateTable`] — the visited set split into `shards`
//!   independent [`StateTable`]s, routed by a hash of the *resolved*
//!   key. Because reconciled ids are canonical-order-deterministic,
//!   every duplicate of a state carries the identical resolved key and
//!   lands in the same shard whatever the thread count — so per-shard
//!   insertion is exact global dedup and the engine stays deterministic
//!   across thread counts.

use crate::storage::{StorageTier, VisitedTable};
use rc_spec::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The `FxHash` function (as used by rustc): a fast, non-cryptographic
/// hasher for in-process hash tables keyed by small values.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            // Length-tagged so e.g. [0] hashes differently from [].
            let mut tail = remainder.len() as u64;
            for &b in remainder {
                tail = (tail << 8) | u64::from(b);
            }
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed tables.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A hash-consing table: [`Value`] → dense `u32` id.
///
/// # Example
///
/// ```
/// use rc_runtime::ValueInterner;
/// use rc_spec::Value;
///
/// let mut interner = ValueInterner::new();
/// let a = interner.intern(&Value::Int(3));
/// let b = interner.intern(&Value::pair(Value::Int(3), Value::Bottom));
/// assert_ne!(a, b);
/// assert_eq!(a, interner.intern(&Value::Int(3)), "same value, same id");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ValueInterner {
    ids: FxHashMap<Value, u32>,
    /// Approximate resident bytes of the interned values, accumulated
    /// at first sight (see [`approx_bytes`](Self::approx_bytes)).
    bytes: usize,
}

/// Approximate heap bytes of one [`Value`]: the enum footprint plus
/// recursively-owned payloads (string bytes, tuple/list elements). A
/// pure function of the value, so the account stays deterministic.
fn approx_value_bytes(value: &Value) -> usize {
    let own = std::mem::size_of::<Value>();
    match value {
        Value::Bottom | Value::Unit | Value::Bool(_) | Value::Int(_) => own,
        Value::Sym(s) => own + s.len(),
        Value::Tuple(items) | Value::List(items) => {
            own + items.iter().map(approx_value_bytes).sum::<usize>()
        }
    }
}

impl ValueInterner {
    /// Sentinel id used by key builders for "no value" slots (e.g. the
    /// checker's *no decided value yet*). Never returned by
    /// [`intern`](Self::intern).
    pub const NONE: u32 = u32::MAX;

    /// Creates an empty interner.
    pub fn new() -> Self {
        ValueInterner::default()
    }

    /// Returns the id of `value`, interning (and cloning) it on first
    /// sight. Injective: two values receive the same id iff they are
    /// structurally equal.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX - 1` distinct values are interned
    /// (far beyond any feasible state space).
    pub fn intern(&mut self, value: &Value) -> u32 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = u32::try_from(self.ids.len()).expect("interner overflow");
        assert!(id < Self::NONE, "interner overflow");
        self.bytes += approx_value_bytes(value) + StateTable::ENTRY_OVERHEAD;
        self.ids.insert(value.clone(), id);
        id
    }

    /// Approximate resident bytes of the interned values (payloads +
    /// per-entry map overhead), feeding the memory counters in
    /// [`ExploreStats`](crate::ExploreStats). Deterministic: a pure
    /// function of the interned set.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Read-only probe: the id of `value` if it has been interned. The
    /// parallel engine's workers resolve against a frozen interner with
    /// this; misses go to a worker-local [`ShardInterner`].
    pub fn lookup(&self, value: &Value) -> Option<u32> {
        self.ids.get(value).copied()
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Where a value resolved during a frozen-interner phase lives: already
/// in the global [`ValueInterner`], or pending in the worker's
/// [`ShardInterner`] until the serial reconciliation pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolved {
    /// The value's stable global id.
    Global(u32),
    /// A worker-local id, valid only within the worker's
    /// [`ShardInterner`] for the current level.
    Local(u32),
}

/// A worker-local overflow interner for one parallel phase.
///
/// While the global [`ValueInterner`] is frozen, each expansion worker
/// resolves values through [`resolve`](Self::resolve): known values
/// yield their global id, unseen values are interned locally. After the
/// parallel phase, the (serial) reconciliation pass walks items in
/// canonical order and promotes each local value to a global id with
/// [`ValueInterner::intern`] — first use wins, exactly as if one serial
/// interner had processed the items in that order, so the final keys are
/// bit-identical to the single-interner path.
#[derive(Clone, Debug, Default)]
pub struct ShardInterner {
    /// Keys shared with `values` via `Arc`, so a first-seen value is
    /// deep-cloned exactly once.
    ids: FxHashMap<std::sync::Arc<Value>, u32>,
    values: Vec<std::sync::Arc<Value>>,
}

impl ShardInterner {
    /// Creates an empty local interner.
    pub fn new() -> Self {
        ShardInterner::default()
    }

    /// Resolves `value` against the frozen `global` interner, interning
    /// it locally on a miss.
    pub fn resolve(&mut self, global: &ValueInterner, value: &Value) -> Resolved {
        match global.lookup(value) {
            Some(id) => Resolved::Global(id),
            None => Resolved::Local(self.intern_local(value)),
        }
    }

    /// Interns `value` locally, returning its dense local id. First-seen
    /// values are deep-cloned once (then shared between the map and the
    /// id-indexed vector).
    pub fn intern_local(&mut self, value: &Value) -> u32 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = u32::try_from(self.ids.len()).expect("shard interner overflow");
        let shared = std::sync::Arc::new(value.clone());
        self.values.push(shared.clone());
        self.ids.insert(shared, id);
        id
    }

    /// The value behind a local id (for reconciliation into the global
    /// interner).
    pub fn value(&self, local: u32) -> &Value {
        self.values[local as usize].as_ref()
    }

    /// Number of locally interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing was interned locally.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Deduplicates flat `u32` state keys into dense node indices.
///
/// The checker's visited set: [`insert`](Self::insert) returns the
/// node's index plus whether it was new. Indices are handed out in
/// insertion order, so they directly index the checker's parallel
/// parent-link arrays.
#[derive(Clone, Debug, Default)]
pub struct StateTable {
    ids: FxHashMap<Box<[u32]>, u32>,
    /// Approximate resident bytes: key words plus per-entry map
    /// overhead, accumulated on insert (see
    /// [`approx_bytes`](Self::approx_bytes)).
    bytes: usize,
}

impl StateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StateTable::default()
    }

    /// Looks up `key` without inserting.
    pub fn get(&self, key: &[u32]) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// Inserts `key`, returning `(index, was_new)`. The key slice is
    /// boxed only when new.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct keys are inserted.
    pub fn insert(&mut self, key: &[u32]) -> (u32, bool) {
        if let Some(&id) = self.ids.get(key) {
            return (id, false);
        }
        let id = u32::try_from(self.ids.len()).expect("state table overflow");
        self.bytes += key.len() * 4 + Self::ENTRY_OVERHEAD;
        self.ids.insert(key.into(), id);
        (id, true)
    }

    /// Approximate per-entry map overhead beyond the key words: the
    /// boxed slice's pointer + length, the `u32` id and hash-bucket
    /// slack.
    const ENTRY_OVERHEAD: usize = 40;

    /// Approximate resident bytes of the table (key words + per-entry
    /// overhead). Deterministic — a pure function of the inserted keys —
    /// so it can feed the memory counters in
    /// [`ExploreStats`](crate::ExploreStats) without perturbing
    /// cross-engine equivalence.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table is empty. Kept for API symmetry with
    /// [`len`](Self::len); only tests exercise it today.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The visited set split into independent shards for parallel dedup.
///
/// States are routed by a hash of their **resolved** key (see
/// `key_route` in the explore module); resolved keys are deterministic
/// across runs and thread counts, so every duplicate of a state maps to
/// the same shard — per-shard insertion is then exact global
/// deduplication. Node indices are *not* assigned here: the engine's
/// serial reconciliation pass maps each shard's inserts into the one
/// global node-index space in canonical frontier order, which keeps
/// parent links and schedule reconstruction byte-deterministic across
/// runs and thread counts.
///
/// Each shard is a [`VisitedTable`] — the flat map or the packed tiered
/// table, per the configured [`StorageTier`]. Every tier satisfies the
/// same `get`/`insert` contract exactly, so shard routing, the frozen
/// `contains` probes and index reconciliation are tier-oblivious.
#[derive(Debug)]
pub struct ShardedStateTable {
    shards: Vec<VisitedTable>,
}

impl ShardedStateTable {
    /// Creates a table with `shards` empty shards of the given storage
    /// tier; `spill_threshold` is the per-shard resident-arena bytes
    /// that trigger a disk freeze (spill tier only).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, tier: StorageTier, spill_threshold: usize) -> Self {
        assert!(shards > 0, "a sharded table needs at least one shard");
        ShardedStateTable {
            shards: (0..shards)
                .map(|_| VisitedTable::new(tier, spill_threshold))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a content-routed key belongs to.
    pub fn shard_of(&self, route: u64) -> usize {
        (route % self.shards.len() as u64) as usize
    }

    /// Read-only membership probe in one shard (used by expansion
    /// workers to drop already-visited children while the table is
    /// frozen).
    pub fn contains(&self, shard: usize, key: &[u32]) -> bool {
        self.shards[shard].get(key).is_some()
    }

    /// Mutable access to every shard, for the parallel insert phase
    /// (each worker owns exactly one `&mut VisitedTable`).
    pub fn shards_mut(&mut self) -> &mut [VisitedTable] {
        &mut self.shards
    }

    /// Total number of distinct keys across all shards. The engine
    /// tracks its accepted-node count separately (shards may hold
    /// entries past a truncation cut); kept for tests and diagnostics.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.shards.iter().map(VisitedTable::len).sum()
    }

    /// Whether every shard is empty.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.len() == 0)
    }

    /// Summed resident bytes across shards (final, not peak).
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(VisitedTable::resident_bytes).sum()
    }

    /// Summed per-shard peak resident bytes (each shard's high-water
    /// mark; resident usage drops at spill freezes).
    pub fn peak_resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(VisitedTable::peak_resident_bytes)
            .sum()
    }

    /// Total bytes written to spill runs across shards.
    pub fn spilled_bytes(&self) -> usize {
        self.shards.iter().map(VisitedTable::spilled_bytes).sum()
    }

    /// Total prefilter bits set across shards.
    pub fn filter_bits_set(&self) -> usize {
        self.shards.iter().map(VisitedTable::filter_bits_set).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_injective_on_a_value_zoo() {
        let zoo = [
            Value::Bottom,
            Value::Unit,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(1),
            Value::Int(-1),
            Value::sym("A"),
            Value::sym("B"),
            Value::pair(Value::Int(0), Value::Int(1)),
            Value::pair(Value::Int(1), Value::Int(0)),
            Value::Tuple(vec![Value::Int(0)]),
            Value::List(vec![Value::Int(0)]),
            Value::empty_list(),
            Value::Tuple(Vec::new()),
        ];
        let mut interner = ValueInterner::new();
        let ids: Vec<u32> = zoo.iter().map(|v| interner.intern(v)).collect();
        for (i, a) in zoo.iter().enumerate() {
            for (j, b) in zoo.iter().enumerate() {
                assert_eq!((a == b), (ids[i] == ids[j]), "{a} vs {b}");
            }
        }
        // Stability: re-interning yields the same ids.
        let again: Vec<u32> = zoo.iter().map(|v| interner.intern(v)).collect();
        assert_eq!(ids, again);
        assert_eq!(interner.len(), zoo.len());
    }

    #[test]
    fn state_table_dedups_and_indexes_in_insertion_order() {
        let mut table = StateTable::new();
        assert!(table.is_empty());
        assert_eq!(table.insert(&[1, 2, 3]), (0, true));
        assert_eq!(table.insert(&[1, 2, 4]), (1, true));
        assert_eq!(table.insert(&[1, 2, 3]), (0, false));
        assert_eq!(table.insert(&[]), (2, true));
        assert_eq!(table.len(), 3);
        assert_eq!(table.get(&[1, 2, 4]), Some(1));
        assert_eq!(table.get(&[9]), None);
    }

    #[test]
    fn lookup_is_read_only() {
        let mut interner = ValueInterner::new();
        let v = Value::pair(Value::Int(4), Value::sym("Q"));
        assert_eq!(interner.lookup(&v), None);
        let id = interner.intern(&v);
        assert_eq!(interner.lookup(&v), Some(id));
        assert_eq!(interner.len(), 1, "lookup must not intern");
    }

    #[test]
    fn shard_interner_resolves_global_hits_and_local_misses() {
        let mut global = ValueInterner::new();
        let known = Value::Int(1);
        let g = global.intern(&known);
        let mut local = ShardInterner::new();
        assert_eq!(local.resolve(&global, &known), Resolved::Global(g));
        let fresh = Value::sym("fresh");
        let l = match local.resolve(&global, &fresh) {
            Resolved::Local(l) => l,
            other => panic!("miss must go local: {other:?}"),
        };
        // Locally stable, idempotent.
        assert_eq!(local.resolve(&global, &fresh), Resolved::Local(l));
        assert_eq!(local.value(l), &fresh);
        assert!(!local.is_empty());
        assert_eq!(local.len(), 1);
        // Reconciliation: promoting the local value makes later
        // resolutions hit the global fast path with the promoted id.
        let promoted = global.intern(local.value(l));
        assert_eq!(local.resolve(&global, &fresh), Resolved::Global(promoted));
    }

    #[test]
    fn sharded_table_routes_consistently_and_sums_len() {
        for tier in StorageTier::ALL {
            let mut table = ShardedStateTable::new(3, tier, 64);
            assert!(table.is_empty());
            assert_eq!(table.shard_count(), 3);
            let keys: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i, i + 1]).collect();
            for key in &keys {
                let route = {
                    let mut h = FxHasher::default();
                    for &w in key.iter() {
                        h.write_u32(w);
                    }
                    h.finish()
                };
                let shard = table.shard_of(route);
                assert!(shard < 3);
                // Same route always maps to the same shard.
                assert_eq!(shard, table.shard_of(route));
                let (_, new) = table.shards_mut()[shard].insert(key);
                assert!(new);
                assert!(table.contains(shard, key));
            }
            assert_eq!(table.len(), keys.len(), "{tier}");
            assert!(table.resident_bytes() > 0);
            assert!(table.peak_resident_bytes() >= table.resident_bytes());
        }
    }

    #[test]
    fn fx_hasher_distinguishes_byte_strings() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgi"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
