//! Hash-consing for [`Value`]s and model-checker state keys.
//!
//! The exhaustive checker ([`explore`](crate::explore)) memoizes every
//! reached system state. Structural keys — cloned `Vec<Value>` tuples —
//! are exact but allocation-heavy: every visited-set probe cloned the
//! entire shared memory, every program's volatile state and the decided
//! value, then hashed those deep structures with the default `SipHash`.
//!
//! This module replaces that with two layers:
//!
//! * [`ValueInterner`] — hash-conses [`Value`]s into dense `u32` ids.
//!   Each distinct value is cloned **once** ever; subsequent probes hash
//!   the (typically tiny) value and compare ids. Interning is injective:
//!   `intern(a) == intern(b)` **iff** `a == b` — so keys built from ids
//!   are exactly as collision-free as the structural tuples they replace
//!   (property-tested in `tests/proptest_runtime.rs`).
//! * [`StateTable`] — deduplicates flat `&[u32]` state keys (interned
//!   memory cells, program keys, packed decided bits, crash count,
//!   decided value) into dense node indices, which double as the parent
//!   pointers the checker uses to reconstruct violation schedules.
//!
//! Both use [`FxHasher`], the Firefox/rustc multiply-rotate hash — far
//! cheaper than `SipHash` for short keys and not exposed to untrusted
//! input here.

use rc_spec::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The `FxHash` function (as used by rustc): a fast, non-cryptographic
/// hasher for in-process hash tables keyed by small values.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            // Length-tagged so e.g. [0] hashes differently from [].
            let mut tail = remainder.len() as u64;
            for &b in remainder {
                tail = (tail << 8) | u64::from(b);
            }
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed tables.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A hash-consing table: [`Value`] → dense `u32` id.
///
/// # Example
///
/// ```
/// use rc_runtime::ValueInterner;
/// use rc_spec::Value;
///
/// let mut interner = ValueInterner::new();
/// let a = interner.intern(&Value::Int(3));
/// let b = interner.intern(&Value::pair(Value::Int(3), Value::Bottom));
/// assert_ne!(a, b);
/// assert_eq!(a, interner.intern(&Value::Int(3)), "same value, same id");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ValueInterner {
    ids: FxHashMap<Value, u32>,
}

impl ValueInterner {
    /// Sentinel id used by key builders for "no value" slots (e.g. the
    /// checker's *no decided value yet*). Never returned by
    /// [`intern`](Self::intern).
    pub const NONE: u32 = u32::MAX;

    /// Creates an empty interner.
    pub fn new() -> Self {
        ValueInterner::default()
    }

    /// Returns the id of `value`, interning (and cloning) it on first
    /// sight. Injective: two values receive the same id iff they are
    /// structurally equal.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX - 1` distinct values are interned
    /// (far beyond any feasible state space).
    pub fn intern(&mut self, value: &Value) -> u32 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = u32::try_from(self.ids.len()).expect("interner overflow");
        assert!(id < Self::NONE, "interner overflow");
        self.ids.insert(value.clone(), id);
        id
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Deduplicates flat `u32` state keys into dense node indices.
///
/// The checker's visited set: [`insert`](Self::insert) returns the
/// node's index plus whether it was new. Indices are handed out in
/// insertion order, so they directly index the checker's parallel
/// parent-link arrays.
#[derive(Clone, Debug, Default)]
pub struct StateTable {
    ids: FxHashMap<Box<[u32]>, u32>,
}

impl StateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StateTable::default()
    }

    /// Looks up `key` without inserting.
    pub fn get(&self, key: &[u32]) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// Inserts `key`, returning `(index, was_new)`. The key slice is
    /// boxed only when new.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct keys are inserted.
    pub fn insert(&mut self, key: &[u32]) -> (u32, bool) {
        if let Some(&id) = self.ids.get(key) {
            return (id, false);
        }
        let id = u32::try_from(self.ids.len()).expect("state table overflow");
        self.ids.insert(key.into(), id);
        (id, true)
    }

    /// Number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table is empty. Kept for API symmetry with
    /// [`len`](Self::len); only tests exercise it today.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_injective_on_a_value_zoo() {
        let zoo = [
            Value::Bottom,
            Value::Unit,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(1),
            Value::Int(-1),
            Value::sym("A"),
            Value::sym("B"),
            Value::pair(Value::Int(0), Value::Int(1)),
            Value::pair(Value::Int(1), Value::Int(0)),
            Value::Tuple(vec![Value::Int(0)]),
            Value::List(vec![Value::Int(0)]),
            Value::empty_list(),
            Value::Tuple(Vec::new()),
        ];
        let mut interner = ValueInterner::new();
        let ids: Vec<u32> = zoo.iter().map(|v| interner.intern(v)).collect();
        for (i, a) in zoo.iter().enumerate() {
            for (j, b) in zoo.iter().enumerate() {
                assert_eq!((a == b), (ids[i] == ids[j]), "{a} vs {b}");
            }
        }
        // Stability: re-interning yields the same ids.
        let again: Vec<u32> = zoo.iter().map(|v| interner.intern(v)).collect();
        assert_eq!(ids, again);
        assert_eq!(interner.len(), zoo.len());
    }

    #[test]
    fn state_table_dedups_and_indexes_in_insertion_order() {
        let mut table = StateTable::new();
        assert!(table.is_empty());
        assert_eq!(table.insert(&[1, 2, 3]), (0, true));
        assert_eq!(table.insert(&[1, 2, 4]), (1, true));
        assert_eq!(table.insert(&[1, 2, 3]), (0, false));
        assert_eq!(table.insert(&[]), (2, true));
        assert_eq!(table.len(), 3);
        assert_eq!(table.get(&[1, 2, 4]), Some(1));
        assert_eq!(table.get(&[9]), None);
    }

    #[test]
    fn fx_hasher_distinguishes_byte_strings() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgi"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
