//! Agreement / validity / termination checking for consensus-style outputs.
//!
//! Recoverable consensus (Section 1 of the paper) requires:
//!
//! * **Agreement** — no two output values produced are different, including
//!   outputs by different processes *and* outputs of the same process
//!   across multiple runs;
//! * **Validity** — each output value is the input value of some process;
//! * **Recoverable wait-freedom** — a run that is not interrupted by a
//!   crash outputs after finitely many of its own steps (checked here as
//!   "every process decided and no step-limit trip").

use crate::exec::Execution;
use rc_spec::Value;
use std::error::Error;
use std::fmt;

/// A violation of the recoverable-consensus safety/termination properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RcViolation {
    /// Two outputs differ.
    Agreement {
        /// First output observed.
        first: Value,
        /// A conflicting output.
        second: Value,
    },
    /// An output is not any process's input.
    Validity {
        /// The offending output.
        output: Value,
    },
    /// Some process never decided (or the safety step bound tripped).
    Termination,
}

impl fmt::Display for RcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcViolation::Agreement { first, second } => {
                write!(f, "agreement violated: saw both {first} and {second}")
            }
            RcViolation::Validity { output } => {
                write!(
                    f,
                    "validity violated: output {output} is no process's input"
                )
            }
            RcViolation::Termination => write!(f, "termination violated: not all runs decided"),
        }
    }
}

impl Error for RcViolation {}

/// Checks agreement over a flattened list of outputs, returning the common
/// value (or `None` for an empty list).
///
/// # Errors
///
/// Returns [`RcViolation::Agreement`] with the first conflicting pair.
pub fn check_agreement(outputs: &[Value]) -> Result<Option<Value>, RcViolation> {
    let mut iter = outputs.iter();
    let Some(first) = iter.next() else {
        return Ok(None);
    };
    for v in iter {
        if v != first {
            return Err(RcViolation::Agreement {
                first: first.clone(),
                second: v.clone(),
            });
        }
    }
    Ok(Some(first.clone()))
}

/// Checks validity: every output must be some process's input.
///
/// # Errors
///
/// Returns [`RcViolation::Validity`] with the first out-of-range output.
pub fn check_validity(outputs: &[Value], inputs: &[Value]) -> Result<(), RcViolation> {
    for v in outputs {
        if !inputs.contains(v) {
            return Err(RcViolation::Validity { output: v.clone() });
        }
    }
    Ok(())
}

/// Checks the full recoverable-consensus contract over an [`Execution`].
///
/// # Errors
///
/// Returns the first violated property, in the order agreement, validity,
/// termination.
pub fn check_consensus_execution(
    exec: &Execution,
    inputs: &[Value],
) -> Result<Option<Value>, RcViolation> {
    let outputs = exec.all_outputs();
    let decision = check_agreement(&outputs)?;
    check_validity(&outputs, inputs)?;
    if !exec.all_decided || exec.hit_step_limit {
        return Err(RcViolation::Termination);
    }
    Ok(decision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn exec_with(outputs: Vec<Vec<Value>>, all_decided: bool) -> Execution {
        Execution {
            outputs,
            steps: 0,
            crashes: 0,
            all_decided,
            hit_step_limit: false,
            trace: Trace::new(),
        }
    }

    #[test]
    fn agreement_accepts_uniform_outputs() {
        let v = vec![Value::Int(2), Value::Int(2), Value::Int(2)];
        assert_eq!(check_agreement(&v), Ok(Some(Value::Int(2))));
        assert_eq!(check_agreement(&[]), Ok(None));
    }

    #[test]
    fn agreement_rejects_conflict() {
        let v = vec![Value::Int(2), Value::Int(3)];
        let err = check_agreement(&v).unwrap_err();
        assert!(matches!(err, RcViolation::Agreement { .. }));
        assert!(err.to_string().contains("agreement"));
    }

    #[test]
    fn validity_checks_membership() {
        let inputs = vec![Value::Int(0), Value::Int(1)];
        assert!(check_validity(&[Value::Int(1)], &inputs).is_ok());
        let err = check_validity(&[Value::Int(7)], &inputs).unwrap_err();
        assert!(matches!(err, RcViolation::Validity { .. }));
    }

    #[test]
    fn full_check_includes_termination() {
        let inputs = vec![Value::Int(0)];
        let good = exec_with(vec![vec![Value::Int(0)], vec![Value::Int(0)]], true);
        assert_eq!(
            check_consensus_execution(&good, &inputs),
            Ok(Some(Value::Int(0)))
        );
        let hung = exec_with(vec![vec![Value::Int(0)], vec![]], false);
        assert_eq!(
            check_consensus_execution(&hung, &inputs),
            Err(RcViolation::Termination)
        );
    }

    #[test]
    fn rerun_outputs_are_covered_by_agreement() {
        // One process, two runs, different outputs: must be caught.
        let bad = exec_with(vec![vec![Value::Int(0), Value::Int(1)]], true);
        assert!(matches!(
            check_consensus_execution(&bad, &[Value::Int(0), Value::Int(1)]),
            Err(RcViolation::Agreement { .. })
        ));
    }
}
