//! Scalarset equivariance certification: proving a cross-read cell
//! family safe to permute.
//!
//! The owned-cell symmetry reduction ([`canon`](crate::canon)) moves a
//! cell with its owning process because *no other process ever touches
//! it* — relocation is trivially invisible. A **scalarset family**
//! ([`SymmetrySpec::with_scalarset`]) is the harder case: one cell per
//! process slot (e.g. the `R[1..n]` round registers of the paper's
//! Fig. 4 algorithm) that every process reads. Permuting such a family
//! with the process slots is only sound when each program treats the
//! family as an **unordered set** — its scan must be an
//! order-insensitive fold, so that any transposition of family members
//! leaves the observable transition structure equivariant.
//!
//! That property is *certified statically here*, never assumed. Over
//! the memoized local-state graphs of the footprint fixpoint walk
//! ([`footprint`](crate::footprint)), the certifier checks, for every
//! transposition `τ = (i j)` of an acting orbit:
//!
//! 1. **Bystander equivariance** — for every process `r ∉ {i, j}`, a
//!    bijection `β` on `r`'s local-state graph such that every edge
//!    commutes with the cell rename `τ` (sites renamed, observed
//!    values and outputs equal, writes equal up to `τ`, crash edges
//!    commuting). `β` must be the *identity* on states that do not
//!    report [`Program::scalarset_pinned`] — the engine permutes
//!    unpinned states, so a state that genuinely moves under `τ` but
//!    claims to be unpinned is a soundness bug, reported as such.
//! 2. **Member exchange** — a bijection between the graphs of `i` and
//!    `j` commuting with the full rename (family cells *and* owned
//!    cells swapped), key-preserving on unpinned states: exactly the
//!    shape [`canonicalize_child`](crate::explore) relies on when an
//!    orbit permutation relocates the two programs.
//! 3. **Rebind fidelity** (dynamic) — for every local state of member
//!    `i`, a rebound clone ([`Program::rebind`] with the pair's cell
//!    swap) is re-executed and must step *identically* to member `j`'s
//!    representative at the same state key: the engine's actual
//!    relocation operation realizes the bijection of check 2, and the
//!    per-slot POR tables stay valid after relocation.
//!
//! Transposition **spot checks** re-execute sampled paired states both
//! ways from fresh clones and compare against the memoized graphs,
//! guarding the certificate against non-deterministic `step`
//! implementations. All transpositions of an orbit are checked (not
//! just adjacent ones); transpositions generate the full symmetric
//! group, so the certificate covers every orbit permutation.
//!
//! States that *are* pinned (e.g. a mid-scan "already checked
//! positions {1,3}" mask) are exempt from the identity requirement —
//! the engine skips canonicalization while any program is pinned, so
//! such states cost reduction but never soundness. Decided states must
//! be unpinned: leaf multinomial weights
//! ([`explore`](crate::explore)) count orbit permutations of decided
//! configurations.
//!
//! [`lint_scalarset`] exposes the certificate as a lint report (the
//! `tables lint` CI gate runs it across the spec catalog);
//! [`certify_scalarsets_cached`](certify_scalarsets_cached) is the
//! engine entry point — exploration of a spec with moving scalarsets
//! refuses to start unless the certificate is clean.
//!
//! [`SymmetrySpec::with_scalarset`]: crate::SymmetrySpec::with_scalarset
//! [`Program::scalarset_pinned`]: crate::Program::scalarset_pinned
//! [`Program::rebind`]: crate::Program::rebind

use crate::canon::SymmetrySpec;
use crate::footprint::{
    probe_state_edges, quiet_probe, walk_system, AccessKind, AnalysisBudget, ChoiceEdge, PidStates,
    ProbedEdge, Walk,
};
use crate::memory::{Addr, Cell, Memory};
use crate::program::{Pid, Program, Rebinding};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

/// How many paired states per transposition the spot-check re-executes
/// from fresh clones (both sides of each pair).
const SPOT_SAMPLE: usize = 12;

/// The outcome of a scalarset certification run.
#[derive(Clone, Debug)]
pub struct ScalarsetReport {
    /// Declared scalarset families.
    pub families: usize,
    /// Orbit transpositions checked (all pairs of every acting orbit).
    pub transpositions: usize,
    /// Local-state graph matches performed (bystander + member pairs).
    pub graph_matches: usize,
    /// Member-exchange states re-executed through a rebound clone.
    pub exchange_states: usize,
    /// Sampled states re-executed from fresh clones (both ways).
    pub spot_reexecutions: usize,
    /// Soundness violations; non-empty means the family must **not**
    /// be permuted (exploration refuses to start).
    pub errors: Vec<String>,
    /// Non-fatal observations (inert families, skipped checks).
    pub warnings: Vec<String>,
}

impl ScalarsetReport {
    /// Whether every check passed (an empty-family report is trivially
    /// certified — there is nothing to permute).
    pub fn is_certified(&self) -> bool {
        self.errors.is_empty()
    }
}

/// `a <-> b` up to the cell rename of one family transposition:
/// `map[c]` is the image cell of cell `c` (an involution).
fn family_rename(cells: usize, spec: &SymmetrySpec, i: Pid, j: Pid) -> Vec<usize> {
    let mut map: Vec<usize> = (0..cells).collect();
    for family in spec.scalarset_families() {
        map.swap(family[i].0, family[j].0);
    }
    map
}

/// The full member-exchange rename: family cells *and* positionally
/// paired owned cells swapped.
fn full_rename(cells: usize, spec: &SymmetrySpec, i: Pid, j: Pid) -> Vec<usize> {
    let mut map = family_rename(cells, spec, i, j);
    for (a, b) in spec.owned(i).iter().zip(spec.owned(j).iter()) {
        map.swap(a.0, b.0);
    }
    map
}

fn state_desc(g: &PidStates, s: usize) -> String {
    let (prog, decided) = &g.states[s];
    format!(
        "local state {}{}",
        prog.state_key(),
        if *decided { " (decided)" } else { "" }
    )
}

fn site_desc(site: Option<(usize, AccessKind)>) -> String {
    match site {
        None => "no shared access".to_string(),
        Some((cell, AccessKind::Read)) => format!("a read of cell {cell}"),
        Some((cell, AccessKind::Write)) => format!("a write of cell {cell}"),
        Some((cell, AccessKind::Rmw)) => format!("an RMW of cell {cell}"),
    }
}

/// Proposes the pair `(a, b)` for the bijection under construction.
/// `same_graph` selects the bystander discipline (β must be the
/// identity on unpinned states) over the member-exchange discipline
/// (β must preserve the state key on unpinned states).
#[allow(clippy::too_many_arguments)]
fn propose_pair(
    a: usize,
    b: usize,
    ga: &PidStates,
    gb: &PidStates,
    same_graph: bool,
    fwd: &mut [Option<usize>],
    bwd: &mut [Option<usize>],
    queue: &mut VecDeque<(usize, usize)>,
    ctx: &str,
) -> Result<(), String> {
    match (fwd[a], bwd[b]) {
        (Some(prev), _) if prev == b => return Ok(()),
        (Some(prev), _) => {
            return Err(format!(
                "{ctx}: {} would have to map to both {} and {} — the \
                 transposition does not act as a bijection on the \
                 local-state graph",
                state_desc(ga, a),
                state_desc(gb, prev),
                state_desc(gb, b),
            ));
        }
        (None, Some(prev)) => {
            return Err(format!(
                "{ctx}: {} would be the image of both {} and {} — the \
                 transposition does not act as a bijection on the \
                 local-state graph",
                state_desc(gb, b),
                state_desc(ga, prev),
                state_desc(ga, a),
            ));
        }
        (None, None) => {}
    }
    if ga.states[a].1 != gb.states[b].1 {
        return Err(format!(
            "{ctx}: {} pairs with {}, but only one of them is decided",
            state_desc(ga, a),
            state_desc(gb, b),
        ));
    }
    if ga.pinned[a] != gb.pinned[b] {
        return Err(format!(
            "{ctx}: {} reports scalarset_pinned = {} but its image {} \
             reports {} — the pinned flag must be equivariant",
            state_desc(ga, a),
            ga.pinned[a],
            state_desc(gb, b),
            gb.pinned[b],
        ));
    }
    if !ga.pinned[a] {
        if same_graph && a != b {
            return Err(format!(
                "{ctx}: {} moves to {} under the transposition but does \
                 not report scalarset_pinned — the engine would permute \
                 the family under it unsoundly; implement \
                 Program::scalarset_pinned for position-referencing \
                 mid-scan states",
                state_desc(ga, a),
                state_desc(gb, b),
            ));
        }
        if !same_graph {
            let ka = (ga.states[a].0.state_key(), ga.states[a].1);
            let kb = (gb.states[b].0.state_key(), gb.states[b].1);
            if ka != kb {
                return Err(format!(
                    "{ctx}: unpinned {} pairs with {} across the member \
                     exchange — relocation must preserve state keys; \
                     implement Program::scalarset_pinned for \
                     position-dependent states",
                    state_desc(ga, a),
                    state_desc(gb, b),
                ));
            }
        }
    }
    fwd[a] = Some(b);
    bwd[b] = Some(a);
    queue.push_back((a, b));
    Ok(())
}

/// Constructs the edge-commuting bijection `β : ga → gb` under the
/// cell rename, or explains why none exists. Returns the paired state
/// indices (every reachable state of `ga` appears exactly once).
fn match_graphs(
    ga: &PidStates,
    gb: &PidStates,
    rename: &[usize],
    same_graph: bool,
    ctx: &str,
) -> Result<Vec<(usize, usize)>, String> {
    if ga.states.len() != gb.states.len() {
        return Err(format!(
            "{ctx}: the graphs have {} and {} local states — no \
             bijection exists",
            ga.states.len(),
            gb.states.len(),
        ));
    }
    let mut fwd: Vec<Option<usize>> = vec![None; ga.states.len()];
    let mut bwd: Vec<Option<usize>> = vec![None; gb.states.len()];
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    // Initial states pair with each other (walk index 0 is the root).
    propose_pair(
        0, 0, ga, gb, same_graph, &mut fwd, &mut bwd, &mut queue, ctx,
    )?;
    while let Some((a, b)) = queue.pop_front() {
        pairs.push((a, b));
        match (ga.crash_succ[a], gb.crash_succ[b]) {
            (None, None) => {}
            (Some(ca), Some(cb)) => {
                propose_pair(
                    ca, cb, ga, gb, same_graph, &mut fwd, &mut bwd, &mut queue, ctx,
                )?;
            }
            _ => {
                return Err(format!(
                    "{ctx}: crash edges of {} and {} do not correspond",
                    state_desc(ga, a),
                    state_desc(gb, b),
                ));
            }
        }
        let ca = &ga.choice_sites[a];
        let cb = &gb.choice_sites[b];
        if ca.len() != cb.len() {
            return Err(format!(
                "{ctx}: {} offers {} choices but its image {} offers {}",
                state_desc(ga, a),
                ca.len(),
                state_desc(gb, b),
                cb.len(),
            ));
        }
        let mut used = vec![false; cb.len()];
        for &(choice_a, site_a) in ca {
            let want = site_a.map(|(cell, kind)| (rename[cell], kind));
            let mut found: Option<(usize, usize)> = None;
            for (k, &(choice_b, site_b)) in cb.iter().enumerate() {
                if used[k] || site_b != want {
                    continue;
                }
                if found.is_some() {
                    return Err(format!(
                        "{ctx}: two choices of {} perform {} — the \
                         choice structure is ambiguous and cannot be \
                         certified",
                        state_desc(gb, b),
                        site_desc(want),
                    ));
                }
                found = Some((k, choice_b));
            }
            let Some((k, choice_b)) = found else {
                return Err(format!(
                    "{ctx}: at {}, the choice performing {} has no \
                     counterpart performing {} in {} — the scan is \
                     order-sensitive (it distinguishes family positions)",
                    state_desc(ga, a),
                    site_desc(site_a),
                    site_desc(want),
                    state_desc(gb, b),
                ));
            };
            used[k] = true;
            let ea: Vec<&ChoiceEdge> = ga.edges[a]
                .iter()
                .filter(|e| e.choice == choice_a)
                .collect();
            let eb: Vec<&ChoiceEdge> = gb.edges[b]
                .iter()
                .filter(|e| e.choice == choice_b)
                .collect();
            if ea.len() != eb.len() {
                return Err(format!(
                    "{ctx}: at {}, the choice performing {} branches {} \
                     ways but its image branches {} ways",
                    state_desc(ga, a),
                    site_desc(site_a),
                    ea.len(),
                    eb.len(),
                ));
            }
            for edge_a in &ea {
                let twins: Vec<&&ChoiceEdge> = eb
                    .iter()
                    .filter(|e| e.observed == edge_a.observed)
                    .collect();
                if twins.len() != 1 {
                    return Err(format!(
                        "{ctx}: at {}, the branch observing {:?} has {} \
                         counterparts in the image (expected exactly one) \
                         — the observed value sets differ under the \
                         transposition",
                        state_desc(ga, a),
                        edge_a.observed,
                        twins.len(),
                    ));
                }
                let edge_b = *twins[0];
                let want_wrote = edge_a.wrote.clone().map(|(c, v)| (rename[c], v));
                if edge_b.wrote != want_wrote {
                    return Err(format!(
                        "{ctx}: at {}, the branch observing {:?} writes \
                         {:?}, but its image writes {:?} (expected {:?} up \
                         to the transposition) — the fold is \
                         order-sensitive",
                        state_desc(ga, a),
                        edge_a.observed,
                        edge_a.wrote,
                        edge_b.wrote,
                        want_wrote,
                    ));
                }
                if edge_b.output != edge_a.output {
                    return Err(format!(
                        "{ctx}: at {}, the branch observing {:?} outputs \
                         {:?} but its image outputs {:?} — the decision \
                         depends on the family order",
                        state_desc(ga, a),
                        edge_a.observed,
                        edge_a.output,
                        edge_b.output,
                    ));
                }
                match (edge_a.succ, edge_b.succ) {
                    (None, None) => {}
                    (Some(sa), Some(sb)) => {
                        propose_pair(
                            sa, sb, ga, gb, same_graph, &mut fwd, &mut bwd, &mut queue, ctx,
                        )?;
                    }
                    _ => {
                        return Err(format!(
                            "{ctx}: at {}, the branch observing {:?} is \
                             feasible on one side of the transposition \
                             but not on the other",
                            state_desc(ga, a),
                            edge_a.observed,
                        ));
                    }
                }
            }
        }
    }
    Ok(pairs)
}

/// Re-expresses a state's memoized [`ChoiceEdge`]s in the fresh-probe
/// shape (successors by key), so a fresh re-execution can be compared
/// against the graph the certificate was computed from.
fn cached_as_probed(g: &PidStates, s: usize) -> Vec<ProbedEdge> {
    g.edges[s]
        .iter()
        .map(|e| ProbedEdge {
            choice: e.choice,
            site: e.site,
            observed: e.observed.clone(),
            wrote: e.wrote.clone(),
            succ: e.succ.map(|t| (g.states[t].0.state_key(), g.states[t].1)),
            output: e.output.clone(),
        })
        .collect()
}

/// Re-executes state `s` of `g` from a fresh clone and checks the
/// probes reproduce the memoized edges exactly.
fn spot_reexecute(mem: &Memory, walk: &Walk, pid: Pid, s: usize, ctx: &str) -> Result<(), String> {
    let g = &walk.pids[pid];
    if g.states[s].1 {
        return Ok(()); // decided states take no steps
    }
    let fresh = probe_state_edges(mem, &walk.domains, g.states[s].0.as_ref())
        .map_err(|e| format!("{ctx}: re-executing {} failed: {e}", state_desc(g, s)))?;
    let cached = cached_as_probed(g, s);
    if fresh != cached {
        return Err(format!(
            "{ctx}: re-executing {} of p{pid} from a fresh clone does \
             not reproduce the memoized transitions — Program::step_choice \
             is not a deterministic function of the volatile state",
            state_desc(g, s),
        ));
    }
    Ok(())
}

/// Certifies every declared scalarset family of `spec` against the
/// system's local-state graphs (see the module docs for the checks).
///
/// Never panics on analyzability problems — they surface as report
/// errors, so the `tables lint` gate can print them.
pub fn lint_scalarset(
    mem: &Memory,
    programs: &[Box<dyn Program>],
    spec: &SymmetrySpec,
    budget: AnalysisBudget,
) -> ScalarsetReport {
    let mut report = ScalarsetReport {
        families: spec.scalarset_families().len(),
        transpositions: 0,
        graph_matches: 0,
        exchange_states: 0,
        spot_reexecutions: 0,
        errors: Vec::new(),
        warnings: Vec::new(),
    };
    if report.families == 0 {
        report
            .warnings
            .push("no scalarset families declared; nothing to certify".into());
        return report;
    }
    if programs.len() != spec.n() {
        report.errors.push(format!(
            "the spec covers {} processes but the system has {}",
            spec.n(),
            programs.len(),
        ));
        return report;
    }
    if !spec.has_moving_scalarsets() {
        report.warnings.push(
            "scalarset families declared but every orbit is a singleton; \
             the families are inert"
                .into(),
        );
        return report;
    }
    let walk = match walk_system(mem, programs, true, budget) {
        Ok(walk) => walk,
        Err(e) => {
            report.errors.push(format!(
                "the system is not analyzable, so the scalarset scan \
                 cannot be certified: {e}"
            ));
            return report;
        }
    };
    let n = programs.len();
    // Decided states must canonicalize: leaf multinomial weights count
    // orbit permutations of decided configurations.
    for (pid, g) in walk.pids.iter().enumerate() {
        for s in 0..g.states.len() {
            if g.states[s].1 && g.pinned[s] {
                report.errors.push(format!(
                    "p{pid}: decided {} reports scalarset_pinned — \
                     decided states must canonicalize (exact leaf counts \
                     depend on it)",
                    state_desc(g, s),
                ));
            }
        }
    }
    for orbit in spec.acting_orbits() {
        // Family cells of one orbit must be indistinguishable at the
        // root and over their reachable value domains.
        for family in spec.scalarset_families() {
            let root = |p: Pid| match mem.peek_cell(family[p]) {
                Cell::Register(v) => v,
                Cell::Object { state, .. } => state,
            };
            let i0 = orbit[0];
            for &p in &orbit[1..] {
                if root(p) != root(i0) {
                    report.errors.push(format!(
                        "scalarset family {:?}: cells {} and {} have \
                         different initial contents across orbit {:?}",
                        family, family[i0], family[p], orbit,
                    ));
                }
                if walk.domains[family[p].0] != walk.domains[family[i0].0] {
                    report.errors.push(format!(
                        "scalarset family {:?}: cells {} and {} reach \
                         different value domains across orbit {:?} — the \
                         scan treats family positions asymmetrically",
                        family, family[i0], family[p], orbit,
                    ));
                }
            }
        }
        for (oi, &i) in orbit.iter().enumerate() {
            for &j in &orbit[oi + 1..] {
                report.transpositions += 1;
                let fam_map = family_rename(mem.len(), spec, i, j);
                let full_map = full_rename(mem.len(), spec, i, j);
                let fam_cells: Vec<Addr> = spec
                    .scalarset_families()
                    .iter()
                    .flat_map(|f| [f[i], f[j]])
                    .collect();
                // 1. Bystander equivariance.
                for r in 0..n {
                    if r == i || r == j {
                        continue;
                    }
                    let ctx = format!(
                        "p{r} under the transposition of scalarset cells \
                         {fam_cells:?} (swap p{i}<->p{j})"
                    );
                    report.graph_matches += 1;
                    match match_graphs(&walk.pids[r], &walk.pids[r], &fam_map, true, &ctx) {
                        Ok(pairs) => {
                            for &(a, b) in pairs.iter().filter(|&&(a, b)| a != b).take(SPOT_SAMPLE)
                            {
                                for s in [a, b] {
                                    report.spot_reexecutions += 1;
                                    if let Err(e) = spot_reexecute(mem, &walk, r, s, &ctx) {
                                        report.errors.push(e);
                                    }
                                }
                            }
                        }
                        Err(e) => report.errors.push(e),
                    }
                }
                // 2. Member exchange (static bijection).
                let ctx = format!(
                    "member exchange p{i}<->p{j} of scalarset cells \
                     {fam_cells:?}"
                );
                report.graph_matches += 1;
                match match_graphs(&walk.pids[i], &walk.pids[j], &full_map, false, &ctx) {
                    Ok(pairs) => {
                        for &(a, b) in pairs.iter().take(SPOT_SAMPLE) {
                            report.spot_reexecutions += 2;
                            if let Err(e) = spot_reexecute(mem, &walk, i, a, &ctx) {
                                report.errors.push(e);
                            }
                            if let Err(e) = spot_reexecute(mem, &walk, j, b, &ctx) {
                                report.errors.push(e);
                            }
                        }
                    }
                    Err(e) => report.errors.push(e),
                }
                // 3. Rebind fidelity (dynamic re-execution).
                let mut rebinding = Rebinding::identity(mem.len());
                for (from, &to) in full_map.iter().enumerate() {
                    if from != to {
                        rebinding.map(Addr(from), Addr(to));
                    }
                }
                match exchange_reexecution(mem, &walk, i, j, &rebinding, &ctx) {
                    Ok(states) => report.exchange_states += states,
                    Err(e) => report.errors.push(e),
                }
            }
        }
    }
    report
}

/// Check 3: every local state of member `i`, rebound with the pair's
/// cell swap, must step identically to member `j`'s representative at
/// the same state key. Returns the number of states re-executed.
fn exchange_reexecution(
    mem: &Memory,
    walk: &Walk,
    i: Pid,
    j: Pid,
    rebinding: &Rebinding,
    ctx: &str,
) -> Result<usize, String> {
    let (ga, gb) = (&walk.pids[i], &walk.pids[j]);
    let mut states = 0usize;
    for s in 0..ga.states.len() {
        let key = (ga.states[s].0.state_key(), ga.states[s].1);
        let Some(&t) = gb.index.get(&key) else {
            return Err(format!(
                "{ctx}: p{i}'s {} has no same-key counterpart in p{j}'s \
                 graph — after relocation the per-slot analysis tables \
                 would miss",
                state_desc(ga, s),
            ));
        };
        let mut rebound = ga.states[s].0.boxed_clone();
        let outcome = quiet_probe(|| catch_unwind(AssertUnwindSafe(|| rebound.rebind(rebinding))));
        if outcome.is_err() {
            return Err(format!(
                "{ctx}: Program::rebind panicked for p{i} at {} — \
                 scalarset symmetry requires rebind support",
                state_desc(ga, s),
            ));
        }
        if (rebound.state_key(), ga.states[s].1) != key {
            return Err(format!(
                "{ctx}: rebind changed p{i}'s state key at {} — \
                 addresses are identity, not volatile state",
                state_desc(ga, s),
            ));
        }
        let crash_key = |p: &dyn Program| {
            let mut c = p.boxed_clone();
            c.on_crash();
            c.state_key()
        };
        if crash_key(rebound.as_ref()) != crash_key(gb.states[t].0.as_ref()) {
            return Err(format!(
                "{ctx}: the crash restart of rebound p{i} at {} differs \
                 from p{j}'s at the same key",
                state_desc(ga, s),
            ));
        }
        states += 1;
        if ga.states[s].1 {
            continue; // decided states take no steps
        }
        let ea = probe_state_edges(mem, &walk.domains, rebound.as_ref()).map_err(|e| {
            format!(
                "{ctx}: probing rebound p{i} at {} failed: {e}",
                state_desc(ga, s)
            )
        })?;
        let eb = probe_state_edges(mem, &walk.domains, gb.states[t].0.as_ref())
            .map_err(|e| format!("{ctx}: probing p{j} at {} failed: {e}", state_desc(gb, t)))?;
        if ea != eb {
            return Err(format!(
                "{ctx}: rebound p{i} at {} steps differently from p{j} \
                 at the same key — the scan is not an order-insensitive \
                 fold over the family ({} vs {} probed edges; first \
                 divergence: {:?} vs {:?})",
                state_desc(ga, s),
                ea.len(),
                eb.len(),
                ea.iter().find(|e| !eb.contains(e)),
                eb.iter().find(|e| !ea.contains(e)),
            ));
        }
    }
    Ok(states)
}

/// Process-wide certificate cache, keyed by the caller's analysis id
/// plus the spec's family/orbit shape (one system is explored many
/// times across benchmark rows and worker threads).
static CERT_CACHE: OnceLock<Mutex<HashMap<String, Arc<ScalarsetReport>>>> = OnceLock::new();

/// The engine entry point: certifies (or recalls the cached
/// certificate for) the system behind `analysis_id`. Exploration of a
/// spec with moving scalarsets calls this at search start and refuses
/// to run on a report with errors.
pub(crate) fn certify_scalarsets_cached(
    analysis_id: Option<&str>,
    mem: &Memory,
    programs: &[Box<dyn Program>],
    spec: &SymmetrySpec,
    budget: AnalysisBudget,
) -> Arc<ScalarsetReport> {
    let Some(id) = analysis_id else {
        return Arc::new(lint_scalarset(mem, programs, spec, budget));
    };
    let key = format!("{id}|scalarsets={:?}", spec.scalarset_families());
    let cache = CERT_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(report) = cache.lock().unwrap().get(&key) {
        return report.clone();
    }
    let report = Arc::new(lint_scalarset(mem, programs, spec, budget));
    cache.lock().unwrap().entry(key).or_insert(report).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemOps;
    use crate::program::Step;
    use rc_spec::Value;

    /// An order-insensitive set scan over a family of `n` registers:
    /// volatile state is the mask of already-read positions; any
    /// unread position may be read next; the fold sums the values.
    /// Decides the sum once every position is read.
    #[derive(Clone, Debug)]
    struct SetSum {
        family: Vec<Addr>,
        own: Addr,
        mask: u64,
        sum: i64,
        wrote: bool,
    }

    impl SetSum {
        fn full(&self) -> u64 {
            (1u64 << self.family.len()) - 1
        }
    }

    impl Program for SetSum {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            let first = self.choices()[0];
            self.step_choice(mem, first)
        }
        fn choices(&self) -> Vec<usize> {
            if !self.wrote {
                return vec![0];
            }
            let open: Vec<usize> = (0..self.family.len())
                .filter(|k| self.mask & (1 << k) == 0)
                .collect();
            if open.is_empty() {
                vec![0]
            } else {
                open
            }
        }
        fn step_choice(&mut self, mem: &mut dyn MemOps, choice: usize) -> Step {
            if !self.wrote {
                mem.write_register(self.own, Value::Int(1));
                self.wrote = true;
                return Step::Running;
            }
            if self.mask == self.full() {
                return Step::Decided(Value::Int(self.sum));
            }
            let v = mem.read_register(self.family[choice]);
            if let Value::Int(x) = v {
                self.sum += x;
            }
            self.mask |= 1 << choice;
            if self.mask == self.full() {
                Step::Decided(Value::Int(self.sum))
            } else {
                Step::Running
            }
        }
        fn scalarset_pinned(&self) -> bool {
            self.wrote && self.mask != 0 && self.mask != self.full()
        }
        fn on_crash(&mut self) {
            self.mask = 0;
            self.sum = 0;
            self.wrote = false;
        }
        fn state_key(&self) -> Value {
            Value::pair(
                Value::Int(self.mask as i64),
                Value::pair(Value::Int(self.sum), Value::Int(i64::from(self.wrote))),
            )
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn rebind(&mut self, map: &Rebinding) {
            self.own = map.lookup(self.own);
        }
        fn referenced_cells(&self) -> Option<Vec<Addr>> {
            let mut cells = self.family.clone();
            cells.push(self.own);
            Some(cells)
        }
    }

    /// The order-*sensitive* mutant: scans the family positionally
    /// (deterministic index order), so a transposition changes which
    /// value is folded first. `lint_scalarset` must reject it.
    #[derive(Clone, Debug)]
    struct PositionalSum {
        family: Vec<Addr>,
        own: Addr,
        k: usize,
        acc: Vec<i64>,
        wrote: bool,
    }

    impl Program for PositionalSum {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            if !self.wrote {
                mem.write_register(self.own, Value::Int(1));
                self.wrote = true;
                return Step::Running;
            }
            if self.k == self.family.len() {
                // Order-sensitive output: the fold's trace, not a set.
                return Step::Decided(Value::Int(
                    self.acc.iter().enumerate().map(|(i, v)| v << i).sum(),
                ));
            }
            let v = mem.read_register(self.family[self.k]);
            if let Value::Int(x) = v {
                self.acc.push(x);
            }
            self.k += 1;
            Step::Running
        }
        fn on_crash(&mut self) {
            self.k = 0;
            self.acc.clear();
            self.wrote = false;
        }
        fn state_key(&self) -> Value {
            Value::pair(
                Value::Int(self.k as i64),
                Value::pair(
                    Value::List(self.acc.iter().map(|&v| Value::Int(v)).collect()),
                    Value::Int(i64::from(self.wrote)),
                ),
            )
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn rebind(&mut self, map: &Rebinding) {
            self.own = map.lookup(self.own);
        }
        fn referenced_cells(&self) -> Option<Vec<Addr>> {
            let mut cells = self.family.clone();
            cells.push(self.own);
            Some(cells)
        }
    }

    fn set_sum_system(n: usize) -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) {
        let mut mem = Memory::new();
        let family: Vec<Addr> = (0..n).map(|_| mem.alloc_register(Value::Int(0))).collect();
        let programs: Vec<Box<dyn Program>> = (0..n)
            .map(|pid| {
                Box::new(SetSum {
                    family: family.clone(),
                    own: family[pid],
                    mask: 0,
                    sum: 0,
                    wrote: false,
                }) as Box<dyn Program>
            })
            .collect();
        let spec = SymmetrySpec::full(n).with_scalarset(family);
        (mem, programs, spec)
    }

    #[test]
    fn order_insensitive_set_scan_is_certified() {
        let (mem, programs, spec) = set_sum_system(3);
        let report = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
        assert!(
            report.is_certified(),
            "set scan must certify; errors: {:#?}",
            report.errors
        );
        assert_eq!(report.families, 1);
        assert_eq!(report.transpositions, 3, "all pairs of the 3-orbit");
        assert!(report.exchange_states > 0);
        assert!(report.spot_reexecutions > 0);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn positional_scan_is_rejected_naming_the_family() {
        let mut mem = Memory::new();
        let n = 3;
        let family: Vec<Addr> = (0..n).map(|_| mem.alloc_register(Value::Int(0))).collect();
        let programs: Vec<Box<dyn Program>> = (0..n)
            .map(|pid| {
                Box::new(PositionalSum {
                    family: family.clone(),
                    own: family[pid],
                    k: 0,
                    acc: Vec::new(),
                    wrote: false,
                }) as Box<dyn Program>
            })
            .collect();
        let spec = SymmetrySpec::full(n).with_scalarset(family.clone());
        let report = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
        assert!(!report.is_certified(), "positional scan must be rejected");
        let all = report.errors.join("\n");
        assert!(
            all.contains("scalarset"),
            "errors must mention the scalarset: {all}"
        );
        assert!(
            all.contains(&format!("{}", family[0])) || all.contains("cell"),
            "errors must name the family cells: {all}"
        );
        assert!(all.contains('p'), "errors must name a process: {all}");
    }

    #[test]
    fn undeclared_families_certify_trivially_with_a_warning() {
        let (mem, programs, _) = set_sum_system(2);
        let spec = SymmetrySpec::full(2);
        let report = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
        assert!(report.is_certified());
        assert_eq!(report.families, 0);
        assert_eq!(report.transpositions, 0);
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn singleton_orbits_make_families_inert() {
        let (mem, programs, _) = set_sum_system(2);
        let family = vec![Addr(0), Addr(1)];
        let spec = SymmetrySpec::trivial(2).with_scalarset(family);
        let report = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
        assert!(report.is_certified());
        assert!(
            report.warnings.iter().any(|w| w.contains("inert")),
            "warnings: {:?}",
            report.warnings
        );
    }

    #[test]
    fn asymmetric_initial_contents_are_rejected() {
        let mut mem = Memory::new();
        let a = mem.alloc_register(Value::Int(0));
        let b = mem.alloc_register(Value::Int(7));
        let family = vec![a, b];
        let programs: Vec<Box<dyn Program>> = (0..2)
            .map(|pid| {
                Box::new(SetSum {
                    family: family.clone(),
                    own: family[pid],
                    mask: 0,
                    sum: 0,
                    wrote: false,
                }) as Box<dyn Program>
            })
            .collect();
        let spec = SymmetrySpec::full(2).with_scalarset(family);
        let report = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
        assert!(!report.is_certified());
        assert!(
            report.errors.iter().any(|e| e.contains("initial contents")),
            "errors: {:?}",
            report.errors
        );
    }

    #[test]
    fn certificate_cache_reuses_reports_by_id() {
        let (mem, programs, spec) = set_sum_system(2);
        let a = certify_scalarsets_cached(
            Some("test/scalarset-cache"),
            &mem,
            &programs,
            &spec,
            AnalysisBudget::default(),
        );
        let b = certify_scalarsets_cached(
            Some("test/scalarset-cache"),
            &mem,
            &programs,
            &spec,
            AnalysisBudget::default(),
        );
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert!(a.is_certified());
    }

    #[test]
    fn analyzer_is_deterministic() {
        let (mem, programs, spec) = set_sum_system(3);
        let a = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
        let b = lint_scalarset(&mem, &programs, &spec, AnalysisBudget::default());
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.warnings, b.warnings);
        assert_eq!(a.transpositions, b.transpositions);
        assert_eq!(a.exchange_states, b.exchange_states);
        assert_eq!(a.spot_reexecutions, b.spot_reexecutions);
    }
}
