//! The seeded random scheduler with crash injection.

use super::{Action, SchedContext, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`RandomScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct RandomSchedulerConfig {
    /// RNG seed — runs are fully reproducible from the seed.
    pub seed: u64,
    /// Probability that the next event is a crash (while budget remains).
    pub crash_prob: f64,
    /// Maximum number of crash events to inject.
    pub max_crashes: usize,
    /// If `true`, crashes are simultaneous ([`Action::CrashAll`], the
    /// Section 2 model); otherwise they hit one random process
    /// ([`Action::Crash`], the independent model of Section 3).
    pub simultaneous: bool,
    /// If `true`, a crash may also hit a process whose current run already
    /// decided, forcing a *re-run* — this exercises the part of the
    /// agreement property that spans "outputs of the same process when it
    /// performs multiple runs" (Section 1).
    pub crash_after_decide: bool,
}

impl Default for RandomSchedulerConfig {
    fn default() -> Self {
        RandomSchedulerConfig {
            seed: 0,
            crash_prob: 0.1,
            max_crashes: 3,
            simultaneous: false,
            crash_after_decide: true,
        }
    }
}

/// A seeded pseudo-random scheduler: at each point, with probability
/// [`crash_prob`](RandomSchedulerConfig::crash_prob) (budget permitting) it
/// injects a crash, otherwise it steps a uniformly random undecided
/// process. Ends the execution when every process has decided and either
/// the budget is exhausted or the coin says stop.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    config: RandomSchedulerConfig,
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a configuration.
    pub fn new(config: RandomSchedulerConfig) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Convenience constructor: seed only, defaults elsewhere.
    pub fn from_seed(seed: u64) -> Self {
        RandomScheduler::new(RandomSchedulerConfig {
            seed,
            ..RandomSchedulerConfig::default()
        })
    }
}

impl Scheduler for RandomScheduler {
    fn next_action(&mut self, ctx: &SchedContext<'_>) -> Option<Action> {
        let budget_left = self.config.max_crashes.saturating_sub(ctx.crashes_injected);
        let undecided = ctx.undecided();

        let want_crash = budget_left > 0 && self.rng.gen_bool(self.config.crash_prob);
        if want_crash {
            if self.config.simultaneous {
                return Some(Action::CrashAll);
            }
            let crashable: Vec<_> = if self.config.crash_after_decide {
                (0..ctx.n).collect()
            } else {
                undecided.clone()
            };
            if !crashable.is_empty() {
                let victim = crashable[self.rng.gen_range(0..crashable.len())];
                return Some(Action::Crash(victim));
            }
        }

        if undecided.is_empty() {
            return None;
        }
        Some(Action::Step(
            undecided[self.rng.gen_range(0..undecided.len())],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(decided: &'a [bool], crashes: usize) -> SchedContext<'a> {
        SchedContext {
            n: decided.len(),
            decided,
            steps_taken: 0,
            crashes_injected: crashes,
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let decided = vec![false; 4];
        let mut a = RandomScheduler::from_seed(7);
        let mut b = RandomScheduler::from_seed(7);
        for _ in 0..50 {
            assert_eq!(
                a.next_action(&ctx(&decided, 0)),
                b.next_action(&ctx(&decided, 0))
            );
        }
    }

    #[test]
    fn respects_crash_budget() {
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 3,
            crash_prob: 1.0,
            max_crashes: 2,
            simultaneous: false,
            crash_after_decide: true,
        });
        let decided = vec![false; 2];
        // With crash_prob = 1, the first two actions are crashes, after
        // which the budget is spent and only steps are produced.
        assert!(matches!(
            s.next_action(&ctx(&decided, 0)),
            Some(Action::Crash(_))
        ));
        assert!(matches!(
            s.next_action(&ctx(&decided, 1)),
            Some(Action::Crash(_))
        ));
        assert!(matches!(
            s.next_action(&ctx(&decided, 2)),
            Some(Action::Step(_))
        ));
    }

    #[test]
    fn simultaneous_mode_emits_crash_all() {
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 3,
            crash_prob: 1.0,
            max_crashes: 1,
            simultaneous: true,
            crash_after_decide: false,
        });
        let decided = vec![false; 3];
        assert_eq!(s.next_action(&ctx(&decided, 0)), Some(Action::CrashAll));
    }

    #[test]
    fn terminates_when_all_decided_and_no_crash_budget() {
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 1,
            crash_prob: 0.0,
            max_crashes: 0,
            simultaneous: false,
            crash_after_decide: true,
        });
        let decided = vec![true, true];
        assert_eq!(s.next_action(&ctx(&decided, 0)), None);
    }
}
